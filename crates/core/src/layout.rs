//! Durable layouts: the remote metadata segment and the undo-log record
//! format.
//!
//! The protocol is designed around the SCI card's delivery guarantees:
//! packets of one store burst arrive **in order**, and a crash can truncate
//! a burst only at a packet boundary. Therefore:
//!
//! * the commit record is a single 8-byte word inside one 16-byte line —
//!   it is either fully visible or not at all;
//! * undo records are self-validating (magic + transaction id + CRC-32
//!   over header and payload), so recovery can scan the mirrored undo log
//!   and stop at the first record that is torn, stale, or absent;
//! * the undo-segment indirection (`undo_seg_id`, `undo_seg_len`) lives in
//!   one 16-byte line and is updated with a single packet when the undo
//!   log grows.

use serde::{Deserialize, Serialize};

/// Well-known tag under which the metadata segment is exported.
pub const META_TAG: u64 = 0x5045_5253_4541_5331; // "PERSEAS1"

/// Magic value at offset 0 of the metadata segment.
pub const META_MAGIC: u64 = 0x4D45_4455_5341_0001; // "MEDUSA", v1

/// Layout version encoded in the header.
pub const META_VERSION: u32 = 1;

/// Byte offset of the `(undo_seg_id, undo_seg_len)` line.
pub const OFF_UNDO: usize = 16;

/// Byte offset of the mirror-set epoch counter. The epoch is bumped on
/// every membership change (mirror fenced, added, rejoined, or removed)
/// and written to every surviving mirror *before* the change takes
/// effect, so a mirror that missed commits always carries a stale epoch
/// and can be refused by recovery. The 8-byte counter sits inside one
/// 16-byte line: the update is packet-atomic.
pub const OFF_EPOCH: usize = 32;

/// Byte offset of the engine-flags word (see [`FLAG_CONCURRENT`]).
/// Written once at publication and never rewritten concurrently with
/// commits, so it needs no packet-atomicity of its own.
pub const OFF_FLAGS: usize = 40;

/// Byte offset of the commit-table slot count (u32). Zero in legacy
/// images; the concurrent engine records here how many 8-byte slots
/// trail the region table.
pub const OFF_COMMIT_SLOTS: usize = 44;

/// Flags bit: the image was written by the concurrent engine — the undo
/// log opens with a group-header line and a commit table of
/// [`MetaHeader::commit_slots`] slots trails the region table. Recovery
/// must use the concurrent scan rules.
pub const FLAG_CONCURRENT: u32 = 1;

/// Flags bit: the image belongs to one shard of a
/// [`crate::ShardedPerseas`] database. The header carries the shard
/// coordinates at `OFF_SHARD`, and an intent table plus a decision
/// table sit between the region table and the commit table (see
/// [`intent_table_offset`] / [`decision_table_offset`]). Implies
/// [`FLAG_CONCURRENT`].
pub const FLAG_SHARDED: u32 = 2;

/// Byte offset of the shard-coordinate line: `intent_slots: u16`,
/// `decision_slots: u16`, `shard_index: u16`, `shard_count: u16`. All
/// zero in unsharded images, so legacy headers decode unchanged.
pub const OFF_SHARD: usize = 48;

/// Magic value opening a live intent slot.
pub const INTENT_MAGIC: u32 = 0x584E_5431; // "XNT1"

/// Magic value opening a live decision slot.
pub const DECISION_MAGIC: u32 = 0x4443_4E31; // "DCN1"

/// Bytes per intent slot: magic, CRC, local txn id, global txn id, home
/// shard, pad. Two 16-byte lines; the CRC makes a torn write read as
/// absent rather than as a bogus intent.
pub const INTENT_SLOT_SIZE: usize = 32;

/// Bytes per decision slot: magic, CRC, global txn id. Exactly one
/// 16-byte line, so the SCI card delivers the whole slot in a single
/// packet — writing it is the atomic commit point of a cross-shard
/// transaction.
pub const DECISION_SLOT_SIZE: usize = 16;

/// Byte offset of the commit record (`last_committed` transaction id).
/// Deliberately placed so the 8-byte record ends on the last word of its
/// 64-byte SCI buffer: the card then flushes it eagerly (no partial-flush
/// timeout), shaving ~0.3 µs off every commit. The concurrent engine
/// reads this as the commit **watermark**: every transaction id at or
/// below it is resolved; committed ids above it live in the commit
/// table.
pub const OFF_COMMIT: usize = 56;

/// Byte offset of the region table.
pub const OFF_REGION_TABLE: usize = 64;

/// Bytes per region-table entry: `(db_seg_id: u64, region_len: u64)`.
pub const REGION_ENTRY_SIZE: usize = 16;

/// Flags bit: the image was written in REDO mode — commits append
/// after-images to a segmented redo log instead of shipping undo copies,
/// and a redo directory (header, tail, snapshot position, segment
/// entries) sits directly before the intent table (see
/// `redo_dir_end`). Recovery must replay the committed log suffix onto
/// the last snapshot image instead of rolling back.
pub const FLAG_REDO: u32 = 4;

/// Magic value opening the redo-directory header line.
pub const REDO_DIR_MAGIC: u32 = 0x5244_4F31; // "RDO1"

/// Magic value opening every redo record (after-image).
pub const REDO_MAGIC: u32 = 0x5245_444F; // "REDO"

/// Size of a redo record header (magic, txn id, region, offset, len,
/// CRC) — identical framing to an undo record.
pub const REDO_HEADER_SIZE: usize = 36;

/// Bytes per redo-directory segment entry: `(seg_id: u64,
/// seq_plus_1: u64)`. One 16-byte line — one packet — so retiring or
/// installing a segment is atomic. A zeroed entry is an empty slot.
pub const REDO_ENTRY_SIZE: usize = 16;

/// Sentinel region id marking a redo **abort tombstone**: a zero-length
/// record appended when a transaction whose after-images already reached
/// the log aborts. Replay treats every earlier record of the tombstone's
/// transaction as dead, so a later watermark that passes over the
/// aborted id can never resurrect its bytes. Tombstones are CRC-framed
/// like any record, so a torn tombstone is simply not there yet — and
/// the id it would have killed is still above the durable watermark.
pub const REDO_TOMBSTONE_REGION: u32 = u32::MAX;

/// Magic value opening every undo record.
pub const UNDO_MAGIC: u32 = 0x554E_444F; // "UNDO"

/// Size of an undo record header (magic, txn id, region, offset, len,
/// CRC).
pub const UNDO_HEADER_SIZE: usize = 36;

/// Magic value opening the undo log of a concurrent-engine image.
pub const GROUP_MAGIC: u32 = 0x4752_5550; // "GRUP"

/// Size of the group header at offset 0 of a concurrent undo log.
pub const GROUP_HEADER_SIZE: usize = 16;

/// Total size of a metadata segment holding up to `max_regions` regions.
pub fn meta_segment_size(max_regions: usize) -> usize {
    OFF_REGION_TABLE + max_regions * REGION_ENTRY_SIZE
}

/// Total size of a concurrent-engine metadata segment: the legacy layout
/// plus `commit_slots` trailing 8-byte commit-table slots.
pub fn meta_segment_size_concurrent(max_regions: usize, commit_slots: usize) -> usize {
    meta_segment_size(max_regions) + commit_slots * 8
}

/// Total size of a sharded metadata segment: the concurrent layout plus
/// an intent table and a decision table between the region table and the
/// tail commit table.
///
/// # Panics
///
/// Panics on an odd `commit_slots`: the decision table must start on a
/// 16-byte line for its single-packet atomicity, and the 8-byte commit
/// slots trail it.
pub fn meta_segment_size_sharded(
    max_regions: usize,
    commit_slots: usize,
    intent_slots: usize,
    decision_slots: usize,
) -> usize {
    assert!(
        commit_slots.is_multiple_of(2),
        "sharded images need an even commit_slots so decision slots stay line-aligned"
    );
    meta_segment_size_concurrent(max_regions, commit_slots)
        + intent_slots * INTENT_SLOT_SIZE
        + decision_slots * DECISION_SLOT_SIZE
}

/// Byte offset of the commit table inside a metadata segment of
/// `meta_len` total bytes. The table occupies the *last* `commit_slots`
/// 8-byte words, so recovery can locate it without knowing the writer's
/// `max_regions`.
pub fn commit_table_offset(meta_len: usize, commit_slots: usize) -> usize {
    meta_len - commit_slots * 8
}

/// Byte offset of the decision table: `decision_slots` 16-byte slots
/// directly before the tail commit table. Like the commit table it is
/// located from the segment end, so recovery needs no `max_regions`.
pub fn decision_table_offset(meta_len: usize, commit_slots: usize, decision_slots: usize) -> usize {
    commit_table_offset(meta_len, commit_slots) - decision_slots * DECISION_SLOT_SIZE
}

/// Byte offset of the intent table: `intent_slots` 32-byte slots directly
/// before the decision table.
pub fn intent_table_offset(
    meta_len: usize,
    commit_slots: usize,
    intent_slots: usize,
    decision_slots: usize,
) -> usize {
    decision_table_offset(meta_len, commit_slots, decision_slots) - intent_slots * INTENT_SLOT_SIZE
}

/// Total bytes of the redo directory for `redo_slots` segment entries:
/// the entries plus the snapshot-position, tail, and header lines.
pub fn redo_dir_size(redo_slots: usize) -> usize {
    (redo_slots + 3) * REDO_ENTRY_SIZE
}

/// Byte offset one past the end of the redo directory: the directory
/// nests directly **before** the intent table (or, when the image is
/// unsharded and/or legacy, before whichever tail tables exist — the
/// offset arithmetic degrades gracefully because empty tables are
/// zero-sized). Like every tail table it is located from the segment
/// end, so recovery needs no `max_regions`.
pub fn redo_dir_end(
    meta_len: usize,
    commit_slots: usize,
    intent_slots: usize,
    decision_slots: usize,
) -> usize {
    intent_table_offset(meta_len, commit_slots, intent_slots, decision_slots)
}

/// Byte offset of the redo-directory header line (magic, CRC, segment
/// size, slot count). Fixed at 16 bytes before the directory end so
/// recovery can read it **before** knowing the slot count.
pub fn redo_header_offset(dir_end: usize) -> usize {
    dir_end - 16
}

/// Byte offset of the log-tail line: a u64 absolute log byte position
/// (`seq * seg_size + offset`) in its own 16-byte line, updated with a
/// single packet at the end of every commit's log fan-out.
pub fn redo_tail_offset(dir_end: usize) -> usize {
    dir_end - 32
}

/// Byte offset of the snapshot-position line: a u64 absolute log byte
/// position up to which the mirrored region images are consistent.
/// Replay starts here.
pub fn redo_snap_offset(dir_end: usize) -> usize {
    dir_end - 48
}

/// Byte offset of the `i`-th segment entry of a directory with
/// `redo_slots` entries. Entries grow **downward** from the
/// snapshot-position line.
pub fn redo_entry_offset(dir_end: usize, redo_slots: usize, i: usize) -> usize {
    dir_end - 48 - (redo_slots - i) * REDO_ENTRY_SIZE
}

/// Encodes the redo-directory header line: log segments are `seg_size`
/// bytes and the directory holds `slot_count` entries. CRC-protected so
/// a torn publication reads as absent.
pub fn encode_redo_dir_header(seg_size: u32, slot_count: u32) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&REDO_DIR_MAGIC.to_le_bytes());
    out[8..12].copy_from_slice(&seg_size.to_le_bytes());
    out[12..16].copy_from_slice(&slot_count.to_le_bytes());
    let crc = crc32(&[&out[8..16]]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the redo-directory header at `off`, returning
/// `(seg_size, slot_count)`, or `None` for an absent or torn header.
pub fn decode_redo_dir_header(buf: &[u8], off: usize) -> Option<(u32, u32)> {
    if get_u32(buf, off)? != REDO_DIR_MAGIC {
        return None;
    }
    let stored = get_u32(buf, off + 4)?;
    let body = buf.get(off + 8..off + 16)?;
    if crc32(&[body]) != stored {
        return None;
    }
    Some((get_u32(buf, off + 8)?, get_u32(buf, off + 12)?))
}

/// Encodes a live redo-directory segment entry: directory slot holds log
/// segment number `seq` stored in remote segment `seg_id`. The sequence
/// is stored off-by-one so a zeroed line reads as an empty slot.
pub fn encode_redo_entry(seg_id: u64, seq: u64) -> [u8; REDO_ENTRY_SIZE] {
    let mut out = [0u8; REDO_ENTRY_SIZE];
    out[0..8].copy_from_slice(&seg_id.to_le_bytes());
    out[8..16].copy_from_slice(&(seq + 1).to_le_bytes());
    out
}

/// Decodes the redo-directory entry at `off`, returning
/// `(seg_id, seq)`, or `None` for an empty slot.
pub fn decode_redo_entry(buf: &[u8], off: usize) -> Option<(u64, u64)> {
    let seg_id = get_u64(buf, off)?;
    let seq_plus_1 = get_u64(buf, off + 8)?;
    if seq_plus_1 == 0 {
        return None;
    }
    Some((seg_id, seq_plus_1 - 1))
}

/// Encodes a live intent slot: local transaction `local` on this shard is
/// part of cross-shard transaction `global`, whose decision record lives
/// on shard `home`.
pub fn encode_intent_slot(local: u64, global: u64, home: u32) -> [u8; INTENT_SLOT_SIZE] {
    let mut out = [0u8; INTENT_SLOT_SIZE];
    out[0..4].copy_from_slice(&INTENT_MAGIC.to_le_bytes());
    out[8..16].copy_from_slice(&local.to_le_bytes());
    out[16..24].copy_from_slice(&global.to_le_bytes());
    out[24..28].copy_from_slice(&home.to_le_bytes());
    let crc = crc32(&[&out[8..INTENT_SLOT_SIZE]]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the intent slot at `off`, returning `(local, global, home)`,
/// or `None` for a free or torn slot.
pub fn decode_intent_slot(buf: &[u8], off: usize) -> Option<(u64, u64, u32)> {
    if get_u32(buf, off)? != INTENT_MAGIC {
        return None;
    }
    let stored = get_u32(buf, off + 4)?;
    let body = buf.get(off + 8..off + INTENT_SLOT_SIZE)?;
    if crc32(&[body]) != stored {
        return None;
    }
    Some((
        get_u64(buf, off + 8)?,
        get_u64(buf, off + 16)?,
        get_u32(buf, off + 24)?,
    ))
}

/// Decodes every live intent slot of a full sharded metadata image,
/// returning `(slot index, local, global, home)` per live slot.
pub fn decode_intent_table(
    meta_image: &[u8],
    commit_slots: usize,
    intent_slots: usize,
    decision_slots: usize,
) -> Vec<(usize, u64, u64, u32)> {
    let base = intent_table_offset(meta_image.len(), commit_slots, intent_slots, decision_slots);
    (0..intent_slots)
        .filter_map(|i| {
            decode_intent_slot(meta_image, base + i * INTENT_SLOT_SIZE)
                .map(|(l, g, h)| (i, l, g, h))
        })
        .collect()
}

/// Encodes a live decision slot: cross-shard transaction `global` is
/// committed. One 16-byte line — one packet.
pub fn encode_decision_slot(global: u64) -> [u8; DECISION_SLOT_SIZE] {
    let mut out = [0u8; DECISION_SLOT_SIZE];
    out[0..4].copy_from_slice(&DECISION_MAGIC.to_le_bytes());
    out[8..16].copy_from_slice(&global.to_le_bytes());
    let crc = crc32(&[&out[8..DECISION_SLOT_SIZE]]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the decision slot at `off`, returning the committed global
/// transaction id, or `None` for a free or torn slot.
pub fn decode_decision_slot(buf: &[u8], off: usize) -> Option<u64> {
    if get_u32(buf, off)? != DECISION_MAGIC {
        return None;
    }
    let stored = get_u32(buf, off + 4)?;
    let body = buf.get(off + 8..off + DECISION_SLOT_SIZE)?;
    if crc32(&[body]) != stored {
        return None;
    }
    get_u64(buf, off + 8)
}

/// Decodes every live decision slot of a full sharded metadata image into
/// the set of committed global transaction ids.
pub fn decode_decision_table(
    meta_image: &[u8],
    commit_slots: usize,
    decision_slots: usize,
) -> Vec<u64> {
    let base = decision_table_offset(meta_image.len(), commit_slots, decision_slots);
    (0..decision_slots)
        .filter_map(|i| decode_decision_slot(meta_image, base + i * DECISION_SLOT_SIZE))
        .collect()
}

/// Decodes the raw commit-table slots from a full metadata image. A slot
/// holding an id *above* the watermark marks that transaction committed;
/// slots at or below the watermark are free (their transactions are
/// already covered by the watermark) — callers filter accordingly.
pub fn decode_commit_table(meta_image: &[u8], commit_slots: usize) -> Vec<u64> {
    let off = commit_table_offset(meta_image.len(), commit_slots);
    (0..commit_slots)
        .filter_map(|i| get_u64(meta_image, off + i * 8))
        .collect()
}

/// Encodes the 16-byte group header bounding a concurrent undo log:
/// `record_bytes` bytes of undo records follow the header. CRC-protected
/// so a torn header rewrite reads as absent, not as a bogus bound.
pub fn encode_group_header(record_bytes: u64) -> [u8; GROUP_HEADER_SIZE] {
    let mut out = [0u8; GROUP_HEADER_SIZE];
    out[0..4].copy_from_slice(&GROUP_MAGIC.to_le_bytes());
    out[4..12].copy_from_slice(&record_bytes.to_le_bytes());
    let crc = crc32(&[&out[0..12]]);
    out[12..16].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the group header at offset 0 of a concurrent undo log,
/// returning the record-region length, or `None` if the bytes do not form
/// a valid header (fresh segment, torn rewrite) — in which case the log
/// holds no scannable records.
pub fn decode_group_header(undo: &[u8]) -> Option<u64> {
    if get_u32(undo, 0)? != GROUP_MAGIC {
        return None;
    }
    let record_bytes = get_u64(undo, 4)?;
    let stored = get_u32(undo, 12)?;
    if crc32(&[&undo[0..12]]) != stored {
        return None;
    }
    Some(record_bytes)
}

/// Computes the IEEE CRC-32 of `parts` concatenated.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut crc = !0u32;
    for part in parts {
        for &b in *part {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

fn get_u64(buf: &[u8], off: usize) -> Option<u64> {
    buf.get(off..off + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn get_u32(buf: &[u8], off: usize) -> Option<u32> {
    buf.get(off..off + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

fn get_u16(buf: &[u8], off: usize) -> Option<u16> {
    buf.get(off..off + 2)
        .map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")))
}

/// The decoded fixed header of the metadata segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaHeader {
    /// Number of regions in the table.
    pub region_count: u32,
    /// Raw id of the current undo segment.
    pub undo_seg_id: u64,
    /// Length of the current undo segment.
    pub undo_seg_len: u64,
    /// Mirror-set epoch this mirror last participated in (0 in images
    /// written before epochs existed).
    pub epoch: u64,
    /// Engine flags ([`FLAG_CONCURRENT`]); 0 in legacy images.
    pub flags: u32,
    /// Number of 8-byte commit-table slots trailing the region table
    /// (0 in legacy images).
    pub commit_slots: u32,
    /// Number of intent slots before the decision table (0 when
    /// [`FLAG_SHARDED`] is clear).
    pub intent_slots: u16,
    /// Number of decision slots before the commit table (0 when
    /// [`FLAG_SHARDED`] is clear).
    pub decision_slots: u16,
    /// Which shard of the sharded database this image is (0 when
    /// unsharded).
    pub shard_index: u16,
    /// Total shard count of the sharded database (0 when unsharded).
    pub shard_count: u16,
    /// Id of the last committed transaction (the commit record). Under
    /// [`FLAG_CONCURRENT`] this is the resolution watermark.
    pub last_committed: u64,
}

impl MetaHeader {
    /// Encodes the full 64-byte header.
    pub fn encode(&self) -> [u8; OFF_REGION_TABLE] {
        let mut out = [0u8; OFF_REGION_TABLE];
        out[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
        out[8..12].copy_from_slice(&META_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.region_count.to_le_bytes());
        out[16..24].copy_from_slice(&self.undo_seg_id.to_le_bytes());
        out[24..32].copy_from_slice(&self.undo_seg_len.to_le_bytes());
        out[OFF_EPOCH..OFF_EPOCH + 8].copy_from_slice(&self.epoch.to_le_bytes());
        out[OFF_FLAGS..OFF_FLAGS + 4].copy_from_slice(&self.flags.to_le_bytes());
        out[OFF_COMMIT_SLOTS..OFF_COMMIT_SLOTS + 4]
            .copy_from_slice(&self.commit_slots.to_le_bytes());
        out[OFF_SHARD..OFF_SHARD + 2].copy_from_slice(&self.intent_slots.to_le_bytes());
        out[OFF_SHARD + 2..OFF_SHARD + 4].copy_from_slice(&self.decision_slots.to_le_bytes());
        out[OFF_SHARD + 4..OFF_SHARD + 6].copy_from_slice(&self.shard_index.to_le_bytes());
        out[OFF_SHARD + 6..OFF_SHARD + 8].copy_from_slice(&self.shard_count.to_le_bytes());
        out[OFF_COMMIT..OFF_COMMIT + 8].copy_from_slice(&self.last_committed.to_le_bytes());
        out
    }

    /// Decodes and validates a header from the start of a metadata
    /// segment.
    ///
    /// # Errors
    ///
    /// Returns a description of the corruption.
    pub fn decode(buf: &[u8]) -> Result<MetaHeader, String> {
        let magic = get_u64(buf, 0).ok_or("metadata segment too short")?;
        if magic != META_MAGIC {
            return Err(format!("bad metadata magic {magic:#x}"));
        }
        let version = get_u32(buf, 8).ok_or("truncated version")?;
        if version != META_VERSION {
            return Err(format!("unsupported metadata version {version}"));
        }
        Ok(MetaHeader {
            region_count: get_u32(buf, 12).ok_or("truncated region count")?,
            undo_seg_id: get_u64(buf, OFF_UNDO).ok_or("truncated undo id")?,
            undo_seg_len: get_u64(buf, OFF_UNDO + 8).ok_or("truncated undo len")?,
            epoch: get_u64(buf, OFF_EPOCH).ok_or("truncated epoch")?,
            flags: get_u32(buf, OFF_FLAGS).ok_or("truncated flags")?,
            commit_slots: get_u32(buf, OFF_COMMIT_SLOTS).ok_or("truncated slot count")?,
            intent_slots: get_u16(buf, OFF_SHARD).ok_or("truncated shard line")?,
            decision_slots: get_u16(buf, OFF_SHARD + 2).ok_or("truncated shard line")?,
            shard_index: get_u16(buf, OFF_SHARD + 4).ok_or("truncated shard line")?,
            shard_count: get_u16(buf, OFF_SHARD + 6).ok_or("truncated shard line")?,
            last_committed: get_u64(buf, OFF_COMMIT).ok_or("truncated commit record")?,
        })
    }
}

/// Encodes one region-table entry.
pub fn encode_region_entry(db_seg_id: u64, region_len: u64) -> [u8; REGION_ENTRY_SIZE] {
    let mut out = [0u8; REGION_ENTRY_SIZE];
    out[0..8].copy_from_slice(&db_seg_id.to_le_bytes());
    out[8..16].copy_from_slice(&region_len.to_le_bytes());
    out
}

/// Decodes the `index`-th region-table entry from a metadata image.
///
/// # Errors
///
/// Returns a description if the table is truncated.
pub fn decode_region_entry(buf: &[u8], index: usize) -> Result<(u64, u64), String> {
    let off = OFF_REGION_TABLE + index * REGION_ENTRY_SIZE;
    let id = get_u64(buf, off).ok_or("truncated region table")?;
    let len = get_u64(buf, off + 8).ok_or("truncated region table")?;
    Ok((id, len))
}

/// The header of one undo record (before-image of one `set_range`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UndoRecord {
    /// Transaction that logged this record.
    pub txn_id: u64,
    /// Region index the before-image belongs to.
    pub region: u32,
    /// Byte offset within the region.
    pub offset: u64,
    /// Length of the before-image.
    pub len: u64,
}

impl UndoRecord {
    /// Total encoded size including the payload.
    pub fn encoded_len(&self) -> usize {
        UNDO_HEADER_SIZE + self.len as usize
    }

    /// Encodes header + `payload` into `out` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() != self.len` or `out` is too short.
    pub fn encode_into(&self, out: &mut [u8], at: usize, payload: &[u8]) {
        assert_eq!(payload.len() as u64, self.len, "payload length mismatch");
        let mut head = [0u8; UNDO_HEADER_SIZE];
        head[0..4].copy_from_slice(&UNDO_MAGIC.to_le_bytes());
        head[4..12].copy_from_slice(&self.txn_id.to_le_bytes());
        head[12..16].copy_from_slice(&self.region.to_le_bytes());
        head[16..24].copy_from_slice(&self.offset.to_le_bytes());
        head[24..32].copy_from_slice(&self.len.to_le_bytes());
        let crc = crc32(&[&head[0..32], payload]);
        head[32..36].copy_from_slice(&crc.to_le_bytes());
        out[at..at + UNDO_HEADER_SIZE].copy_from_slice(&head);
        out[at + UNDO_HEADER_SIZE..at + UNDO_HEADER_SIZE + payload.len()].copy_from_slice(payload);
    }

    /// Attempts to decode a record at `at` in `buf`. Returns the record and
    /// the payload range, or `None` if the bytes do not form a valid record
    /// (wrong magic, truncation, or CRC mismatch) — which recovery treats
    /// as the end of the log.
    pub fn decode_at(buf: &[u8], at: usize) -> Option<(UndoRecord, std::ops::Range<usize>)> {
        if get_u32(buf, at)? != UNDO_MAGIC {
            return None;
        }
        let txn_id = get_u64(buf, at + 4)?;
        let region = get_u32(buf, at + 12)?;
        let offset = get_u64(buf, at + 16)?;
        let len = get_u64(buf, at + 24)?;
        let stored_crc = get_u32(buf, at + 32)?;
        let payload_start = at + UNDO_HEADER_SIZE;
        let payload_end = payload_start.checked_add(usize::try_from(len).ok()?)?;
        if payload_end > buf.len() {
            return None;
        }
        let crc = crc32(&[&buf[at..at + 32], &buf[payload_start..payload_end]]);
        if crc != stored_crc {
            return None;
        }
        Some((
            UndoRecord {
                txn_id,
                region,
                offset,
                len,
            },
            payload_start..payload_end,
        ))
    }
}

/// The header of one redo record: the **after**-image of one committed
/// `set_range`. Identical self-validating framing to [`UndoRecord`]
/// (magic + transaction id + CRC-32 over header and payload) under its
/// own magic, so replay can scan a log segment and stop at the first
/// record that is torn or absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedoRecord {
    /// Transaction that logged this record.
    pub txn_id: u64,
    /// Region index the after-image belongs to.
    pub region: u32,
    /// Byte offset within the region.
    pub offset: u64,
    /// Length of the after-image.
    pub len: u64,
}

impl RedoRecord {
    /// Total encoded size including the payload.
    pub fn encoded_len(&self) -> usize {
        REDO_HEADER_SIZE + self.len as usize
    }

    /// Encodes header + `payload` into `out` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() != self.len` or `out` is too short.
    pub fn encode_into(&self, out: &mut [u8], at: usize, payload: &[u8]) {
        assert_eq!(payload.len() as u64, self.len, "payload length mismatch");
        let head = self.encode_head(payload);
        out[at..at + REDO_HEADER_SIZE].copy_from_slice(&head);
        out[at + REDO_HEADER_SIZE..at + REDO_HEADER_SIZE + payload.len()].copy_from_slice(payload);
    }

    /// Encodes just the CRC-sealed 36-byte header for `payload`, for
    /// callers that ship header and payload as separate vectored parts.
    pub fn encode_head(&self, payload: &[u8]) -> [u8; REDO_HEADER_SIZE] {
        assert_eq!(payload.len() as u64, self.len, "payload length mismatch");
        let mut head = [0u8; REDO_HEADER_SIZE];
        head[0..4].copy_from_slice(&REDO_MAGIC.to_le_bytes());
        head[4..12].copy_from_slice(&self.txn_id.to_le_bytes());
        head[12..16].copy_from_slice(&self.region.to_le_bytes());
        head[16..24].copy_from_slice(&self.offset.to_le_bytes());
        head[24..32].copy_from_slice(&self.len.to_le_bytes());
        let crc = crc32(&[&head[0..32], payload]);
        head[32..36].copy_from_slice(&crc.to_le_bytes());
        head
    }

    /// Attempts to decode a record at `at` in `buf`. Returns the record
    /// and the payload range, or `None` if the bytes do not form a valid
    /// record — which replay treats as the end of the segment's used
    /// prefix.
    pub fn decode_at(buf: &[u8], at: usize) -> Option<(RedoRecord, std::ops::Range<usize>)> {
        if get_u32(buf, at)? != REDO_MAGIC {
            return None;
        }
        let txn_id = get_u64(buf, at + 4)?;
        let region = get_u32(buf, at + 12)?;
        let offset = get_u64(buf, at + 16)?;
        let len = get_u64(buf, at + 24)?;
        let stored_crc = get_u32(buf, at + 32)?;
        let payload_start = at + REDO_HEADER_SIZE;
        let payload_end = payload_start.checked_add(usize::try_from(len).ok()?)?;
        if payload_end > buf.len() {
            return None;
        }
        let crc = crc32(&[&buf[at..at + 32], &buf[payload_start..payload_end]]);
        if crc != stored_crc {
            return None;
        }
        Some((
            RedoRecord {
                txn_id,
                region,
                offset,
                len,
            },
            payload_start..payload_end,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_record_fits_one_line() {
        // The durability point must be packet-atomic: the 8-byte record
        // may not straddle a 16-byte line...
        assert_eq!(OFF_COMMIT / 16, (OFF_COMMIT + 7) / 16);
        // ...and it should end on the last word of its 64-byte buffer so
        // the card flushes it eagerly.
        assert_eq!((OFF_COMMIT + 8) % 64, 0);
    }

    #[test]
    fn undo_indirection_fits_one_line() {
        assert_eq!(OFF_UNDO % 16, 0);
    }

    #[test]
    fn epoch_fits_one_line() {
        // The epoch bump fences a mirror with a single packet: the
        // 8-byte counter may not straddle a 16-byte line.
        assert_eq!(OFF_EPOCH / 16, (OFF_EPOCH + 7) / 16);
        // It must not share a line with the commit record either —
        // fencing and committing are separate atomic events.
        assert_ne!(OFF_EPOCH / 16, OFF_COMMIT / 16);
    }

    #[test]
    fn header_roundtrips() {
        let h = MetaHeader {
            region_count: 3,
            undo_seg_id: 42,
            undo_seg_len: 4096,
            epoch: 9,
            flags: FLAG_CONCURRENT,
            commit_slots: 64,
            intent_slots: 0,
            decision_slots: 0,
            shard_index: 0,
            shard_count: 0,
            last_committed: 17,
        };
        let enc = h.encode();
        assert_eq!(MetaHeader::decode(&enc).unwrap(), h);
    }

    #[test]
    fn pre_epoch_images_decode_as_epoch_zero() {
        // Images written before the epoch field existed left bytes
        // 32..40 zeroed; they must decode as epoch 0, which passes the
        // default `min_epoch = 0` admission check.
        let h = MetaHeader {
            region_count: 1,
            undo_seg_id: 7,
            undo_seg_len: 64,
            epoch: 3,
            flags: 0,
            commit_slots: 0,
            intent_slots: 0,
            decision_slots: 0,
            shard_index: 0,
            shard_count: 0,
            last_committed: 2,
        };
        let mut enc = h.encode();
        enc[OFF_EPOCH..OFF_EPOCH + 8].fill(0);
        assert_eq!(MetaHeader::decode(&enc).unwrap().epoch, 0);
    }

    #[test]
    fn header_rejects_corruption() {
        let h = MetaHeader {
            region_count: 1,
            undo_seg_id: 1,
            undo_seg_len: 1,
            epoch: 1,
            flags: 0,
            commit_slots: 0,
            intent_slots: 0,
            decision_slots: 0,
            shard_index: 0,
            shard_count: 0,
            last_committed: 0,
        };
        let mut enc = h.encode();
        enc[0] ^= 0xFF;
        assert!(MetaHeader::decode(&enc).unwrap_err().contains("magic"));
        assert!(MetaHeader::decode(&[0; 4]).is_err());
        let mut enc = h.encode();
        enc[8] ^= 0xFF; // version
        assert!(MetaHeader::decode(&enc).unwrap_err().contains("version"));
    }

    #[test]
    fn region_entries_roundtrip() {
        let mut buf = vec![0u8; meta_segment_size(4)];
        let e = encode_region_entry(9, 512);
        buf[OFF_REGION_TABLE + 2 * REGION_ENTRY_SIZE..OFF_REGION_TABLE + 3 * REGION_ENTRY_SIZE]
            .copy_from_slice(&e);
        assert_eq!(decode_region_entry(&buf, 2).unwrap(), (9, 512));
        assert!(decode_region_entry(&buf, 4).is_err());
    }

    #[test]
    fn undo_record_roundtrips() {
        let rec = UndoRecord {
            txn_id: 5,
            region: 2,
            offset: 100,
            len: 4,
        };
        let mut buf = vec![0u8; 128];
        rec.encode_into(&mut buf, 8, &[1, 2, 3, 4]);
        let (got, payload) = UndoRecord::decode_at(&buf, 8).unwrap();
        assert_eq!(got, rec);
        assert_eq!(&buf[payload], &[1, 2, 3, 4]);
    }

    #[test]
    fn torn_record_is_rejected() {
        let rec = UndoRecord {
            txn_id: 5,
            region: 0,
            offset: 0,
            len: 8,
        };
        let mut buf = vec![0u8; 64];
        rec.encode_into(&mut buf, 0, &[7; 8]);
        // Corrupt one payload byte: CRC must fail.
        buf[UNDO_HEADER_SIZE + 3] ^= 1;
        assert!(UndoRecord::decode_at(&buf, 0).is_none());
    }

    #[test]
    fn garbage_and_truncation_rejected() {
        assert!(UndoRecord::decode_at(&[0; 16], 0).is_none());
        let rec = UndoRecord {
            txn_id: 1,
            region: 0,
            offset: 0,
            len: 100,
        };
        let mut buf = vec![0u8; 200];
        rec.encode_into(&mut buf, 0, &[0; 100]);
        // Truncate below the payload end.
        assert!(UndoRecord::decode_at(&buf[..120], 0).is_none());
        // Absurd length must not panic.
        let mut buf = vec![0u8; 64];
        buf[0..4].copy_from_slice(&UNDO_MAGIC.to_le_bytes());
        buf[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(UndoRecord::decode_at(&buf, 0).is_none());
    }

    #[test]
    fn crc_concatenation_matches_flat() {
        let a = crc32(&[b"hello ", b"world"]);
        let b = crc32(&[b"hello world"]);
        assert_eq!(a, b);
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
    }

    #[test]
    fn meta_size_scales_with_regions() {
        assert_eq!(meta_segment_size(0), 64);
        assert_eq!(meta_segment_size(4), 64 + 64);
    }

    #[test]
    fn concurrent_meta_size_appends_commit_table() {
        assert_eq!(meta_segment_size_concurrent(4, 0), meta_segment_size(4));
        assert_eq!(
            meta_segment_size_concurrent(4, 64),
            meta_segment_size(4) + 512
        );
        assert_eq!(
            commit_table_offset(meta_segment_size_concurrent(4, 64), 64),
            meta_segment_size(4)
        );
    }

    #[test]
    fn commit_table_slots_are_packet_atomic() {
        // The region table is 16-byte-aligned and entries are 16 bytes,
        // so the commit table starts on a line boundary: every 8-byte
        // slot sits inside one 16-byte line and is written with a single
        // packet, exactly like the commit record itself.
        assert_eq!(OFF_REGION_TABLE % 16, 0);
        assert_eq!(REGION_ENTRY_SIZE % 16, 0);
        for max_regions in [0, 1, 64] {
            let table = meta_segment_size(max_regions);
            for slot in 0..8 {
                let off = table + slot * 8;
                assert_eq!(off / 16, (off + 7) / 16, "slot {slot} straddles a line");
            }
        }
    }

    #[test]
    fn flags_and_slots_roundtrip_and_default_to_legacy() {
        let h = MetaHeader {
            region_count: 1,
            undo_seg_id: 1,
            undo_seg_len: 64,
            epoch: 0,
            flags: FLAG_CONCURRENT,
            commit_slots: 16,
            intent_slots: 0,
            decision_slots: 0,
            shard_index: 0,
            shard_count: 0,
            last_committed: 0,
        };
        let got = MetaHeader::decode(&h.encode()).unwrap();
        assert_eq!(got.flags, FLAG_CONCURRENT);
        assert_eq!(got.commit_slots, 16);
        // Legacy images left bytes 40..48 zeroed: they must decode as a
        // non-concurrent header with an empty commit table.
        let mut enc = h.encode();
        enc[OFF_FLAGS..OFF_COMMIT_SLOTS + 4].fill(0);
        let got = MetaHeader::decode(&enc).unwrap();
        assert_eq!(got.flags, 0);
        assert_eq!(got.commit_slots, 0);
    }

    #[test]
    fn group_header_roundtrips() {
        let enc = encode_group_header(1234);
        assert_eq!(decode_group_header(&enc), Some(1234));
        assert_eq!(GROUP_HEADER_SIZE % 16, 0); // own line: packet-atomic rewrite
    }

    #[test]
    fn torn_group_header_reads_as_absent() {
        // A fresh (zeroed) segment has no header...
        assert_eq!(decode_group_header(&[0u8; 64]), None);
        // ...a truncated one doesn't either...
        let enc = encode_group_header(77);
        assert_eq!(decode_group_header(&enc[..12]), None);
        // ...and a single flipped bit anywhere fails the CRC.
        for i in 0..GROUP_HEADER_SIZE {
            let mut bad = enc;
            bad[i] ^= 1;
            assert_eq!(decode_group_header(&bad), None, "bit flip at {i} accepted");
        }
    }

    #[test]
    fn commit_table_decodes_raw_slots() {
        let mut image = vec![0u8; meta_segment_size_concurrent(2, 4)];
        let base = commit_table_offset(image.len(), 4);
        for (i, id) in [9u64, 0, 3, 12].iter().enumerate() {
            image[base + i * 8..base + i * 8 + 8].copy_from_slice(&id.to_le_bytes());
        }
        assert_eq!(decode_commit_table(&image, 4), vec![9, 0, 3, 12]);
    }

    #[test]
    fn intent_slot_roundtrips_and_rejects_torn_writes() {
        let enc = encode_intent_slot(7, 1001, 2);
        assert_eq!(decode_intent_slot(&enc, 0), Some((7, 1001, 2)));
        // A torn slot (any payload byte lost) reads as absent, not as a
        // bogus intent.
        for i in 8..INTENT_SLOT_SIZE {
            let mut torn = enc;
            torn[i] ^= 0xFF;
            assert_eq!(decode_intent_slot(&torn, 0), None, "byte {i}");
        }
        // A cleared (zeroed) slot is absent too.
        assert_eq!(decode_intent_slot(&[0u8; INTENT_SLOT_SIZE], 0), None);
    }

    #[test]
    fn decision_slot_roundtrips_and_rejects_torn_writes() {
        let enc = encode_decision_slot(1001);
        assert_eq!(decode_decision_slot(&enc, 0), Some(1001));
        for i in 8..DECISION_SLOT_SIZE {
            let mut torn = enc;
            torn[i] ^= 0xFF;
            assert_eq!(decode_decision_slot(&torn, 0), None, "byte {i}");
        }
        assert_eq!(decode_decision_slot(&[0u8; DECISION_SLOT_SIZE], 0), None);
    }

    #[test]
    fn decision_slots_are_packet_atomic() {
        // A decision record is the cross-shard commit point: each slot
        // must be exactly one 16-byte line (one SCI packet), so a crash
        // mid-flush leaves it fully durable or CRC-invalid.
        assert_eq!(DECISION_SLOT_SIZE, 16);
        // Every table the sharded layout appends is 16-byte aligned from
        // the segment end (even commit_slots keeps the 8-byte tail words
        // paired into lines), so slots never straddle lines.
        let len = meta_segment_size_sharded(64, 32, 16, 8);
        assert_eq!(commit_table_offset(len, 32) % 16, 0);
        assert_eq!(decision_table_offset(len, 32, 8) % 16, 0);
        assert_eq!(intent_table_offset(len, 32, 16, 8) % 16, 0);
        assert_eq!(INTENT_SLOT_SIZE % 16, 0);
    }

    #[test]
    #[should_panic(expected = "even commit_slots")]
    fn odd_commit_slots_are_rejected_in_sharded_images() {
        meta_segment_size_sharded(64, 33, 16, 8);
    }

    #[test]
    fn sharded_meta_layout_nests_tables_without_overlap() {
        let len = meta_segment_size_sharded(8, 4, 2, 2);
        assert_eq!(
            len,
            meta_segment_size_concurrent(8, 4) + 2 * INTENT_SLOT_SIZE + 2 * DECISION_SLOT_SIZE
        );
        let intents = intent_table_offset(len, 4, 2, 2);
        let decisions = decision_table_offset(len, 4, 2);
        let commits = commit_table_offset(len, 4);
        // Region table < intents < decisions < commits < end.
        assert!(OFF_REGION_TABLE + 8 * REGION_ENTRY_SIZE <= intents);
        assert_eq!(intents + 2 * INTENT_SLOT_SIZE, decisions);
        assert_eq!(decisions + 2 * DECISION_SLOT_SIZE, commits);
        assert_eq!(commits + 4 * 8, len);
    }

    #[test]
    fn intent_and_decision_tables_decode_only_live_slots() {
        let len = meta_segment_size_sharded(4, 4, 3, 2);
        let mut image = vec![0u8; len];
        let ibase = intent_table_offset(len, 4, 3, 2);
        image[ibase + INTENT_SLOT_SIZE..ibase + 2 * INTENT_SLOT_SIZE]
            .copy_from_slice(&encode_intent_slot(5, 900, 1));
        let dbase = decision_table_offset(len, 4, 2);
        image[dbase..dbase + DECISION_SLOT_SIZE].copy_from_slice(&encode_decision_slot(900));
        assert_eq!(decode_intent_table(&image, 4, 3, 2), vec![(1, 5, 900, 1)]);
        assert_eq!(decode_decision_table(&image, 4, 2), vec![900]);
    }

    #[test]
    fn redo_record_roundtrips_and_rejects_corruption() {
        let rec = RedoRecord {
            txn_id: 5,
            region: 2,
            offset: 100,
            len: 4,
        };
        let mut buf = vec![0u8; 128];
        rec.encode_into(&mut buf, 8, &[1, 2, 3, 4]);
        let (got, payload) = RedoRecord::decode_at(&buf, 8).unwrap();
        assert_eq!(got, rec);
        assert_eq!(&buf[payload], &[1, 2, 3, 4]);
        // The vectored head matches the flat encoding.
        assert_eq!(rec.encode_head(&[1, 2, 3, 4]), buf[8..8 + REDO_HEADER_SIZE]);
        // A redo record must never decode as an undo record (and vice
        // versa): the two logs use distinct magics.
        assert!(UndoRecord::decode_at(&buf, 8).is_none());
        // Any flipped bit anywhere in header or payload fails the CRC.
        for i in 8..8 + rec.encoded_len() {
            let mut bad = buf.clone();
            bad[i] ^= 1;
            assert!(RedoRecord::decode_at(&bad, 8).is_none(), "bit flip at {i}");
        }
        // Fresh zeroed bytes and absurd lengths read as end-of-log.
        assert!(RedoRecord::decode_at(&[0; 64], 0).is_none());
        let mut buf = vec![0u8; 64];
        buf[0..4].copy_from_slice(&REDO_MAGIC.to_le_bytes());
        buf[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(RedoRecord::decode_at(&buf, 0).is_none());
    }

    #[test]
    fn redo_dir_header_roundtrips_and_rejects_torn_writes() {
        let enc = encode_redo_dir_header(64 << 10, 8);
        assert_eq!(decode_redo_dir_header(&enc, 0), Some((64 << 10, 8)));
        for i in 0..16 {
            let mut torn = enc;
            torn[i] ^= 1;
            assert_eq!(decode_redo_dir_header(&torn, 0), None, "byte {i}");
        }
        // A fresh (zeroed) line has no header.
        assert_eq!(decode_redo_dir_header(&[0u8; 16], 0), None);
    }

    #[test]
    fn redo_entry_roundtrips_and_zero_reads_as_empty() {
        let enc = encode_redo_entry(42, 0);
        assert_eq!(decode_redo_entry(&enc, 0), Some((42, 0)));
        let enc = encode_redo_entry(9, 17);
        assert_eq!(decode_redo_entry(&enc, 0), Some((9, 17)));
        // A zeroed (retired) entry is an empty slot, even for seg_id 0.
        assert_eq!(decode_redo_entry(&[0u8; REDO_ENTRY_SIZE], 0), None);
    }

    #[test]
    fn redo_dir_nests_before_intent_table_without_overlap() {
        // Sharded + redo image: the directory sits between the region
        // table and the intent table, every line packet-atomic.
        let slots = 4;
        let len = meta_segment_size_sharded(8, 4, 2, 2) + redo_dir_size(slots);
        let dir_end = redo_dir_end(len, 4, 2, 2);
        assert_eq!(dir_end + 2 * INTENT_SLOT_SIZE, decision_table_offset(len, 4, 2));
        assert_eq!(redo_header_offset(dir_end) + 16, dir_end);
        assert_eq!(redo_tail_offset(dir_end) + 16, redo_header_offset(dir_end));
        assert_eq!(redo_snap_offset(dir_end) + 16, redo_tail_offset(dir_end));
        assert_eq!(
            redo_entry_offset(dir_end, slots, slots - 1) + REDO_ENTRY_SIZE,
            redo_snap_offset(dir_end)
        );
        assert_eq!(
            redo_entry_offset(dir_end, slots, 0),
            dir_end - redo_dir_size(slots)
        );
        assert!(OFF_REGION_TABLE + 8 * REGION_ENTRY_SIZE <= redo_entry_offset(dir_end, slots, 0));
        // Every directory line is 16-byte aligned: the tail and snapshot
        // u64s and each entry are single-packet writes.
        for off in [
            redo_header_offset(dir_end),
            redo_tail_offset(dir_end),
            redo_snap_offset(dir_end),
            redo_entry_offset(dir_end, slots, 0),
        ] {
            assert_eq!(off % 16, 0, "offset {off} not line-aligned");
        }
        // Legacy (unsharded, non-concurrent) redo image: the directory is
        // the only tail table and ends at the segment end.
        let len = meta_segment_size(8) + redo_dir_size(slots);
        assert_eq!(redo_dir_end(len, 0, 0, 0), len);
    }

    #[test]
    fn sharded_header_roundtrips_and_legacy_zeros_decode_unsharded() {
        let h = MetaHeader {
            region_count: 2,
            undo_seg_id: 11,
            undo_seg_len: 2048,
            epoch: 4,
            flags: FLAG_CONCURRENT | FLAG_SHARDED,
            commit_slots: 16,
            intent_slots: 8,
            decision_slots: 4,
            shard_index: 2,
            shard_count: 3,
            last_committed: 77,
        };
        let enc = h.encode();
        let dec = MetaHeader::decode(&enc).unwrap();
        assert_eq!(dec, h);
        // Legacy images carry zeros at OFF_SHARD: they decode as
        // unsharded, so pre-shard metadata stays readable.
        let mut legacy = enc;
        legacy[OFF_FLAGS..OFF_FLAGS + 4].copy_from_slice(&FLAG_CONCURRENT.to_le_bytes());
        legacy[OFF_SHARD..OFF_SHARD + 8].fill(0);
        let dec = MetaHeader::decode(&legacy).unwrap();
        assert_eq!(dec.flags & FLAG_SHARDED, 0);
        assert_eq!(dec.shard_count, 0);
        assert_eq!(dec.intent_slots, 0);
    }
}
