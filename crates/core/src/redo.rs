//! The REDO-only log-structured commit path (`PerseasConfig::with_redo`).
//!
//! In redo mode a commit ships **after-images** instead of undo copies:
//! the declared ranges are framed as CRC-guarded [`RedoRecord`]s and
//! appended — together with the packet-atomic log-tail line — in one
//! vectored write per mirror to a log of fixed-size remote segments. The
//! packet-atomic commit record (legacy) or watermark/slot write
//! (concurrent) stays the durability point, published only after an ack
//! barrier confirms the records and the tail, so a durable marker always
//! implies a durable log suffix. The mirrored database segments are
//! **not** touched on the hot path: they hold the image of the last
//! [`Perseas::redo_snapshot`], and recovery replays the committed log
//! suffix `(snapshot position, tail]` on top of it — restart time scales
//! with the live tail, not total history.
//!
//! The log directory (geometry header, tail, snapshot position, one
//! 16-byte entry per segment slot) lives at the tail of the metadata
//! segment, directly before the coordination tables (see
//! [`crate::layout::redo_dir_end`]). Records never straddle a segment
//! boundary: a record that does not fit pads the remainder with zeroes
//! and replay jumps to the next boundary on the (CRC-guaranteed) decode
//! failure.
//!
//! Aborts are purely local — uncommitted records are inert without the
//! marker — with one exception: a transaction whose records already
//! reached the log (a prepared member, or a commit that failed past the
//! append) must publish an **abort tombstone**
//! ([`REDO_TOMBSTONE_REGION`]) before its id can be passed by the
//! watermark, or replay would resurrect the aborted bytes.

use std::collections::BTreeSet;

use perseas_rnram::{RemoteMemory, RnError, SegmentId};
use perseas_simtime::SimClock;
use perseas_txn::TxnError;

use crate::config::PerseasConfig;
use crate::layout::{
    decode_redo_dir_header, decode_redo_entry, encode_redo_entry, redo_dir_end,
    redo_entry_offset, redo_header_offset, redo_snap_offset, redo_tail_offset, MetaHeader,
    RedoRecord, REDO_ENTRY_SIZE, REDO_TOMBSTONE_REGION,
};
use crate::perseas::{unavailable, MirrorBatches, Perseas, Phase};
use crate::trace::TraceEvent;

/// One write to be logged: `(txn id, region index, start, len)`. A
/// `region` of [`REDO_TOMBSTONE_REGION`] (with zero length) logs an
/// abort tombstone instead of an after-image.
pub(crate) type RedoWrite = (u64, usize, usize, usize);

/// Engine-side state of the segmented redo log.
pub(crate) struct RedoState {
    /// Absolute log byte position of the durable tail (`seq * seg_size +
    /// offset`).
    pub(crate) tail: u64,
    /// Compaction floor: the smallest snapshot position any healthy
    /// mirror's image covers. Segments wholly below it are retired.
    pub(crate) snap_floor: u64,
    /// Which log segment sequence number each directory slot holds.
    pub(crate) slot_seqs: Vec<Option<u64>>,
}

impl RedoState {
    pub(crate) fn new(slots: usize) -> Self {
        RedoState {
            tail: 0,
            snap_floor: 0,
            slot_seqs: vec![None; slots],
        }
    }

    pub(crate) fn live_segments(&self) -> usize {
        self.slot_seqs.iter().flatten().count()
    }
}

/// A record chunk placed at a concrete log position.
struct Placed {
    seq: u64,
    off: usize,
    bytes: Vec<u8>,
}

/// The decoded redo directory of one mirror's metadata image.
pub(crate) struct RedoDir {
    pub(crate) seg_size: u64,
    pub(crate) slot_count: usize,
    pub(crate) tail: u64,
    pub(crate) snap: u64,
    /// Slot → `(segment id, seq)` of the live log segment it holds.
    pub(crate) entries: Vec<Option<(u64, u64)>>,
}

/// One decoded suffix record with its payload and absolute log position.
pub(crate) struct SuffixRecord {
    pub(crate) pos: u64,
    pub(crate) rec: RedoRecord,
    pub(crate) payload: Vec<u8>,
}

impl SuffixRecord {
    pub(crate) fn is_tombstone(&self) -> bool {
        self.rec.region == REDO_TOMBSTONE_REGION
    }
}

impl<M: RemoteMemory> Perseas<M> {
    /// End offset of the redo directory inside a metadata segment of
    /// `meta_len` bytes under the current config (the directory nests
    /// directly before the intent table; see
    /// [`crate::layout::redo_dir_end`]).
    pub(crate) fn redo_dir_end_local(&self, meta_len: usize) -> usize {
        let cs = if self.cfg.concurrent {
            self.cfg.commit_slots
        } else {
            0
        };
        let (is, ds) = if self.cfg.shard_count > 0 {
            (self.cfg.intent_slots, self.cfg.decision_slots)
        } else {
            (0, 0)
        };
        redo_dir_end(meta_len, cs, is, ds)
    }

    /// Appends one coalesced batch of after-image records (and the
    /// packet-atomic tail line) to the log on every healthy mirror:
    /// fresh segments are opened and published in the directory as
    /// needed, then the directory entries, the records, and the tail
    /// ride a single vectored write per mirror — per-connection FIFO
    /// guarantees the tail can only ever name fully-received records —
    /// and an ack barrier confirms the burst.
    ///
    /// Returns `(records appended, payload bytes)`.
    pub(crate) fn redo_append(&mut self, writes: &[RedoWrite]) -> Result<(usize, usize), TxnError> {
        if writes.is_empty() {
            return Ok((0, 0));
        }
        let seg_size = self.cfg.redo_segment_bytes as u64;
        let slots = self.cfg.redo_segments;

        // 1. Frame and place every record, never straddling a segment.
        let mut pos = self.redo.tail;
        let mut chunks: Vec<Placed> = Vec::with_capacity(writes.len());
        let mut payload_bytes = 0usize;
        let mut encoded_bytes = 0usize;
        for &(txn_id, ri, start, len) in writes {
            let rec = if ri == REDO_TOMBSTONE_REGION as usize {
                RedoRecord {
                    txn_id,
                    region: REDO_TOMBSTONE_REGION,
                    offset: 0,
                    len: 0,
                }
            } else {
                RedoRecord {
                    txn_id,
                    region: ri as u32,
                    offset: start as u64,
                    len: len as u64,
                }
            };
            let total = rec.encoded_len();
            if total as u64 > seg_size {
                return Err(TxnError::Unavailable(format!(
                    "redo record of {total} bytes exceeds the {seg_size}-byte log segment; \
                     raise PerseasConfig::with_redo_log"
                )));
            }
            if pos % seg_size + total as u64 > seg_size {
                pos = (pos / seg_size + 1) * seg_size;
            }
            // Marshalling the record for the wire is not charged as a
            // modeled memcpy, matching the batched undo path (which
            // ships arena and region bytes without an extra local-copy
            // charge): the application's before-image copy at set_range
            // time is the commit path's one local copy in both modes.
            let mut bytes = vec![0u8; total];
            if rec.region == REDO_TOMBSTONE_REGION {
                rec.encode_into(&mut bytes, 0, &[]);
            } else {
                rec.encode_into(&mut bytes, 0, &self.regions[ri][start..start + len]);
            }
            payload_bytes += len;
            encoded_bytes += total;
            chunks.push(Placed {
                seq: pos / seg_size,
                off: (pos % seg_size) as usize,
                bytes,
            });
            pos += total as u64;
        }
        let new_tail = pos;

        // 2. Open fresh (zeroed) segments for sequences this batch
        //    reaches first. An occupied slot means the log wrapped past
        //    its snapshot: the caller must `redo_snapshot` to compact.
        let touched: BTreeSet<u64> = chunks.iter().map(|c| c.seq).collect();
        for &seq in &touched {
            let slot = (seq % slots as u64) as usize;
            match self.redo.slot_seqs[slot] {
                Some(s) if s == seq => continue,
                Some(stale) => {
                    return Err(TxnError::Unavailable(format!(
                        "redo log full: slot {slot} still holds segment {stale} \
                         (call redo_snapshot to compact before appending)"
                    )))
                }
                None => {}
            }
            let mut any_failed = false;
            for mi in 0..self.mirrors.len() {
                if !self.mirrors[mi].is_healthy() {
                    continue;
                }
                self.fault_step()?;
                let m = &mut self.mirrors[mi];
                if m.redo.len() < slots {
                    m.redo.resize(slots, None);
                }
                match m.backend.remote_malloc(self.cfg.redo_segment_bytes, 0) {
                    Ok(seg) => m.redo[slot] = Some(seg),
                    Err(e) if e.is_unavailable() => {
                        self.mark_down(mi, &e);
                        any_failed = true;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
            }
            self.fence_failed(any_failed)?;
            self.redo.slot_seqs[slot] = Some(seq);
            let live = self.redo.live_segments();
            self.emit(TraceEvent::RedoSegmentOpened { seq, slot, live });
        }

        // 3. One vectored burst per mirror: directory entries for every
        //    touched slot (idempotent 16-byte lines, re-sent so a retry
        //    after a partial fan-out cannot leave a mirror without
        //    them), the records, and the tail line last.
        let dir_slots: BTreeSet<usize> = touched
            .iter()
            .map(|&seq| (seq % slots as u64) as usize)
            .collect();
        let lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                let dir_end = self.redo_dir_end_local(m.meta.len);
                let mut list = Vec::with_capacity(dir_slots.len() + chunks.len() + 1);
                for &slot in &dir_slots {
                    let seq = self.redo.slot_seqs[slot].expect("slot opened above");
                    let seg = m.redo[slot].expect("segment allocated above");
                    list.push((
                        m.meta.id,
                        redo_entry_offset(dir_end, slots, slot),
                        encode_redo_entry(seg.id.as_raw(), seq).to_vec(),
                    ));
                }
                for c in &chunks {
                    let slot = (c.seq % slots as u64) as usize;
                    let seg = m.redo[slot].expect("segment allocated above");
                    list.push((seg.id, c.off, c.bytes.clone()));
                }
                list.push((
                    m.meta.id,
                    redo_tail_offset(dir_end),
                    new_tail.to_le_bytes().to_vec(),
                ));
                (mi, list)
            })
            .collect();
        self.fan_out_vectored(lists)?;
        self.flush_mirrors()?;
        self.redo.tail = new_tail;
        let live_bytes = new_tail - self.redo.snap_floor;
        self.emit(TraceEvent::RedoAppend {
            records: chunks.len(),
            bytes: encoded_bytes,
            tail: new_tail,
            live_bytes,
        });
        Ok((chunks.len(), payload_bytes))
    }

    /// The legacy-engine redo commit: append the after-images, then
    /// publish the same packet-atomic commit record as the undo paths as
    /// the durability point.
    pub(crate) fn commit_redo(
        &mut self,
        txn: &mut crate::perseas::ActiveTxn,
        ranges: &[(usize, usize, usize)],
    ) -> Result<(), TxnError> {
        let id = txn.id;
        let writes: Vec<RedoWrite> = ranges.iter().map(|&(ri, s, l)| (id, ri, s, l)).collect();
        self.redo_append(&writes)?;
        // The log now holds this transaction's records: an abort after a
        // failure past this point must publish a tombstone (see
        // `Perseas::redo_abort_mark`), not restore any mirror bytes —
        // the database segments were never touched.
        txn.mirrors_dirty = true;
        // Durability point: published only after the ack barrier above,
        // so a durable marker implies durable records and tail.
        self.write_commit_records(id)
            .and_then(|()| self.flush_mirrors())
            .map_err(|e| self.durability_in_doubt(e, id))
    }

    /// Publishes an abort tombstone for `id`, whose after-images already
    /// reached the log: replay must treat the records as dead even after
    /// the watermark passes the id. Confirmed before the abort returns.
    pub(crate) fn redo_abort_mark(&mut self, id: u64) -> Result<(), TxnError> {
        self.redo_append(&[(id, REDO_TOMBSTONE_REGION as usize, 0, 0)])
            .map(|_| ())
    }

    /// Takes a snapshot of the database into the mirrored db segments
    /// and compacts the log: streams a consistent image of every region
    /// to every healthy mirror, advances the per-mirror snapshot
    /// position (one packet-atomic line each) to the current tail, and
    /// retires every log segment wholly below the new floor. After this,
    /// recovery replays only the records appended since — restart time
    /// is bounded by the live tail.
    ///
    /// A crash at any point is safe: a torn region image is only ever
    /// torn in bytes that committed records above the *old* snapshot
    /// position re-apply, and the snapshot line moves only after the
    /// image is confirmed.
    ///
    /// # Errors
    ///
    /// Fails outside redo mode, while transactions are open, or when
    /// fewer than `commit_quorum` mirrors are healthy.
    pub fn redo_snapshot(&mut self) -> Result<(), TxnError> {
        if !self.cfg.redo {
            return Err(TxnError::Unavailable(
                "redo mode is off; enable with PerseasConfig::with_redo".into(),
            ));
        }
        self.ensure_phase(Phase::Ready)?;
        self.ensure_no_open_txns()?;
        self.check_commit_quorum()?;
        let tail = self.redo.tail;

        // 1. Stream the region images (no transaction is open, so the
        //    local image is exactly the committed state) and confirm.
        let db_lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                (
                    mi,
                    self.regions
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| !r.is_empty())
                        .map(|(ri, r)| (m.db[ri].id, 0, r.clone()))
                        .collect(),
                )
            })
            .collect();
        let bytes: usize = self.regions.iter().map(Vec::len).sum();
        self.fan_out_vectored(db_lists)?;
        self.flush_mirrors()?;

        // 2. Advance the snapshot position — one packet-atomic line per
        //    mirror, confirmed before the floor moves. A crash between
        //    mirrors leaves each self-consistent: every mirror's image
        //    covers exactly the position its own line names.
        let snap_lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                let dir_end = self.redo_dir_end_local(m.meta.len);
                (
                    mi,
                    vec![(
                        m.meta.id,
                        redo_snap_offset(dir_end),
                        tail.to_le_bytes().to_vec(),
                    )],
                )
            })
            .collect();
        self.fan_out_vectored(snap_lists)?;
        self.flush_mirrors()?;
        for m in &mut self.mirrors {
            if m.is_healthy() {
                m.redo_snap = tail;
            }
        }
        self.redo.snap_floor = self
            .mirrors
            .iter()
            .filter(|m| m.is_healthy())
            .map(|m| m.redo_snap)
            .min()
            .unwrap_or(tail);
        self.emit(TraceEvent::RedoSnapshot { tail, bytes });

        // 3. Retire segments the floor has fully passed.
        self.redo_compact()
    }

    /// Retires every log segment wholly below the compaction floor:
    /// zeroes its directory entry on every healthy mirror (packet-atomic
    /// each, confirmed before any free, so no published directory ever
    /// names a freed segment), then frees the segments.
    fn redo_compact(&mut self) -> Result<(), TxnError> {
        let seg_size = self.cfg.redo_segment_bytes as u64;
        let slots = self.cfg.redo_segments;
        let floor = self.redo.snap_floor;
        let retire: Vec<(usize, u64)> = self
            .redo
            .slot_seqs
            .iter()
            .enumerate()
            .filter_map(|(slot, seq)| {
                seq.filter(|&s| (s + 1) * seg_size <= floor)
                    .map(|s| (slot, s))
            })
            .collect();
        if retire.is_empty() {
            return Ok(());
        }
        let lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                let dir_end = self.redo_dir_end_local(m.meta.len);
                (
                    mi,
                    retire
                        .iter()
                        .map(|&(slot, _)| {
                            (
                                m.meta.id,
                                redo_entry_offset(dir_end, slots, slot),
                                vec![0u8; REDO_ENTRY_SIZE],
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        self.fan_out_vectored(lists)?;
        self.flush_mirrors()?;
        let mut any_failed = false;
        for mi in 0..self.mirrors.len() {
            if !self.mirrors[mi].is_healthy() {
                continue;
            }
            self.fault_step()?;
            let mut down: Option<RnError> = None;
            for &(slot, _) in &retire {
                let m = &mut self.mirrors[mi];
                let Some(seg) = m.redo.get_mut(slot).and_then(Option::take) else {
                    continue;
                };
                match m.backend.remote_free(seg.id) {
                    Ok(()) => {}
                    Err(e) if e.is_unavailable() => {
                        down = Some(e);
                        break;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
            }
            if let Some(e) = down {
                self.mark_down(mi, &e);
                any_failed = true;
            }
        }
        self.fence_failed(any_failed)?;
        for &(slot, _) in &retire {
            self.redo.slot_seqs[slot] = None;
        }
        let freed_bytes = retire.len() * self.cfg.redo_segment_bytes;
        let live = self.redo.live_segments();
        self.emit(TraceEvent::RedoCompacted {
            segments: retire.len(),
            freed_bytes,
            live,
        });
        Ok(())
    }
}

/// Decodes the redo directory from a metadata image, using the table
/// geometry the header declares. The directory's own geometry header
/// (segment size, slot count) overrides whatever the config guessed.
pub(crate) fn decode_redo_dir(meta_image: &[u8], header: &MetaHeader) -> Result<RedoDir, TxnError> {
    let dir_end = redo_dir_end(
        meta_image.len(),
        header.commit_slots as usize,
        header.intent_slots as usize,
        header.decision_slots as usize,
    );
    let (seg_size, slot_count) = decode_redo_dir_header(meta_image, redo_header_offset(dir_end))
        .ok_or_else(|| {
            TxnError::Unavailable("corrupt metadata: redo directory header is missing or torn".into())
        })?;
    let slot_count = slot_count as usize;
    let tail = read_u64(meta_image, redo_tail_offset(dir_end));
    let snap = read_u64(meta_image, redo_snap_offset(dir_end));
    if snap > tail {
        return Err(TxnError::Unavailable(format!(
            "corrupt metadata: redo snapshot position {snap} is past the log tail {tail}"
        )));
    }
    let entries = (0..slot_count)
        .map(|i| decode_redo_entry(meta_image, redo_entry_offset(dir_end, slot_count, i)))
        .collect();
    Ok(RedoDir {
        seg_size: seg_size as u64,
        slot_count,
        tail,
        snap,
        entries,
    })
}

/// Reads and decodes the log suffix `(dir.snap, dir.tail]` from one
/// mirror, in log order. An undecodable position below the tail is the
/// zeroed end-of-segment skip (records never straddle), so the scan
/// jumps to the next boundary; a missing or mismatched directory entry
/// for a sequence the suffix needs is corruption.
pub(crate) fn scan_redo_suffix<M: RemoteMemory>(
    backend: &mut M,
    dir: &RedoDir,
) -> Result<Vec<SuffixRecord>, TxnError> {
    let mut out = Vec::new();
    let mut cached: Option<(u64, Vec<u8>)> = None;
    let mut pos = dir.snap;
    while pos < dir.tail {
        let seq = pos / dir.seg_size;
        let off = (pos % dir.seg_size) as usize;
        if cached.as_ref().map(|(s, _)| *s) != Some(seq) {
            let slot = (seq % dir.slot_count as u64) as usize;
            let (seg_id, entry_seq) = dir.entries[slot].ok_or_else(|| {
                TxnError::Unavailable(format!(
                    "corrupt metadata: redo directory lost live log segment {seq}"
                ))
            })?;
            if entry_seq != seq {
                return Err(TxnError::Unavailable(format!(
                    "corrupt metadata: redo slot {slot} holds segment {entry_seq}, \
                     the live suffix needs {seq}"
                )));
            }
            let seg = backend
                .segment_info(SegmentId::from_raw(seg_id))
                .map_err(unavailable)?;
            if seg.len as u64 != dir.seg_size {
                return Err(TxnError::Unavailable(format!(
                    "redo segment {seq} length mismatch: directory says {}, segment has {}",
                    dir.seg_size, seg.len
                )));
            }
            let mut bytes = vec![0u8; seg.len];
            backend
                .remote_read(seg.id, 0, &mut bytes)
                .map_err(unavailable)?;
            cached = Some((seq, bytes));
        }
        let buf = &cached.as_ref().expect("cached above").1;
        match RedoRecord::decode_at(buf, off) {
            Some((rec, payload)) => {
                out.push(SuffixRecord {
                    pos,
                    rec,
                    payload: buf[payload].to_vec(),
                });
                pos += rec.encoded_len() as u64;
            }
            None => pos = (seq + 1) * dir.seg_size,
        }
    }
    Ok(out)
}

/// Splits a scanned suffix by commit fate. A transaction is committed
/// when its id is at or below the watermark or occupies a commit-table
/// slot, **and** no tombstone at a later log position kills the record;
/// `live_uncommitted` are the distinct ids whose records are neither
/// committed nor already tombstoned — recovery must resolve them
/// (presumed abort) by appending tombstones, and sharded recovery
/// checks them against the decision tables first.
pub(crate) struct SuffixFates {
    /// Committed, replayable records in log order.
    pub(crate) committed: Vec<SuffixRecord>,
    /// Distinct ids with live (un-tombstoned) uncommitted records.
    pub(crate) live_uncommitted: Vec<u64>,
    /// Highest transaction id seen anywhere in the suffix.
    pub(crate) highest_seen: u64,
}

pub(crate) fn split_suffix_fates(
    suffix: Vec<SuffixRecord>,
    watermark: u64,
    table: &[u64],
) -> SuffixFates {
    use std::collections::HashMap;
    // A tombstone kills records of its transaction at earlier positions
    // only: a later recovery could otherwise never reuse the id space.
    let mut tomb_after: HashMap<u64, u64> = HashMap::new();
    for s in &suffix {
        if s.is_tombstone() {
            let e = tomb_after.entry(s.rec.txn_id).or_insert(s.pos);
            *e = (*e).max(s.pos);
        }
    }
    let mut committed = Vec::new();
    let mut live_uncommitted: Vec<u64> = Vec::new();
    let mut highest_seen = 0u64;
    for s in suffix {
        highest_seen = highest_seen.max(s.rec.txn_id);
        if s.is_tombstone() {
            continue;
        }
        let dead = tomb_after.get(&s.rec.txn_id).is_some_and(|&t| t > s.pos);
        if dead {
            continue;
        }
        let id = s.rec.txn_id;
        if id <= watermark || table.contains(&id) {
            committed.push(s);
        } else if !live_uncommitted.contains(&id) {
            live_uncommitted.push(id);
        }
    }
    SuffixFates {
        committed,
        live_uncommitted,
        highest_seen,
    }
}

/// Distinct transaction ids holding live (uncommitted, un-tombstoned)
/// records in a redo image's log suffix — the redo analogue of
/// [`crate::recovery::scan_uncommitted_concurrent`] for the sharded
/// in-doubt check.
pub(crate) fn redo_uncommitted_ids<M: RemoteMemory>(
    backend: &mut M,
    meta_image: &[u8],
    header: &MetaHeader,
    table: &[u64],
) -> Result<Vec<u64>, TxnError> {
    let dir = decode_redo_dir(meta_image, header)?;
    let suffix = scan_redo_suffix(backend, &dir)?;
    Ok(split_suffix_fates(suffix, header.last_committed, table).live_uncommitted)
}

/// Appends abort tombstones for `ids` directly to one mirror's log
/// during recovery (presumed abort of the stale suffix), opening fresh
/// segments on that mirror as needed, and advances its tail line.
/// Confirmed before the watermark may pass the ids.
pub(crate) fn append_recovery_tombstones<M: RemoteMemory>(
    backend: &mut M,
    meta_seg_id: SegmentId,
    meta_image_len: usize,
    header: &MetaHeader,
    dir: &mut RedoDir,
    ids: &[u64],
) -> Result<(), TxnError> {
    if ids.is_empty() {
        return Ok(());
    }
    let dir_end = redo_dir_end(
        meta_image_len,
        header.commit_slots as usize,
        header.intent_slots as usize,
        header.decision_slots as usize,
    );
    let mut pos = dir.tail;
    for &id in ids {
        let rec = RedoRecord {
            txn_id: id,
            region: REDO_TOMBSTONE_REGION,
            offset: 0,
            len: 0,
        };
        let total = rec.encoded_len() as u64;
        if pos % dir.seg_size + total > dir.seg_size {
            pos = (pos / dir.seg_size + 1) * dir.seg_size;
        }
        let seq = pos / dir.seg_size;
        let slot = (seq % dir.slot_count as u64) as usize;
        let seg_id = match dir.entries[slot] {
            Some((seg_id, s)) if s == seq => seg_id,
            Some((_, stale)) => {
                return Err(TxnError::Unavailable(format!(
                    "redo log full during recovery: slot {slot} still holds segment {stale}"
                )))
            }
            None => {
                let seg = backend
                    .remote_malloc(dir.seg_size as usize, 0)
                    .map_err(unavailable)?;
                backend
                    .remote_write(
                        meta_seg_id,
                        redo_entry_offset(dir_end, dir.slot_count, slot),
                        &encode_redo_entry(seg.id.as_raw(), seq),
                    )
                    .map_err(unavailable)?;
                dir.entries[slot] = Some((seg.id.as_raw(), seq));
                seg.id.as_raw()
            }
        };
        let mut bytes = vec![0u8; rec.encoded_len()];
        rec.encode_into(&mut bytes, 0, &[]);
        backend
            .remote_write(
                SegmentId::from_raw(seg_id),
                (pos % dir.seg_size) as usize,
                &bytes,
            )
            .map_err(unavailable)?;
        pos += total;
    }
    backend
        .remote_write(meta_seg_id, redo_tail_offset(dir_end), &pos.to_le_bytes())
        .map_err(unavailable)?;
    backend.flush().map_err(unavailable)?;
    dir.tail = pos;
    Ok(())
}

/// Replays `committed` (in log order, newest-wins) onto `regions`,
/// charging the virtual clock as if the per-region record streams were
/// applied in parallel (the longest region's bytes dominate). Returns
/// `(records replayed, bytes replayed)`.
pub(crate) fn replay_committed(
    regions: &mut [Vec<u8>],
    committed: &[SuffixRecord],
    cfg: &PerseasConfig,
    clock: &SimClock,
) -> Result<(usize, usize), TxnError> {
    let mut per_region = vec![0usize; regions.len()];
    let mut bytes = 0usize;
    for s in committed {
        let ri = s.rec.region as usize;
        let off = s.rec.offset as usize;
        let len = s.rec.len as usize;
        if ri >= regions.len() || off + len > regions[ri].len() {
            return Err(TxnError::Unavailable(format!(
                "corrupt redo record: txn {} writes [{off}, {}) of region {ri}",
                s.rec.txn_id,
                off + len
            )));
        }
        regions[ri][off..off + len].copy_from_slice(&s.payload);
        per_region[ri] += len;
        bytes += len;
    }
    // Parallel replay across regions: the clock pays for the busiest
    // region only, exactly like a commit fan-out pays the slowest
    // mirror.
    if let Some(&max) = per_region.iter().max() {
        cfg.mem_cost.charge_memcpy(clock, max);
    }
    Ok((committed.len(), bytes))
}

fn read_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pos: u64, txn_id: u64, region: u32, len: u64) -> SuffixRecord {
        SuffixRecord {
            pos,
            rec: RedoRecord {
                txn_id,
                region,
                offset: 0,
                len,
            },
            payload: vec![0u8; len as usize],
        }
    }

    #[test]
    fn fates_split_by_watermark_table_and_tombstones() {
        let suffix = vec![
            rec(0, 3, 0, 4),                          // committed: below watermark
            rec(40, 5, 0, 4),                         // committed: in table
            rec(80, 6, 0, 4),                         // live uncommitted
            rec(120, 7, 0, 4),                        // aborted: tombstone below
            rec(160, 7, REDO_TOMBSTONE_REGION, 0),    // the tombstone
        ];
        let fates = split_suffix_fates(suffix, 4, &[5]);
        assert_eq!(
            fates.committed.iter().map(|s| s.rec.txn_id).collect::<Vec<_>>(),
            vec![3, 5]
        );
        assert_eq!(fates.live_uncommitted, vec![6]);
        assert_eq!(fates.highest_seen, 7);
    }

    #[test]
    fn tombstone_kills_earlier_records_only() {
        // A tombstone for id 7 at position 40 must not kill a *later*
        // committed record of a reused id 7.
        let suffix = vec![
            rec(0, 7, 0, 4),
            rec(40, 7, REDO_TOMBSTONE_REGION, 0),
            rec(80, 7, 1, 4),
        ];
        let fates = split_suffix_fates(suffix, 7, &[]);
        assert_eq!(fates.committed.len(), 1);
        assert_eq!(fates.committed[0].pos, 80);
        assert!(fates.live_uncommitted.is_empty());
    }

    #[test]
    fn replay_applies_newest_wins_and_charges_busiest_region() {
        let cfg = PerseasConfig::default();
        let clock = SimClock::new();
        let mut regions = vec![vec![0u8; 8], vec![0u8; 8]];
        let committed = vec![
            SuffixRecord {
                pos: 0,
                rec: RedoRecord {
                    txn_id: 1,
                    region: 0,
                    offset: 0,
                    len: 4,
                },
                payload: vec![1; 4],
            },
            SuffixRecord {
                pos: 40,
                rec: RedoRecord {
                    txn_id: 2,
                    region: 0,
                    offset: 2,
                    len: 4,
                },
                payload: vec![2; 4],
            },
        ];
        let (n, bytes) = replay_committed(&mut regions, &committed, &cfg, &clock).unwrap();
        assert_eq!((n, bytes), (2, 8));
        assert_eq!(&regions[0], &[1, 1, 2, 2, 2, 2, 0, 0]);
        assert!(
            clock.now().duration_since(perseas_simtime::SimInstant::ORIGIN)
                > perseas_simtime::SimDuration::ZERO
        );
    }

    #[test]
    fn replay_rejects_out_of_bounds_records() {
        let cfg = PerseasConfig::default();
        let clock = SimClock::new();
        let mut regions = vec![vec![0u8; 4]];
        let committed = vec![rec(0, 1, 0, 8)];
        assert!(replay_committed(&mut regions, &committed, &cfg, &clock).is_err());
    }
}
