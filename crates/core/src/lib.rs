//! # PERSEAS — lightweight transactions over reliable network RAM
//!
//! Reproduction of *"Lightweight Transactions on Networks of
//! Workstations"* (Papathanasiou & Markatos, ICS-FORTH TR 209 / ICDCS
//! 1998).
//!
//! PERSEAS is a user-level transaction library for main-memory databases
//! that removes the magnetic disk from the commit path. Database segments
//! are *mirrored* in the main memory of one or more remote workstations
//! over a fast interconnect; a transaction costs three memory copies and
//! zero disk accesses:
//!
//! 1. [`Perseas::set_range`] copies the before-image of the declared range
//!    into the local undo log **and** appends it (one remote write) to the
//!    mirrored undo log;
//! 2. the application updates the local database in place
//!    ([`Perseas::write`]);
//! 3. [`Perseas::commit_transaction`] copies each modified range to the
//!    mirrored database and then publishes a single packet-atomic commit
//!    record. [`Perseas::abort_transaction`] is a purely local memory copy,
//!    exactly as in the paper.
//!
//! After a crash of the primary, [`Perseas::recover`] reconnects the
//! remote metadata segment (`sci_connect_segment`), rolls the mirrored
//! database back from the mirrored undo log if a transaction was in
//! flight, and rebuilds the local image — on *any* workstation, giving the
//! paper's immediate-availability property.
//!
//! # Quick start
//!
//! ```
//! use perseas_core::{Perseas, PerseasConfig};
//! use perseas_rnram::SimRemote;
//!
//! # fn main() -> Result<(), perseas_txn::TxnError> {
//! let mirror = SimRemote::new("mirror");
//! let mut db = Perseas::init(vec![mirror], PerseasConfig::default())?;
//!
//! let accounts = db.malloc(1024)?;          // PERSEAS_malloc
//! db.write(accounts, 0, &100u64.to_le_bytes())?;
//! db.init_remote_db()?;                     // PERSEAS_init_remote_db
//!
//! db.begin_transaction()?;
//! db.set_range(accounts, 0, 8)?;            // log before-image
//! db.write(accounts, 0, &42u64.to_le_bytes())?;
//! db.commit_transaction()?;                 // two remote writes, no disk
//!
//! let mut buf = [0u8; 8];
//! db.read(accounts, 0, &mut buf)?;
//! assert_eq!(u64::from_le_bytes(buf), 42);
//! # Ok(())
//! # }
//! ```

mod archive;
mod conc;
mod concurrent;
mod config;
mod fault;
mod jsonl;
mod layout;
mod metrics;
mod mvcc;
mod perseas;
mod recovery;
mod redo;
mod replica;
mod scope;
mod shard;
mod shared;
mod trace;
mod txn_impl;

pub use conc::TxnToken;
pub use concurrent::{ConcurrentPerseas, TxnHandle};
pub use config::PerseasConfig;
pub use fault::FaultPlan;
pub use jsonl::JsonlTracer;
pub use layout::{
    commit_table_offset, crc32, decision_table_offset, decode_commit_table, decode_decision_table,
    decode_intent_table, decode_region_entry, intent_table_offset, meta_segment_size_sharded,
    MetaHeader, RedoRecord, UndoRecord, DECISION_SLOT_SIZE, FLAG_CONCURRENT, FLAG_REDO,
    FLAG_SHARDED, INTENT_SLOT_SIZE, META_TAG, OFF_COMMIT, OFF_EPOCH, REDO_TOMBSTONE_REGION,
};
pub use metrics::{record_recovery, record_shard_recovery};
pub use perseas::{MirrorHealth, MirrorStatus, Perseas};
pub use recovery::RecoveryReport;
pub use replica::ReadReplica;
pub use scope::TxnScope;
pub use shard::{GlobalToken, ShardRecoveryReport, ShardedPerseas};
pub use shared::SharedPerseas;
pub use trace::{RecordingTracer, TraceEvent, Tracer};

pub use perseas_rnram::BackoffPolicy;
pub use perseas_txn::{RegionId, SnapshotToken, TransactionalMemory, TxnError, TxnStats};
