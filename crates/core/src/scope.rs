//! Scoped transactions: commit on success, abort on error — the
//! Rust-idiomatic wrapper around the paper's begin/commit/abort calls.

use perseas_rnram::RemoteMemory;
use perseas_txn::{RegionId, TxnError};

use crate::perseas::Perseas;

/// A handle to the open transaction inside [`Perseas::transaction`].
///
/// All operations require ranges to be declared first, exactly as with
/// the raw API; [`TxnScope::update`] combines `set_range` + `write` for
/// the common case.
#[derive(Debug)]
pub struct TxnScope<'a, M: RemoteMemory> {
    db: &'a mut Perseas<M>,
}

impl<M: RemoteMemory> TxnScope<'_, M> {
    /// Declares a writable range (see [`Perseas::set_range`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying library errors.
    pub fn set_range(
        &mut self,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> Result<(), TxnError> {
        self.db.set_range(region, offset, len)
    }

    /// Writes into a declared range (see [`Perseas::write`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying library errors.
    pub fn write(&mut self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        self.db.write(region, offset, data)
    }

    /// Declares and writes `data` at `offset` in one call.
    ///
    /// # Errors
    ///
    /// Propagates the underlying library errors.
    pub fn update(&mut self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        self.db.set_range(region, offset, data.len())?;
        self.db.write(region, offset, data)
    }

    /// Reads from the local database image (see [`Perseas::read`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying library errors.
    pub fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        self.db.read(region, offset, buf)
    }

    /// Length of a region.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        self.db.region_len(region)
    }

    /// Access to the underlying database, for libraries written against
    /// the generic [`perseas_txn::TransactionalMemory`] trait (such as
    /// `perseas-store`).
    ///
    /// Do not call `begin`/`commit`/`abort` through this handle — the
    /// enclosing [`Perseas::transaction`] owns the transaction's
    /// lifecycle.
    pub fn inner_mut(&mut self) -> &mut Perseas<M> {
        self.db
    }
}

impl<M: RemoteMemory> Perseas<M> {
    /// Runs `f` inside a transaction: commits if `f` returns `Ok`, aborts
    /// if it returns `Err` (restoring every declared range), and returns
    /// `f`'s value.
    ///
    /// # Errors
    ///
    /// Returns `f`'s error after aborting, or the library's own error if
    /// beginning, committing, or aborting fails (e.g. after an injected
    /// crash, when the abort itself is impossible).
    ///
    /// # Examples
    ///
    /// ```
    /// use perseas_core::{Perseas, PerseasConfig};
    /// use perseas_rnram::SimRemote;
    ///
    /// # fn main() -> Result<(), perseas_txn::TxnError> {
    /// let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default())?;
    /// let r = db.malloc(16)?;
    /// db.init_remote_db()?;
    ///
    /// db.transaction(|tx| tx.update(r, 0, &7u64.to_le_bytes()))?;
    ///
    /// let mut buf = [0u8; 8];
    /// db.read(r, 0, &mut buf)?;
    /// assert_eq!(u64::from_le_bytes(buf), 7);
    /// # Ok(())
    /// # }
    /// ```
    pub fn transaction<T, F>(&mut self, f: F) -> Result<T, TxnError>
    where
        F: FnOnce(&mut TxnScope<'_, M>) -> Result<T, TxnError>,
    {
        self.begin_transaction()?;
        let mut scope = TxnScope { db: self };
        match f(&mut scope) {
            Ok(value) => {
                if let Err(e) = self.commit_transaction() {
                    // A commit that failed before the durability point
                    // leaves the transaction open so raw-API callers can
                    // retry; the scope owns the lifecycle, so roll it
                    // back (keeping the commit's error as the cause).
                    if self.in_transaction() {
                        let _ = self.abort_transaction();
                    }
                    return Err(e);
                }
                Ok(value)
            }
            Err(e) => {
                // After an injected crash the abort is impossible; the
                // original error already says so.
                if self.in_transaction() {
                    self.abort_transaction()?;
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerseasConfig;
    use perseas_rnram::SimRemote;

    fn published(len: usize) -> (Perseas<SimRemote>, RegionId) {
        let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        let r = db.malloc(len).unwrap();
        db.init_remote_db().unwrap();
        (db, r)
    }

    #[test]
    fn success_commits() {
        let (mut db, r) = published(32);
        let value = db
            .transaction(|tx| {
                tx.update(r, 0, &[5; 8])?;
                Ok(42)
            })
            .unwrap();
        assert_eq!(value, 42);
        assert!(!db.in_transaction());
        assert_eq!(&db.region_snapshot(r).unwrap()[..8], &[5; 8]);
        assert_eq!(db.stats().commits, 1);
    }

    #[test]
    fn error_aborts_and_restores() {
        let (mut db, r) = published(32);
        let err = db
            .transaction(|tx| {
                tx.update(r, 0, &[9; 8])?;
                Err::<(), _>(TxnError::Unavailable("application decided to bail".into()))
            })
            .unwrap_err();
        assert!(matches!(err, TxnError::Unavailable(_)));
        assert!(!db.in_transaction());
        assert_eq!(db.region_snapshot(r).unwrap(), vec![0; 32]);
        assert_eq!(db.stats().aborts, 1);
    }

    #[test]
    fn inner_library_error_also_aborts() {
        let (mut db, r) = published(32);
        let err = db
            .transaction(|tx| {
                tx.update(r, 0, &[1; 8])?;
                tx.write(r, 16, &[2; 8]) // undeclared -> error
            })
            .unwrap_err();
        assert!(matches!(err, TxnError::RangeNotDeclared { .. }));
        assert_eq!(db.region_snapshot(r).unwrap(), vec![0; 32]);
    }

    #[test]
    fn scope_reads_see_own_writes() {
        let (mut db, r) = published(16);
        db.transaction(|tx| {
            tx.update(r, 0, &[3; 8])?;
            let mut buf = [0u8; 8];
            tx.read(r, 0, &mut buf)?;
            assert_eq!(buf, [3; 8]);
            assert_eq!(tx.region_len(r)?, 16);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn nested_transaction_is_rejected() {
        let (mut db, r) = published(16);
        db.begin_transaction().unwrap();
        db.set_range(r, 0, 4).unwrap();
        let err = db.transaction(|_tx| Ok(())).unwrap_err();
        assert_eq!(err, TxnError::TransactionAlreadyActive);
        // The outer transaction is untouched.
        assert!(db.in_transaction());
    }

    #[test]
    fn crash_inside_scope_propagates() {
        let (mut db, r) = published(16);
        db.set_fault_plan(crate::FaultPlan::crash_after(0));
        let err = db.transaction(|tx| tx.update(r, 0, &[1; 4])).unwrap_err();
        assert_eq!(err, TxnError::Crashed);
        assert!(db.is_crashed());
    }
}
