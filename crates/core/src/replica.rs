//! Read replicas: consistent read-only snapshots on any workstation.
//!
//! The paper (§3): *"Data in network memory are always available and
//! accessible by every node."* A [`ReadReplica`] attaches to a mirror
//! **without disturbing it** — unlike recovery it writes nothing — and
//! materialises a transactionally consistent snapshot: the mirrored
//! regions with any in-flight transaction's before-images applied
//! locally. Re-[`refresh`](ReadReplica::refresh) at will; reporting jobs,
//! monitoring, and warm standbys read while the primary keeps committing.

use perseas_rnram::{RemoteMemory, RemoteSegment};
use perseas_sci::SegmentId;
use perseas_txn::{RegionId, TxnError};

use crate::config::PerseasConfig;
use crate::layout::{
    commit_table_offset, decode_commit_table, MetaHeader, UndoRecord, FLAG_CONCURRENT, OFF_COMMIT,
};
use crate::perseas::unavailable;
use crate::recovery::scan_uncommitted_concurrent;

/// A read-only, transactionally consistent copy of a PERSEAS database,
/// built from a mirror without modifying it.
#[derive(Debug)]
pub struct ReadReplica<M: RemoteMemory> {
    backend: M,
    meta: RemoteSegment,
    cfg: PerseasConfig,
    regions: Vec<Vec<u8>>,
    last_committed: u64,
    epoch: u64,
}

impl<M: RemoteMemory> ReadReplica<M> {
    /// Attaches to the mirror and takes the initial snapshot.
    ///
    /// A mirror whose metadata epoch is below `cfg.min_epoch` was fenced
    /// out of the mirror set after missing commits; attaching to it is
    /// refused with [`TxnError::FencedMirror`] so a stale image can
    /// never masquerade as the database.
    ///
    /// # Errors
    ///
    /// Fails if the mirror holds no (or corrupt) PERSEAS metadata, is
    /// unreachable ([`TxnError::Unavailable`]), is fenced
    /// ([`TxnError::FencedMirror`]), or keeps committing so fast that no
    /// consistent snapshot forms within `cfg.snapshot_retries` attempts
    /// ([`TxnError::SnapshotContention`] — the mirror is alive, retry).
    pub fn attach(mut backend: M, cfg: PerseasConfig) -> Result<Self, TxnError> {
        let meta = backend.connect_segment(cfg.meta_tag).map_err(unavailable)?;
        let mut replica = ReadReplica {
            backend,
            meta,
            cfg,
            regions: Vec::new(),
            last_committed: 0,
            epoch: 0,
        };
        replica.refresh()?;
        Ok(replica)
    }

    /// Re-snapshots the database, returning the id of the newest
    /// committed transaction now visible.
    ///
    /// The snapshot is consistent: it retries if the mirror's commit
    /// record moves while the regions are being copied, and applies the
    /// before-images of any in-flight transaction to its **local** copy
    /// (the mirror is never written).
    ///
    /// Snapshot-first: each attempt in the first half of the retry budget
    /// copies the undo log, every region, and the commit-record re-checks
    /// in **one vectored read** — served atomically by the event-driven
    /// server, so a committing primary cannot tear it. The remaining
    /// budget falls back to the legacy per-segment copy loop for backends
    /// without an atomic vectored path.
    ///
    /// # Errors
    ///
    /// Fails on unreachable mirrors ([`TxnError::Unavailable`]), corrupt
    /// metadata, fenced mirrors ([`TxnError::FencedMirror`], carrying the
    /// attempt the fence was diagnosed on), or — as
    /// [`TxnError::SnapshotContention`], distinct from transport
    /// failures — when the primary outruns `cfg.snapshot_retries`
    /// attempts.
    pub fn refresh(&mut self) -> Result<u64, TxnError> {
        let budget = self.cfg.snapshot_retries;
        let vectored = budget.div_ceil(2);
        let mut attempts = 0usize;
        while attempts < vectored {
            attempts += 1;
            if let Some(last) = self.try_refresh(attempts, true)? {
                return Ok(last);
            }
        }
        while attempts < budget {
            attempts += 1;
            if let Some(last) = self.try_refresh(attempts, false)? {
                return Ok(last);
            }
        }
        // The mirror answered every read — it is alive, just committing
        // faster than we can copy. Distinct from a transport failure.
        Err(TxnError::SnapshotContention { attempts })
    }

    /// One snapshot attempt. Returns `Ok(None)` when the primary
    /// committed mid-copy (fuzzy cut — retry); `attempt` is carried by
    /// any typed error so the caller learns the final attempt count.
    fn try_refresh(&mut self, attempt: usize, use_vectored: bool) -> Result<Option<u64>, TxnError> {
        let mut meta_image = vec![0u8; self.meta.len];
        self.backend
            .remote_read(self.meta.id, 0, &mut meta_image)
            .map_err(unavailable)?;
        let header = MetaHeader::decode(&meta_image)
            .map_err(|m| TxnError::Unavailable(format!("corrupt metadata: {m}")))?;
        if header.epoch < self.cfg.min_epoch {
            return Err(TxnError::FencedMirror {
                epoch: header.epoch,
                required: self.cfg.min_epoch,
                attempts: attempt,
            });
        }
        if header.flags & crate::layout::FLAG_REDO != 0 {
            // A redo-mode mirror's db segments only hold the last
            // snapshot; the committed state lives partly in the log.
            // Materialising it would mean replaying the suffix here —
            // refuse rather than serve a stale image.
            return Err(TxnError::Unavailable(
                "mirror uses the redo commit path: its db segments lag the log, \
                 so a read replica cannot snapshot it consistently"
                    .into(),
            ));
        }

        let undo_seg = self
            .backend
            .segment_info(SegmentId::from_raw(header.undo_seg_id))
            .map_err(unavailable)?;
        let mut segs = Vec::with_capacity(header.region_count as usize);
        let mut region_lens = Vec::with_capacity(header.region_count as usize);
        for i in 0..header.region_count as usize {
            let (seg_id, _) = crate::layout::decode_region_entry(&meta_image, i)
                .map_err(|m| TxnError::Unavailable(format!("corrupt region table: {m}")))?;
            let seg = self
                .backend
                .segment_info(SegmentId::from_raw(seg_id))
                .map_err(unavailable)?;
            region_lens.push(seg.len);
            segs.push(seg);
        }

        let concurrent = header.flags & FLAG_CONCURRENT != 0;
        let slots = header.commit_slots as usize;
        let table_base = commit_table_offset(self.meta.len, slots);

        let (undo, mut regions) = if use_vectored {
            // One cut: undo log first, then every region, with the
            // commit-record (and, for a concurrent image, commit-table)
            // re-checks last in the same vector.
            let mut reads = vec![(undo_seg.id, 0usize, undo_seg.len)];
            for seg in &segs {
                reads.push((seg.id, 0, seg.len));
            }
            reads.push((self.meta.id, OFF_COMMIT, 8));
            if concurrent && slots > 0 {
                reads.push((self.meta.id, table_base, slots * 8));
            }
            let bufs = self.backend.remote_read_v(&reads).map_err(unavailable)?;
            let mut bufs = bufs.into_iter();
            let undo = bufs.next().expect("undo buffer present");
            let regions: Vec<Vec<u8>> = segs
                .iter()
                .map(|_| bufs.next().expect("region buffer"))
                .collect();
            let after = bufs.next().expect("commit-record buffer");
            if after.len() != 8
                || u64::from_le_bytes(after.try_into().expect("8 bytes")) != header.last_committed
            {
                return Ok(None);
            }
            if concurrent && slots > 0 {
                let table_after = bufs.next().expect("commit-table buffer");
                if table_after != meta_image[table_base..table_base + slots * 8] {
                    return Ok(None);
                }
            }
            (undo, regions)
        } else {
            // Legacy per-segment copy loop: undo log first, then the
            // regions, then the re-checks.
            let mut undo = vec![0u8; undo_seg.len];
            self.backend
                .remote_read(undo_seg.id, 0, &mut undo)
                .map_err(unavailable)?;
            let mut regions = Vec::with_capacity(segs.len());
            for seg in &segs {
                let mut data = vec![0u8; seg.len];
                if seg.len > 0 {
                    self.backend
                        .remote_read(seg.id, 0, &mut data)
                        .map_err(unavailable)?;
                }
                regions.push(data);
            }
            // If a commit landed while we copied, the snapshot may be
            // fuzzy: retry. The replica adapts to whichever engine wrote
            // the image: a concurrent mirror publishes every group commit
            // through its commit table, so the table bytes are compared
            // too — a watermark-only check would miss a group committed
            // entirely above the watermark.
            let mut after = [0u8; 8];
            self.backend
                .remote_read(self.meta.id, OFF_COMMIT, &mut after)
                .map_err(unavailable)?;
            if u64::from_le_bytes(after) != header.last_committed {
                return Ok(None);
            }
            if concurrent && slots > 0 {
                let mut table_after = vec![0u8; slots * 8];
                self.backend
                    .remote_read(self.meta.id, table_base, &mut table_after)
                    .map_err(unavailable)?;
                if table_after != meta_image[table_base..table_base + slots * 8] {
                    return Ok(None);
                }
            }
            (undo, regions)
        };

        // Roll back the in-flight transactions *locally*, using the
        // same rules as recovery.
        let to_undo: Vec<(UndoRecord, std::ops::Range<usize>)> = if concurrent {
            let table = decode_commit_table(&meta_image, slots);
            scan_uncommitted_concurrent(&undo, header.last_committed, &table, &region_lens)
        } else {
            let mut to_undo: Vec<(UndoRecord, std::ops::Range<usize>)> = Vec::new();
            let mut off = 0usize;
            let mut in_flight: Option<u64> = None;
            while let Some((rec, payload)) = UndoRecord::decode_at(&undo, off) {
                if rec.txn_id <= header.last_committed {
                    break;
                }
                if *in_flight.get_or_insert(rec.txn_id) != rec.txn_id {
                    break;
                }
                let ri = rec.region as usize;
                if ri >= region_lens.len() || (rec.offset + rec.len) as usize > region_lens[ri] {
                    break;
                }
                off += rec.encoded_len();
                to_undo.push((rec, payload));
            }
            to_undo
        };
        for (rec, payload) in to_undo.iter().rev() {
            let ri = rec.region as usize;
            let at = rec.offset as usize;
            regions[ri][at..at + payload.len()].copy_from_slice(&undo[payload.clone()]);
        }

        self.regions = regions;
        // For a concurrent image, the newest *visible* commit may sit
        // in a table slot above the watermark.
        self.last_committed = if concurrent {
            decode_commit_table(&meta_image, slots)
                .into_iter()
                .fold(header.last_committed, u64::max)
        } else {
            header.last_committed
        };
        self.epoch = header.epoch;
        Ok(Some(self.last_committed))
    }

    /// Reads `buf.len()` bytes at `offset` of `region` from the snapshot.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions or bounds violations.
    pub fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        let ri = region.as_raw() as usize;
        let data = self
            .regions
            .get(ri)
            .ok_or(TxnError::UnknownRegion(region))?;
        if offset.checked_add(buf.len()).is_none_or(|e| e > data.len()) {
            return Err(TxnError::OutOfBounds {
                region,
                offset,
                len: buf.len(),
                region_len: data.len(),
            });
        }
        buf.copy_from_slice(&data[offset..offset + buf.len()]);
        Ok(())
    }

    /// Length of a region in the snapshot.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        self.regions
            .get(region.as_raw() as usize)
            .map(Vec::len)
            .ok_or(TxnError::UnknownRegion(region))
    }

    /// A copy of a snapshot region.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_snapshot(&self, region: RegionId) -> Result<Vec<u8>, TxnError> {
        self.regions
            .get(region.as_raw() as usize)
            .cloned()
            .ok_or(TxnError::UnknownRegion(region))
    }

    /// Number of regions in the snapshot.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Id of the newest committed transaction visible in the snapshot.
    pub fn last_committed(&self) -> u64 {
        self.last_committed
    }

    /// Mirror-set epoch of the snapshot's source mirror (0 for
    /// pre-epoch images).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Perseas, PerseasConfig};
    use perseas_rnram::SimRemote;
    use perseas_sci::{NodeMemory, SciParams};
    use perseas_simtime::SimClock;

    fn reopen(node: &NodeMemory) -> SimRemote {
        SimRemote::with_parts(SimClock::new(), node.clone(), SciParams::dolphin_1998())
    }

    fn built() -> (Perseas<SimRemote>, RegionId, NodeMemory) {
        let backend = SimRemote::new("m");
        let node = backend.node().clone();
        let mut db = Perseas::init(vec![backend], PerseasConfig::default()).unwrap();
        let r = db.malloc(64).unwrap();
        db.init_remote_db().unwrap();
        (db, r, node)
    }

    #[test]
    fn replica_sees_committed_data_only() {
        let (mut db, r, node) = built();
        db.transaction(|tx| tx.update(r, 0, &[1; 8])).unwrap();

        // Leave a transaction in flight on the primary.
        db.begin_transaction().unwrap();
        db.set_range(r, 8, 8).unwrap();
        db.write(r, 8, &[2; 8]).unwrap();

        let replica = ReadReplica::attach(reopen(&node), PerseasConfig::default()).unwrap();
        assert_eq!(replica.last_committed(), 1);
        let snap = replica.region_snapshot(r).unwrap();
        assert_eq!(&snap[..8], &[1; 8], "committed data visible");
        assert_eq!(&snap[8..16], &[0; 8], "in-flight data invisible");

        // The primary is undisturbed: it can still commit the open txn.
        db.commit_transaction().unwrap();
        assert_eq!(db.last_committed(), 2);
    }

    #[test]
    fn refresh_tracks_new_commits() {
        let (mut db, r, node) = built();
        db.transaction(|tx| tx.update(r, 0, &[3; 4])).unwrap();
        let mut replica = ReadReplica::attach(reopen(&node), PerseasConfig::default()).unwrap();
        assert_eq!(replica.last_committed(), 1);

        db.transaction(|tx| tx.update(r, 4, &[4; 4])).unwrap();
        assert_eq!(replica.refresh().unwrap(), 2);
        let snap = replica.region_snapshot(r).unwrap();
        assert_eq!(&snap[4..8], &[4; 4]);
    }

    #[test]
    fn replica_reads_and_bounds() {
        let (mut db, r, node) = built();
        db.transaction(|tx| tx.update(r, 0, &[9; 8])).unwrap();
        let replica = ReadReplica::attach(reopen(&node), PerseasConfig::default()).unwrap();
        let mut buf = [0u8; 4];
        replica.read(r, 2, &mut buf).unwrap();
        assert_eq!(buf, [9; 4]);
        assert_eq!(replica.region_len(r).unwrap(), 64);
        assert_eq!(replica.region_count(), 1);
        let mut big = [0u8; 128];
        assert!(matches!(
            replica.read(r, 0, &mut big),
            Err(TxnError::OutOfBounds { .. })
        ));
        assert!(matches!(
            replica.read(RegionId::from_raw(9), 0, &mut buf),
            Err(TxnError::UnknownRegion(_))
        ));
    }

    #[test]
    fn replica_over_tcp() {
        use perseas_rnram::{server::Server, TcpRemote};
        let server = Server::bind("replica-node", "127.0.0.1:0").unwrap().start();
        let mut db = Perseas::init(
            vec![TcpRemote::connect(server.addr()).unwrap()],
            PerseasConfig::default(),
        )
        .unwrap();
        let r = db.malloc(32).unwrap();
        db.init_remote_db().unwrap();
        db.transaction(|tx| tx.update(r, 0, &[7; 8])).unwrap();

        let replica = ReadReplica::attach(
            TcpRemote::connect(server.addr()).unwrap(),
            PerseasConfig::default(),
        )
        .unwrap();
        assert_eq!(&replica.region_snapshot(r).unwrap()[..8], &[7; 8]);
        server.shutdown();
    }

    #[test]
    fn attach_refuses_redo_mirrors() {
        let backend = SimRemote::new("redo-m");
        let node = backend.node().clone();
        let mut db = Perseas::init(vec![backend], PerseasConfig::default().with_redo(true)).unwrap();
        let r = db.malloc(32).unwrap();
        db.init_remote_db().unwrap();
        db.transaction(|tx| tx.update(r, 0, &[5; 8])).unwrap();

        let err = ReadReplica::attach(reopen(&node), PerseasConfig::default()).unwrap_err();
        assert!(
            matches!(&err, TxnError::Unavailable(m) if m.contains("redo commit path")),
            "got {err:?}"
        );
    }

    #[test]
    fn attach_fails_cleanly_on_blank_mirror() {
        let node = NodeMemory::new("blank");
        assert!(matches!(
            ReadReplica::attach(reopen(&node), PerseasConfig::default()),
            Err(TxnError::Unavailable(_))
        ));
    }
}
