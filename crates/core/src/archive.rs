//! Graceful shutdown to cold storage.
//!
//! The paper's failure analysis (§1) notes the one scheduled scenario in
//! which *all* mirrors go down — planned maintenance — "in which case the
//! database can gracefully shut down". This module provides that path: a
//! self-describing archive of the committed database that can be written
//! to any medium and later re-hydrated onto a fresh set of mirrors.

use perseas_rnram::RemoteMemory;
use perseas_simtime::SimClock;
use perseas_txn::TxnError;

use crate::config::PerseasConfig;
use crate::layout::crc32;
use crate::perseas::{Perseas, Phase};

const ARCHIVE_MAGIC: u64 = 0x5045_5253_4152_4348; // "PERSARCH"
const ARCHIVE_VERSION: u32 = 1;

impl<M: RemoteMemory> Perseas<M> {
    /// Serialises the committed database into a self-describing,
    /// CRC-protected archive for scheduled all-mirrors-down maintenance.
    /// The instance must be idle (no open transaction).
    ///
    /// # Errors
    ///
    /// Fails with [`TxnError::BusyInTransaction`] inside a transaction and
    /// [`TxnError::Crashed`] after a crash.
    pub fn archive(&self) -> Result<Vec<u8>, TxnError> {
        match self.phase {
            Phase::Crashed => return Err(TxnError::Crashed),
            Phase::InTxn => return Err(TxnError::BusyInTransaction),
            Phase::Setup | Phase::Ready => {}
        }
        self.ensure_no_open_txns()?;
        let mut out = Vec::new();
        out.extend_from_slice(&ARCHIVE_MAGIC.to_le_bytes());
        out.extend_from_slice(&ARCHIVE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.regions.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.last_committed.to_le_bytes());
        for region in &self.regions {
            out.extend_from_slice(&(region.len() as u64).to_le_bytes());
            out.extend_from_slice(region);
        }
        let crc = crc32(&[&out]);
        out.extend_from_slice(&crc.to_le_bytes());
        Ok(out)
    }

    /// Re-hydrates an archive onto fresh mirrors: allocates regions,
    /// restores their contents, and publishes, yielding a ready database
    /// whose transaction ids continue after the archived history.
    ///
    /// # Errors
    ///
    /// Fails on corrupt archives ([`TxnError::Unavailable`] with a
    /// description) and on mirror allocation failures.
    pub fn restore(mirrors: Vec<M>, cfg: PerseasConfig, archive: &[u8]) -> Result<Self, TxnError> {
        Perseas::restore_with_clock(mirrors, cfg, archive, SimClock::new())
    }

    /// Like [`Perseas::restore`], charging work to `clock`.
    ///
    /// # Errors
    ///
    /// See [`Perseas::restore`].
    pub fn restore_with_clock(
        mirrors: Vec<M>,
        cfg: PerseasConfig,
        archive: &[u8],
        clock: SimClock,
    ) -> Result<Self, TxnError> {
        let corrupt = |m: &str| TxnError::Unavailable(format!("corrupt archive: {m}"));
        if archive.len() < 28 {
            return Err(corrupt("too short"));
        }
        let (body, crc_bytes) = archive.split_at(archive.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(&[body]) != stored {
            return Err(corrupt("CRC mismatch"));
        }
        let magic = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        if magic != ARCHIVE_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
        if version != ARCHIVE_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let region_count = u32::from_le_bytes(body[12..16].try_into().expect("4 bytes")) as usize;
        let last_committed = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes"));

        let mut db = Perseas::init_with_clock(mirrors, cfg, clock)?;
        let mut at = 24usize;
        for _ in 0..region_count {
            let len_bytes = body
                .get(at..at + 8)
                .ok_or_else(|| corrupt("truncated region header"))?;
            let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
            at += 8;
            let data = body
                .get(at..at + len)
                .ok_or_else(|| corrupt("truncated region data"))?;
            at += len;
            let r = db.malloc(len)?;
            db.write(r, 0, data)?;
        }
        if at != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        db.init_remote_db()?;
        // Continue the archived history rather than reusing ids.
        db.last_committed = last_committed;
        db.next_txn_id = last_committed + 1;
        // Publish the continued commit record to every mirror.
        for mi in 0..db.mirrors.len() {
            let m = &mut db.mirrors[mi];
            m.backend
                .remote_write(
                    m.meta.id,
                    crate::layout::OFF_COMMIT,
                    &last_committed.to_le_bytes(),
                )
                .and_then(|()| m.backend.flush().map(|_| ()))
                .map_err(crate::perseas::unavailable)?;
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perseas_rnram::SimRemote;

    fn built() -> (Perseas<SimRemote>, perseas_txn::RegionId) {
        let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        let r = db.malloc(64).unwrap();
        db.init_remote_db().unwrap();
        for i in 0..5u64 {
            db.begin_transaction().unwrap();
            db.set_range(r, 0, 8).unwrap();
            db.write(r, 0, &(i + 1).to_le_bytes()).unwrap();
            db.commit_transaction().unwrap();
        }
        (db, r)
    }

    #[test]
    fn archive_restore_roundtrip() {
        let (db, r) = built();
        let archive = db.archive().unwrap();
        let restored = Perseas::restore(
            vec![SimRemote::new("new")],
            PerseasConfig::default(),
            &archive,
        )
        .unwrap();
        assert_eq!(
            restored.region_snapshot(r).unwrap(),
            db.region_snapshot(r).unwrap()
        );
        assert_eq!(restored.last_committed(), 5);

        // The restored database keeps committing with continued ids...
        let mut restored = restored;
        restored.begin_transaction().unwrap();
        restored.set_range(r, 8, 8).unwrap();
        restored.write(r, 8, &[7; 8]).unwrap();
        restored.commit_transaction().unwrap();
        assert_eq!(restored.last_committed(), 6);

        // ...and its mirror recovers like any other.
        let node = restored.mirror_backend(0).unwrap().node().clone();
        let backend = SimRemote::with_parts(
            perseas_simtime::SimClock::new(),
            node,
            perseas_sci::SciParams::dolphin_1998(),
        );
        let mut restored = restored;
        restored.crash();
        let (db2, report) = Perseas::recover(backend, PerseasConfig::default()).unwrap();
        assert_eq!(report.last_committed, 6);
        assert_eq!(&db2.region_snapshot(r).unwrap()[8..16], &[7; 8]);
    }

    #[test]
    fn archive_refused_mid_transaction() {
        let (mut db, r) = built();
        db.begin_transaction().unwrap();
        db.set_range(r, 0, 4).unwrap();
        assert_eq!(db.archive().unwrap_err(), TxnError::BusyInTransaction);
    }

    #[test]
    fn corrupt_archives_are_rejected() {
        let (db, _) = built();
        let archive = db.archive().unwrap();

        let mut flipped = archive.clone();
        flipped[30] ^= 1;
        assert!(Perseas::<SimRemote>::restore(
            vec![SimRemote::new("x")],
            PerseasConfig::default(),
            &flipped
        )
        .is_err());

        assert!(Perseas::<SimRemote>::restore(
            vec![SimRemote::new("x")],
            PerseasConfig::default(),
            &archive[..10]
        )
        .is_err());

        let mut bad_magic = archive.clone();
        bad_magic[0] ^= 0xFF;
        // Fix the CRC so only the magic check can reject it.
        let len = bad_magic.len();
        let crc = crc32(&[&bad_magic[..len - 4]]);
        bad_magic[len - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = Perseas::<SimRemote>::restore(
            vec![SimRemote::new("x")],
            PerseasConfig::default(),
            &bad_magic,
        )
        .unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn empty_database_archives_too() {
        let db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        let archive = db.archive().unwrap();
        let restored = Perseas::restore(
            vec![SimRemote::new("n")],
            PerseasConfig::default(),
            &archive,
        )
        .unwrap();
        assert_eq!(restored.last_committed(), 0);
    }
}
