//! Crash recovery (Section 3 and 4 of the paper).
//!
//! After a primary crash the database survives in the mirrors' memory.
//! Recovery, which may run on *any* workstation:
//!
//! 1. reconnects the metadata segment by its well-known tag
//!    (`sci_connect_segment`);
//! 2. reads the region table, the undo-log indirection, and the commit
//!    record;
//! 3. scans the mirrored undo log — every valid record belonging to a
//!    transaction newer than the commit record is a before-image of an
//!    **uncommitted** transaction, and is copied back over the mirrored
//!    database (in reverse order, so overlapping `set_range`s resolve to
//!    the oldest image);
//! 4. rebuilds the local image with one remote-to-local copy per region.

use perseas_rnram::{RemoteMemory, RemoteSegment};
use perseas_sci::SegmentId;
use perseas_simtime::SimClock;
use perseas_txn::{TxnError, TxnStats};

use crate::conc::ConcState;
use crate::config::PerseasConfig;
use crate::fault::FaultPlan;
use crate::layout::{
    decode_commit_table, decode_group_header, MetaHeader, UndoRecord, FLAG_CONCURRENT,
    GROUP_HEADER_SIZE, OFF_COMMIT, OFF_EPOCH,
};
use crate::perseas::{unavailable, MirrorState, Perseas, Phase};

/// What [`Perseas::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Id of the last committed transaction according to the mirror (the
    /// durable watermark for concurrent images).
    pub last_committed: u64,
    /// Mirror-set epoch the recovered image carries (0 for pre-epoch
    /// images).
    pub epoch: u64,
    /// Id of the first in-flight transaction that was rolled back, if
    /// any (see [`RecoveryReport::rolled_back_txns`] for all of them).
    pub rolled_back_txn: Option<u64>,
    /// Ids of every in-flight transaction rolled back — a concurrent
    /// image can leave several open at the crash; each is resolved
    /// independently from its commit-table slot.
    pub rolled_back_txns: Vec<u64>,
    /// Number of undo records applied during rollback.
    pub rolled_back_records: usize,
    /// Number of database regions rebuilt.
    pub regions: usize,
    /// Bytes copied remote→local to rebuild the database.
    pub bytes_recovered: usize,
    /// Committed redo records replayed over the snapshot image (redo
    /// mode only; 0 for undo images).
    pub replayed_records: usize,
    /// After-image payload bytes replayed from the redo log.
    pub replayed_bytes: usize,
    /// Virtual-time nanoseconds the replay phase cost (regions replay in
    /// parallel, so this scales with the busiest region's share of the
    /// live tail, not total history).
    pub replay_virtual_nanos: u64,
}

impl<M: RemoteMemory> Perseas<M> {
    /// Recovers a database from one surviving mirror, rolling back any
    /// in-flight transaction and rebuilding the local image.
    ///
    /// # Errors
    ///
    /// Fails if the mirror has no (or corrupt) PERSEAS metadata or is
    /// unreachable.
    pub fn recover(backend: M, cfg: PerseasConfig) -> Result<(Self, RecoveryReport), TxnError> {
        Perseas::recover_with_clock(backend, cfg, SimClock::new())
    }

    /// Like [`Perseas::recover`], charging recovery work to `clock`.
    ///
    /// # Errors
    ///
    /// Fails if the mirror has no (or corrupt) PERSEAS metadata or is
    /// unreachable.
    pub fn recover_with_clock(
        mut backend: M,
        mut cfg: PerseasConfig,
        clock: SimClock,
    ) -> Result<(Self, RecoveryReport), TxnError> {
        // 1. Reconnect the metadata segment.
        let meta = backend.connect_segment(cfg.meta_tag).map_err(unavailable)?;
        let mut meta_image = vec![0u8; meta.len];
        backend
            .remote_read(meta.id, 0, &mut meta_image)
            .map_err(unavailable)?;
        let header = MetaHeader::decode(&meta_image)
            .map_err(|m| TxnError::Unavailable(format!("corrupt metadata: {m}")))?;
        // A mirror fenced out of the set after missing commits carries a
        // stale epoch; its image must never serve recovery.
        if header.epoch < cfg.min_epoch {
            return Err(TxnError::FencedMirror {
                epoch: header.epoch,
                required: cfg.min_epoch,
                attempts: 1,
            });
        }
        // The engine that wrote the image decides how its undo log and
        // commit record are interpreted; a config that disagrees would
        // silently mis-recover, so refuse it. The image's slot count
        // overrides the config — the table lives at the segment tail and
        // its geometry is baked into the mirror.
        let concurrent = header.flags & FLAG_CONCURRENT != 0;
        if concurrent != cfg.concurrent {
            return Err(TxnError::Unavailable(format!(
                "engine mismatch: the mirror was written by the {} engine \
                 but the config selects the {} engine",
                if concurrent { "concurrent" } else { "legacy" },
                if cfg.concurrent {
                    "concurrent"
                } else {
                    "legacy"
                }
            )));
        }
        if concurrent {
            cfg.commit_slots = header.commit_slots as usize;
        }
        // The commit-path mode is baked into the image the same way: an
        // undo config replaying a redo image would trust db segments
        // that are stale between snapshots, and a redo config would look
        // for a log directory an undo image does not have.
        let redo = header.flags & crate::layout::FLAG_REDO != 0;
        if redo != cfg.redo {
            return Err(TxnError::Unavailable(format!(
                "commit-path mismatch: the mirror was written in {} mode \
                 but the config selects {} mode",
                if redo { "redo" } else { "undo" },
                if cfg.redo { "redo" } else { "undo" }
            )));
        }
        // A sharded image carries its coordination-table geometry and
        // shard coordinates in the header; like the commit-slot count,
        // the mirror's layout overrides whatever the config guessed.
        if header.flags & crate::layout::FLAG_SHARDED != 0 {
            cfg.intent_slots = header.intent_slots as usize;
            cfg.decision_slots = header.decision_slots as usize;
            cfg.shard_index = header.shard_index;
            cfg.shard_count = header.shard_count;
        }

        // 2. Locate the region and undo segments.
        let mut db_segs: Vec<RemoteSegment> = Vec::with_capacity(header.region_count as usize);
        for i in 0..header.region_count as usize {
            let (seg_id, len) = crate::layout::decode_region_entry(&meta_image, i)
                .map_err(|m| TxnError::Unavailable(format!("corrupt region table: {m}")))?;
            let seg = backend
                .segment_info(SegmentId::from_raw(seg_id))
                .map_err(unavailable)?;
            if seg.len as u64 != len {
                return Err(TxnError::Unavailable(format!(
                    "region {i} length mismatch: table says {len}, segment has {}",
                    seg.len
                )));
            }
            db_segs.push(seg);
        }
        let undo_seg = backend
            .segment_info(SegmentId::from_raw(header.undo_seg_id))
            .map_err(unavailable)?;

        if redo {
            return Perseas::recover_redo(backend, cfg, clock, meta, meta_image, header, db_segs, undo_seg);
        }

        // 3. Scan the mirrored undo log for records of uncommitted
        //    transactions.
        let mut undo_shadow = vec![0u8; undo_seg.len];
        backend
            .remote_read(undo_seg.id, 0, &mut undo_shadow)
            .map_err(unavailable)?;
        let region_lens: Vec<usize> = db_segs.iter().map(|s| s.len).collect();
        let to_undo: Vec<(UndoRecord, std::ops::Range<usize>)> = if concurrent {
            // Concurrent image: the arena opens with a CRC-guarded group
            // header, and a transaction is committed when its id is at or
            // below the watermark *or* occupies a commit-table slot above
            // it. Records of every other live id are rolled back.
            let table = decode_commit_table(&meta_image, cfg.commit_slots);
            scan_uncommitted_concurrent(&undo_shadow, header.last_committed, &table, &region_lens)
        } else {
            // Only the single newest transaction can be in flight (the
            // legacy library is sequential), and its records form a
            // prefix of the undo log starting at offset 0. Records of
            // *older* transactions beyond that prefix are stale — and
            // must not be replayed: an aborted transaction with
            // overlapping `set_range`s leaves stale records whose
            // before-images contain its own uncommitted mid-transaction
            // values. The scan therefore stops at the first record whose
            // transaction id differs from the first record's.
            let mut to_undo: Vec<(UndoRecord, std::ops::Range<usize>)> = Vec::new();
            let mut off = 0usize;
            let mut in_flight_txn: Option<u64> = None;
            while let Some((rec, payload)) = UndoRecord::decode_at(&undo_shadow, off) {
                if rec.txn_id <= header.last_committed {
                    break;
                }
                if *in_flight_txn.get_or_insert(rec.txn_id) != rec.txn_id {
                    break;
                }
                let ri = rec.region as usize;
                let sane = ri < db_segs.len() && (rec.offset + rec.len) as usize <= db_segs[ri].len;
                if !sane {
                    break;
                }
                off += rec.encoded_len();
                to_undo.push((rec, payload));
            }
            to_undo
        };

        // 4. Roll the mirrored database back, newest record first.
        let mut rolled_back_txns: Vec<u64> = to_undo.iter().map(|(r, _)| r.txn_id).collect();
        rolled_back_txns.sort_unstable();
        rolled_back_txns.dedup();
        let rolled_back_txn = rolled_back_txns.first().copied();
        let rolled_back_records = to_undo.len();
        let mut highest = header.last_committed;
        if concurrent {
            // Ids are dense, and after this rollback every id at or below
            // the largest one seen (committed in a slot, or just rolled
            // back) is resolved: the watermark jumps to that maximum and
            // frees every slot in one step.
            for &sid in &decode_commit_table(&meta_image, cfg.commit_slots) {
                highest = highest.max(sid);
            }
        }
        for (rec, payload) in to_undo.iter().rev() {
            let seg = db_segs[rec.region as usize];
            backend
                .remote_write(seg.id, rec.offset as usize, &undo_shadow[payload.clone()])
                .map_err(unavailable)?;
            highest = highest.max(rec.txn_id);
        }
        if highest != header.last_committed {
            // Mark the rolled-back id as consumed so a crash during or
            // right after recovery cannot replay the rollback against a
            // database that new transactions have since modified.
            backend
                .remote_write(meta.id, OFF_COMMIT, &highest.to_le_bytes())
                .map_err(unavailable)?;
        }
        // Ack barrier: the rollback writes and the consumed-id record may
        // be posted unacknowledged on a pipelined transport; all must be
        // confirmed before the mirror image is read back as recovered.
        backend.flush().map_err(unavailable)?;

        // 5. Rebuild the local image: one remote-to-local copy per region.
        let mut regions = Vec::with_capacity(db_segs.len());
        let mut bytes_recovered = 0usize;
        for seg in &db_segs {
            let mut data = vec![0u8; seg.len];
            if seg.len > 0 {
                backend
                    .remote_read(seg.id, 0, &mut data)
                    .map_err(unavailable)?;
            }
            cfg.mem_cost.charge_memcpy(&clock, seg.len);
            bytes_recovered += seg.len;
            regions.push(data);
        }

        let report = RecoveryReport {
            last_committed: header.last_committed,
            epoch: header.epoch,
            rolled_back_txn,
            rolled_back_txns,
            rolled_back_records,
            regions: regions.len(),
            bytes_recovered,
            replayed_records: 0,
            replayed_bytes: 0,
            replay_virtual_nanos: 0,
        };

        let undo_capacity = undo_shadow.len();
        let mut mirror = MirrorState::new(backend, meta, undo_seg);
        mirror.db = db_segs;
        let redo_state = crate::redo::RedoState::new(cfg.redo_segments);
        let db = Perseas {
            cfg,
            clock,
            mirrors: vec![mirror],
            regions,
            undo_shadow: vec![0; undo_capacity],
            undo_off: 0,
            phase: Phase::Ready,
            txn: None,
            epoch: header.epoch,
            last_committed: highest,
            next_txn_id: highest + 1,
            stats: TxnStats::new(),
            fault: FaultPlan::none(),
            tracer: None,
            metrics: None,
            conc: ConcState::new(cfg.commit_slots),
            // A fresh store with a fresh generation: snapshots opened
            // before the crash fail typed on the recovered instance.
            mvcc: crate::mvcc::MvccState::new(cfg.version_bytes, cfg.version_entries),
            redo: redo_state,
        };
        Ok((db, report))
    }

    /// The redo-mode arm of [`Perseas::recover_with_clock`]: the db
    /// segments hold the last snapshot image, so recovery replays the
    /// committed log suffix `(snapshot, tail]` on top of it instead of
    /// rolling anything back. Uncommitted ids found live in the suffix
    /// are resolved by presumed abort — a tombstone is appended (and
    /// confirmed) for each *before* the watermark passes their ids.
    #[allow(clippy::too_many_arguments)]
    fn recover_redo(
        mut backend: M,
        mut cfg: PerseasConfig,
        clock: SimClock,
        meta: RemoteSegment,
        meta_image: Vec<u8>,
        header: MetaHeader,
        db_segs: Vec<RemoteSegment>,
        undo_seg: RemoteSegment,
    ) -> Result<(Self, RecoveryReport), TxnError> {
        use crate::redo::{
            append_recovery_tombstones, decode_redo_dir, replay_committed, scan_redo_suffix,
            split_suffix_fates, RedoState,
        };
        // The directory's geometry is baked into the mirror and overrides
        // whatever the config guessed, like the commit-slot count.
        let mut dir = decode_redo_dir(&meta_image, &header)?;
        cfg.redo_segment_bytes = dir.seg_size as usize;
        cfg.redo_segments = dir.slot_count;

        // 3. Scan the live log suffix and split it by commit fate.
        let table = if cfg.concurrent {
            decode_commit_table(&meta_image, cfg.commit_slots)
        } else {
            Vec::new()
        };
        let suffix = scan_redo_suffix(&mut backend, &dir)?;
        let fates = split_suffix_fates(suffix, header.last_committed, &table);

        // 4. Resolve the in-flight transactions (presumed abort): their
        //    tombstones must be durable before the watermark below can
        //    pass their ids, or a second crash would replay them as
        //    committed.
        let mut rolled_back_txns = fates.live_uncommitted.clone();
        rolled_back_txns.sort_unstable();
        append_recovery_tombstones(
            &mut backend,
            meta.id,
            meta_image.len(),
            &header,
            &mut dir,
            &rolled_back_txns,
        )?;
        let mut highest = header.last_committed.max(fates.highest_seen);
        if cfg.concurrent {
            for &sid in &table {
                highest = highest.max(sid);
            }
        }
        if highest != header.last_committed {
            backend
                .remote_write(meta.id, OFF_COMMIT, &highest.to_le_bytes())
                .map_err(unavailable)?;
        }
        backend.flush().map_err(unavailable)?;

        // 5. Rebuild the local image from the snapshot in the db
        //    segments, then replay the committed suffix over it. The
        //    replay cost scales with the live tail — this is the instant
        //    restart the log-structured design buys.
        let mut regions = Vec::with_capacity(db_segs.len());
        let mut bytes_recovered = 0usize;
        for seg in &db_segs {
            let mut data = vec![0u8; seg.len];
            if seg.len > 0 {
                backend
                    .remote_read(seg.id, 0, &mut data)
                    .map_err(unavailable)?;
            }
            cfg.mem_cost.charge_memcpy(&clock, seg.len);
            bytes_recovered += seg.len;
            regions.push(data);
        }
        let replay_start = clock.now();
        let (replayed_records, replayed_bytes) =
            replay_committed(&mut regions, &fates.committed, &cfg, &clock)?;
        let replay_virtual_nanos = clock.now().duration_since(replay_start).as_nanos();

        let report = RecoveryReport {
            last_committed: header.last_committed,
            epoch: header.epoch,
            rolled_back_txn: rolled_back_txns.first().copied(),
            rolled_back_txns,
            rolled_back_records: 0,
            regions: regions.len(),
            bytes_recovered,
            replayed_records,
            replayed_bytes,
            replay_virtual_nanos,
        };

        // 6. Reconstruct the engine-side log state from the (possibly
        //    tombstone-extended) directory.
        let mut redo_state = RedoState::new(dir.slot_count);
        redo_state.tail = dir.tail;
        redo_state.snap_floor = dir.snap;
        let mut mirror = MirrorState::new(backend, meta, undo_seg);
        mirror.db = db_segs;
        mirror.redo = vec![None; dir.slot_count];
        mirror.redo_snap = dir.snap;
        for (slot, entry) in dir.entries.iter().enumerate() {
            if let Some((seg_id, seq)) = entry {
                let seg = mirror
                    .backend
                    .segment_info(SegmentId::from_raw(*seg_id))
                    .map_err(unavailable)?;
                mirror.redo[slot] = Some(seg);
                redo_state.slot_seqs[slot] = Some(*seq);
            }
        }
        let undo_capacity = undo_seg.len;
        let db = Perseas {
            cfg,
            clock,
            mirrors: vec![mirror],
            regions,
            undo_shadow: vec![0; undo_capacity],
            undo_off: 0,
            phase: Phase::Ready,
            txn: None,
            epoch: header.epoch,
            last_committed: highest,
            next_txn_id: highest + 1,
            stats: TxnStats::new(),
            fault: FaultPlan::none(),
            tracer: None,
            metrics: None,
            conc: ConcState::new(cfg.commit_slots),
            mvcc: crate::mvcc::MvccState::new(cfg.version_bytes, cfg.version_entries),
            redo: redo_state,
        };
        Ok((db, report))
    }

    /// Recovers from the best of several surviving mirrors (the one with
    /// the newest commit record) and re-mirrors onto the rest, restoring
    /// full redundancy.
    ///
    /// Mirrors that are unreachable or hold no metadata are skipped.
    ///
    /// # Errors
    ///
    /// Fails if no mirror is recoverable.
    pub fn recover_best(
        backends: Vec<M>,
        cfg: PerseasConfig,
        clock: SimClock,
    ) -> Result<(Self, RecoveryReport), TxnError> {
        // Peek at every mirror's epoch and commit record. Epoch ranks
        // first: a fenced mirror (lower epoch) missed commits by
        // construction, so the newest epoch is always at least as
        // committed as any older one. Mirrors below `cfg.min_epoch` are
        // not even candidates.
        let mut candidates: Vec<(usize, u64, u64)> = Vec::new();
        let mut backends: Vec<Option<M>> = backends.into_iter().map(Some).collect();
        for (i, b) in backends.iter_mut().enumerate() {
            let backend = b.as_mut().expect("present");
            if let Ok(meta) = backend.connect_segment(cfg.meta_tag) {
                let mut commit = [0u8; 8];
                let mut epoch = [0u8; 8];
                if backend
                    .remote_read(meta.id, OFF_COMMIT, &mut commit)
                    .is_ok()
                    && backend.remote_read(meta.id, OFF_EPOCH, &mut epoch).is_ok()
                {
                    let epoch = u64::from_le_bytes(epoch);
                    if epoch >= cfg.min_epoch {
                        candidates.push((i, epoch, u64::from_le_bytes(commit)));
                    }
                }
            }
        }
        let Some(&(best, _, _)) = candidates
            .iter()
            .max_by_key(|&&(i, epoch, committed)| (epoch, committed, std::cmp::Reverse(i)))
        else {
            return Err(TxnError::Unavailable(
                "no mirror holds recoverable PERSEAS metadata at an admissible epoch".into(),
            ));
        };

        let chosen = backends[best].take().expect("present");
        let (mut db, report) = Perseas::recover_with_clock(chosen, cfg, clock)?;
        for mut b in backends.into_iter().flatten() {
            // Drop the stale replica before re-mirroring, so its old
            // metadata can never shadow the fresh copy in a later
            // recovery. A mirror that is itself dead is simply skipped:
            // recovery must proceed on whatever survives.
            if Perseas::scrub_mirror(&mut b, &cfg).is_err() {
                continue;
            }
            let _ = db.add_mirror(b);
        }
        Ok((db, report))
    }

    /// Frees every PERSEAS segment (metadata, undo log, database regions)
    /// that `backend` holds under `cfg.meta_tag`. Used before re-mirroring
    /// onto a node that carries a stale replica.
    ///
    /// # Errors
    ///
    /// Fails only on transport errors; a node without PERSEAS state is
    /// fine.
    pub fn scrub_mirror(backend: &mut M, cfg: &PerseasConfig) -> Result<(), TxnError> {
        loop {
            let meta = match backend.connect_segment(cfg.meta_tag) {
                Ok(meta) => meta,
                Err(perseas_rnram::RnError::TagNotFound(_)) => return Ok(()),
                Err(e) => return Err(unavailable(e)),
            };
            let mut image = vec![0u8; meta.len];
            backend
                .remote_read(meta.id, 0, &mut image)
                .map_err(unavailable)?;
            if let Ok(header) = MetaHeader::decode(&image) {
                for i in 0..header.region_count as usize {
                    if let Ok((seg_id, _)) = crate::layout::decode_region_entry(&image, i) {
                        let _ = backend.remote_free(SegmentId::from_raw(seg_id));
                    }
                }
                let _ = backend.remote_free(SegmentId::from_raw(header.undo_seg_id));
                // A redo image also owns the live log segments its
                // directory names.
                if header.flags & crate::layout::FLAG_REDO != 0 {
                    if let Ok(dir) = crate::redo::decode_redo_dir(&image, &header) {
                        for (seg_id, _) in dir.entries.iter().flatten() {
                            let _ = backend.remote_free(SegmentId::from_raw(*seg_id));
                        }
                    }
                }
            }
            backend.remote_free(meta.id).map_err(unavailable)?;
        }
    }
}

/// Scans a concurrent undo arena for records of **uncommitted**
/// transactions: live ids above `watermark` that hold no commit-table
/// slot. Tombstoned records (id 0) and committed ids are skipped; the
/// scan stops at the first torn record or the end the group header
/// declares. Shared by [`Perseas::recover`] and
/// [`crate::ReadReplica::refresh`].
pub(crate) fn scan_uncommitted_concurrent(
    undo: &[u8],
    watermark: u64,
    table: &[u64],
    region_lens: &[usize],
) -> Vec<(UndoRecord, std::ops::Range<usize>)> {
    let Some(record_bytes) = decode_group_header(undo) else {
        return Vec::new();
    };
    let end = (GROUP_HEADER_SIZE as u64 + record_bytes).min(undo.len() as u64) as usize;
    let mut out = Vec::new();
    let mut off = GROUP_HEADER_SIZE;
    while off < end {
        let Some((rec, payload)) = UndoRecord::decode_at(undo, off) else {
            break;
        };
        off += rec.encoded_len();
        if rec.txn_id == 0 || rec.txn_id <= watermark || table.contains(&rec.txn_id) {
            continue;
        }
        let ri = rec.region as usize;
        if ri >= region_lens.len() || (rec.offset + rec.len) as usize > region_lens[ri] {
            break;
        }
        out.push((rec, payload));
    }
    out
}
