//! Crash recovery (Section 3 and 4 of the paper).
//!
//! After a primary crash the database survives in the mirrors' memory.
//! Recovery, which may run on *any* workstation:
//!
//! 1. reconnects the metadata segment by its well-known tag
//!    (`sci_connect_segment`);
//! 2. reads the region table, the undo-log indirection, and the commit
//!    record;
//! 3. scans the mirrored undo log — every valid record belonging to a
//!    transaction newer than the commit record is a before-image of an
//!    **uncommitted** transaction, and is copied back over the mirrored
//!    database (in reverse order, so overlapping `set_range`s resolve to
//!    the oldest image);
//! 4. rebuilds the local image with one remote-to-local copy per region.

use perseas_rnram::{RemoteMemory, RemoteSegment};
use perseas_sci::SegmentId;
use perseas_simtime::SimClock;
use perseas_txn::{TxnError, TxnStats};

use crate::config::PerseasConfig;
use crate::fault::FaultPlan;
use crate::layout::{MetaHeader, UndoRecord, OFF_COMMIT, OFF_EPOCH};
use crate::perseas::{unavailable, MirrorState, Perseas, Phase};

/// What [`Perseas::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Id of the last committed transaction according to the mirror.
    pub last_committed: u64,
    /// Mirror-set epoch the recovered image carries (0 for pre-epoch
    /// images).
    pub epoch: u64,
    /// Id of the in-flight transaction that was rolled back, if any.
    pub rolled_back_txn: Option<u64>,
    /// Number of undo records applied during rollback.
    pub rolled_back_records: usize,
    /// Number of database regions rebuilt.
    pub regions: usize,
    /// Bytes copied remote→local to rebuild the database.
    pub bytes_recovered: usize,
}

impl<M: RemoteMemory> Perseas<M> {
    /// Recovers a database from one surviving mirror, rolling back any
    /// in-flight transaction and rebuilding the local image.
    ///
    /// # Errors
    ///
    /// Fails if the mirror has no (or corrupt) PERSEAS metadata or is
    /// unreachable.
    pub fn recover(backend: M, cfg: PerseasConfig) -> Result<(Self, RecoveryReport), TxnError> {
        Perseas::recover_with_clock(backend, cfg, SimClock::new())
    }

    /// Like [`Perseas::recover`], charging recovery work to `clock`.
    ///
    /// # Errors
    ///
    /// Fails if the mirror has no (or corrupt) PERSEAS metadata or is
    /// unreachable.
    pub fn recover_with_clock(
        mut backend: M,
        cfg: PerseasConfig,
        clock: SimClock,
    ) -> Result<(Self, RecoveryReport), TxnError> {
        // 1. Reconnect the metadata segment.
        let meta = backend.connect_segment(cfg.meta_tag).map_err(unavailable)?;
        let mut meta_image = vec![0u8; meta.len];
        backend
            .remote_read(meta.id, 0, &mut meta_image)
            .map_err(unavailable)?;
        let header = MetaHeader::decode(&meta_image)
            .map_err(|m| TxnError::Unavailable(format!("corrupt metadata: {m}")))?;
        // A mirror fenced out of the set after missing commits carries a
        // stale epoch; its image must never serve recovery.
        if header.epoch < cfg.min_epoch {
            return Err(TxnError::FencedMirror {
                epoch: header.epoch,
                required: cfg.min_epoch,
            });
        }

        // 2. Locate the region and undo segments.
        let mut db_segs: Vec<RemoteSegment> = Vec::with_capacity(header.region_count as usize);
        for i in 0..header.region_count as usize {
            let (seg_id, len) = crate::layout::decode_region_entry(&meta_image, i)
                .map_err(|m| TxnError::Unavailable(format!("corrupt region table: {m}")))?;
            let seg = backend
                .segment_info(SegmentId::from_raw(seg_id))
                .map_err(unavailable)?;
            if seg.len as u64 != len {
                return Err(TxnError::Unavailable(format!(
                    "region {i} length mismatch: table says {len}, segment has {}",
                    seg.len
                )));
            }
            db_segs.push(seg);
        }
        let undo_seg = backend
            .segment_info(SegmentId::from_raw(header.undo_seg_id))
            .map_err(unavailable)?;

        // 3. Scan the mirrored undo log for records of uncommitted
        //    transactions.
        let mut undo_shadow = vec![0u8; undo_seg.len];
        backend
            .remote_read(undo_seg.id, 0, &mut undo_shadow)
            .map_err(unavailable)?;
        // Only the single newest transaction can be in flight (the
        // library is sequential), and its records form a prefix of the
        // undo log starting at offset 0. Records of *older* transactions
        // beyond that prefix are stale — and must not be replayed: an
        // aborted transaction with overlapping `set_range`s leaves stale
        // records whose before-images contain its own uncommitted
        // mid-transaction values. The scan therefore stops at the first
        // record whose transaction id differs from the first record's.
        let mut to_undo: Vec<(UndoRecord, std::ops::Range<usize>)> = Vec::new();
        let mut off = 0usize;
        let mut in_flight_txn: Option<u64> = None;
        while let Some((rec, payload)) = UndoRecord::decode_at(&undo_shadow, off) {
            if rec.txn_id <= header.last_committed {
                break;
            }
            if *in_flight_txn.get_or_insert(rec.txn_id) != rec.txn_id {
                break;
            }
            let ri = rec.region as usize;
            let sane = ri < db_segs.len() && (rec.offset + rec.len) as usize <= db_segs[ri].len;
            if !sane {
                break;
            }
            off += rec.encoded_len();
            to_undo.push((rec, payload));
        }

        // 4. Roll the mirrored database back, newest record first.
        let rolled_back_txn = to_undo.first().map(|(r, _)| r.txn_id);
        let rolled_back_records = to_undo.len();
        let mut highest = header.last_committed;
        for (rec, payload) in to_undo.iter().rev() {
            let seg = db_segs[rec.region as usize];
            backend
                .remote_write(seg.id, rec.offset as usize, &undo_shadow[payload.clone()])
                .map_err(unavailable)?;
            highest = highest.max(rec.txn_id);
        }
        if highest != header.last_committed {
            // Mark the rolled-back id as consumed so a crash during or
            // right after recovery cannot replay the rollback against a
            // database that new transactions have since modified.
            backend
                .remote_write(meta.id, OFF_COMMIT, &highest.to_le_bytes())
                .map_err(unavailable)?;
        }

        // 5. Rebuild the local image: one remote-to-local copy per region.
        let mut regions = Vec::with_capacity(db_segs.len());
        let mut bytes_recovered = 0usize;
        for seg in &db_segs {
            let mut data = vec![0u8; seg.len];
            if seg.len > 0 {
                backend
                    .remote_read(seg.id, 0, &mut data)
                    .map_err(unavailable)?;
            }
            cfg.mem_cost.charge_memcpy(&clock, seg.len);
            bytes_recovered += seg.len;
            regions.push(data);
        }

        let report = RecoveryReport {
            last_committed: header.last_committed,
            epoch: header.epoch,
            rolled_back_txn,
            rolled_back_records,
            regions: regions.len(),
            bytes_recovered,
        };

        let undo_capacity = undo_shadow.len();
        let mut mirror = MirrorState::new(backend, meta, undo_seg);
        mirror.db = db_segs;
        let db = Perseas {
            cfg,
            clock,
            mirrors: vec![mirror],
            regions,
            undo_shadow: vec![0; undo_capacity],
            undo_off: 0,
            phase: Phase::Ready,
            txn: None,
            epoch: header.epoch,
            last_committed: highest,
            next_txn_id: highest + 1,
            stats: TxnStats::new(),
            fault: FaultPlan::none(),
            tracer: None,
        };
        Ok((db, report))
    }

    /// Recovers from the best of several surviving mirrors (the one with
    /// the newest commit record) and re-mirrors onto the rest, restoring
    /// full redundancy.
    ///
    /// Mirrors that are unreachable or hold no metadata are skipped.
    ///
    /// # Errors
    ///
    /// Fails if no mirror is recoverable.
    pub fn recover_best(
        backends: Vec<M>,
        cfg: PerseasConfig,
        clock: SimClock,
    ) -> Result<(Self, RecoveryReport), TxnError> {
        // Peek at every mirror's epoch and commit record. Epoch ranks
        // first: a fenced mirror (lower epoch) missed commits by
        // construction, so the newest epoch is always at least as
        // committed as any older one. Mirrors below `cfg.min_epoch` are
        // not even candidates.
        let mut candidates: Vec<(usize, u64, u64)> = Vec::new();
        let mut backends: Vec<Option<M>> = backends.into_iter().map(Some).collect();
        for (i, b) in backends.iter_mut().enumerate() {
            let backend = b.as_mut().expect("present");
            if let Ok(meta) = backend.connect_segment(cfg.meta_tag) {
                let mut commit = [0u8; 8];
                let mut epoch = [0u8; 8];
                if backend
                    .remote_read(meta.id, OFF_COMMIT, &mut commit)
                    .is_ok()
                    && backend.remote_read(meta.id, OFF_EPOCH, &mut epoch).is_ok()
                {
                    let epoch = u64::from_le_bytes(epoch);
                    if epoch >= cfg.min_epoch {
                        candidates.push((i, epoch, u64::from_le_bytes(commit)));
                    }
                }
            }
        }
        let Some(&(best, _, _)) = candidates
            .iter()
            .max_by_key(|&&(i, epoch, committed)| (epoch, committed, std::cmp::Reverse(i)))
        else {
            return Err(TxnError::Unavailable(
                "no mirror holds recoverable PERSEAS metadata at an admissible epoch".into(),
            ));
        };

        let chosen = backends[best].take().expect("present");
        let (mut db, report) = Perseas::recover_with_clock(chosen, cfg, clock)?;
        for mut b in backends.into_iter().flatten() {
            // Drop the stale replica before re-mirroring, so its old
            // metadata can never shadow the fresh copy in a later
            // recovery. A mirror that is itself dead is simply skipped:
            // recovery must proceed on whatever survives.
            if Perseas::scrub_mirror(&mut b, &cfg).is_err() {
                continue;
            }
            let _ = db.add_mirror(b);
        }
        Ok((db, report))
    }

    /// Frees every PERSEAS segment (metadata, undo log, database regions)
    /// that `backend` holds under `cfg.meta_tag`. Used before re-mirroring
    /// onto a node that carries a stale replica.
    ///
    /// # Errors
    ///
    /// Fails only on transport errors; a node without PERSEAS state is
    /// fine.
    pub fn scrub_mirror(backend: &mut M, cfg: &PerseasConfig) -> Result<(), TxnError> {
        loop {
            let meta = match backend.connect_segment(cfg.meta_tag) {
                Ok(meta) => meta,
                Err(perseas_rnram::RnError::TagNotFound(_)) => return Ok(()),
                Err(e) => return Err(unavailable(e)),
            };
            let mut image = vec![0u8; meta.len];
            backend
                .remote_read(meta.id, 0, &mut image)
                .map_err(unavailable)?;
            if let Ok(header) = MetaHeader::decode(&image) {
                for i in 0..header.region_count as usize {
                    if let Ok((seg_id, _)) = crate::layout::decode_region_entry(&image, i) {
                        let _ = backend.remote_free(SegmentId::from_raw(seg_id));
                    }
                }
                let _ = backend.remote_free(SegmentId::from_raw(header.undo_seg_id));
            }
            backend.remote_free(meta.id).map_err(unavailable)?;
        }
    }
}
