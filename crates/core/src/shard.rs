//! Sharding: K independent mirror sets under one crash-tolerant
//! cross-shard atomic commit.
//!
//! A [`ShardedPerseas`] partitions its regions round-robin across `K`
//! [`Perseas`] instances ("shards"). Each shard owns its own mirror set,
//! epoch line, conflict table, undo arena and commit watermark, so a
//! transaction touching one shard commits — and its mirrors fail over —
//! with **zero cross-shard coordination**: the fast path is a plain
//! [`Perseas::commit_t`] on the owning shard.
//!
//! A transaction touching several shards commits through a two-phase
//! protocol built from the same packet-atomic record writes the
//! single-shard engine uses:
//!
//! 1. **Prepare** — every touched shard freezes its part with the
//!    WAL-ordered vectored prepare ([`Perseas::prepare_t`]): undo records
//!    and data are durable on that shard's mirrors, the part rejects
//!    further writes.
//! 2. **Intent** — every touched shard durably records a 32-byte
//!    CRC-guarded *intent slot* naming its local part, the global
//!    transaction id, and the **home shard** (the lowest touched shard)
//!    that will hold the decision.
//! 3. **Decision** — the coordinator writes a 16-byte CRC-guarded
//!    *decision record* to the home shard's mirrors and flushes. One
//!    decision slot is exactly one SCI packet, so it is either fully
//!    durable or reads as absent: this flush is the atomic commit point
//!    of the whole cross-shard transaction.
//! 4. **Fan-out** — record-only commits ([`Perseas::commit_t`]) retire
//!    each part; the data already travelled during `set_range_t` and
//!    prepare. Each shard's fan-out write is charged to that shard's own
//!    clock, so the fan-out is parallel in virtual time. The intent and
//!    decision slots are then cleared lazily (no flush — a lost clear
//!    leaves a stale slot that recovery skips, because committed-ness is
//!    checked first).
//!
//! **Presumed abort.** If anything fails before the decision record is
//! durable, every part is rolled back and no decision is ever written.
//! Recovery applies the same rule: an in-doubt prepared part whose
//! global transaction has no decision record on its home shard is rolled
//! back; one whose decision record survives is committed by writing its
//! local id into a free commit-table slot (an 8-byte packet-atomic
//! write) before normal single-shard recovery runs. This tolerates a
//! coordinator crash at any step, a shard-primary crash, and any packet
//! prefix of the commit fan-out.

use std::collections::{BTreeMap, HashMap, HashSet};

use perseas_rnram::{RemoteMemory, SegmentId};
use perseas_simtime::SimClock;
use perseas_txn::{RegionId, SnapshotToken, TransactionalMemory, TxnError, TxnStats};

use crate::conc::TxnToken;
use crate::fault::FaultPlan;
use crate::layout::{
    commit_table_offset, decode_commit_table, decode_decision_table, decode_intent_table,
    decode_region_entry, encode_decision_slot, encode_intent_slot, intent_table_offset, MetaHeader,
    DECISION_SLOT_SIZE, FLAG_SHARDED, INTENT_SLOT_SIZE, OFF_COMMIT, OFF_EPOCH,
};
use crate::perseas::{MirrorBatches, Perseas, Phase};
use crate::recovery::RecoveryReport;
use crate::trace::{TraceEvent, Tracer};
use crate::PerseasConfig;

fn unavailable(e: impl std::fmt::Display) -> TxnError {
    TxnError::Unavailable(e.to_string())
}

/// A handle naming an open cross-shard transaction on a
/// [`ShardedPerseas`]. Like [`TxnToken`], it is a plain copyable id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalToken {
    id: u64,
}

impl GlobalToken {
    /// The global transaction id this token names.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// How far a cross-shard commit has progressed (see the staged phase
/// methods on [`ShardedPerseas`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Accepting claims and writes.
    Open,
    /// Every part is frozen and durable on its shard.
    Prepared,
    /// Every touched shard holds a durable intent slot.
    Intended,
    /// The decision record is durable on the home shard: committed.
    Decided,
}

/// Coordinator-side state of one open cross-shard transaction.
struct XTxn {
    /// Touched shards, ascending, with the part's token on each.
    parts: BTreeMap<usize, TxnToken>,
    /// `(shard, intent slot)` written so far.
    intents: Vec<(usize, usize)>,
    /// `(home shard, decision slot)` once the decision is durable.
    decision: Option<(usize, usize)>,
    stage: Stage,
}

impl XTxn {
    fn new() -> XTxn {
        XTxn {
            parts: BTreeMap::new(),
            intents: Vec::new(),
            decision: None,
            stage: Stage::Open,
        }
    }
}

/// Coordination-slot writes shared by the commit path and recovery: each
/// is a vectored record write fanned out to every healthy mirror of one
/// shard, charged one fault step per mirror like every other protocol
/// write.
impl<M: RemoteMemory> Perseas<M> {
    /// Writes `bytes` at the meta offset `off_of(meta_len)` on every
    /// healthy mirror, optionally followed by an ack barrier.
    fn coord_write(
        &mut self,
        off_of: impl Fn(usize) -> usize,
        bytes: &[u8],
        flush: bool,
    ) -> Result<(), TxnError> {
        self.ensure_phase(Phase::Ready)?;
        self.check_commit_quorum()?;
        let lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| (mi, vec![(m.meta.id, off_of(m.meta.len), bytes.to_vec())]))
            .collect();
        self.fan_out_vectored(lists)?;
        if flush {
            self.flush_mirrors()?;
        }
        Ok(())
    }

    /// Durably records an intent slot: this shard's part `local` of the
    /// cross-shard transaction `global` awaits the decision on `home`.
    pub(crate) fn write_intent_slot(
        &mut self,
        slot: usize,
        local: u64,
        global: u64,
        home: u32,
    ) -> Result<(), TxnError> {
        let (cs, is, ds) = (
            self.cfg.commit_slots,
            self.cfg.intent_slots,
            self.cfg.decision_slots,
        );
        debug_assert!(slot < is);
        let bytes = encode_intent_slot(local, global, home);
        self.coord_write(
            move |len| intent_table_offset(len, cs, is, ds) + slot * INTENT_SLOT_SIZE,
            &bytes,
            true,
        )
    }

    /// Retires an intent slot. Unflushed by default: a lost clear leaves
    /// a stale slot that recovery skips via the committed-ness check.
    pub(crate) fn clear_intent_slot(&mut self, slot: usize, flush: bool) -> Result<(), TxnError> {
        let (cs, is, ds) = (
            self.cfg.commit_slots,
            self.cfg.intent_slots,
            self.cfg.decision_slots,
        );
        self.coord_write(
            move |len| intent_table_offset(len, cs, is, ds) + slot * INTENT_SLOT_SIZE,
            &[0u8; INTENT_SLOT_SIZE],
            flush,
        )
    }

    /// Writes and flushes the decision record for `global` — the atomic
    /// commit point of a cross-shard transaction. One decision slot is a
    /// single 16-byte line (one SCI packet), so a crash mid-flush leaves
    /// it either fully durable or CRC-invalid, never half-decided.
    pub(crate) fn write_decision_slot(&mut self, slot: usize, global: u64) -> Result<(), TxnError> {
        let (cs, ds) = (self.cfg.commit_slots, self.cfg.decision_slots);
        debug_assert!(slot < ds);
        let bytes = encode_decision_slot(global);
        self.coord_write(
            move |len| {
                crate::layout::decision_table_offset(len, cs, ds) + slot * DECISION_SLOT_SIZE
            },
            &bytes,
            true,
        )
    }

    /// Retires a decision slot (unflushed; see [`Perseas::clear_intent_slot`]).
    pub(crate) fn clear_decision_slot(&mut self, slot: usize, flush: bool) -> Result<(), TxnError> {
        let (cs, ds) = (self.cfg.commit_slots, self.cfg.decision_slots);
        self.coord_write(
            move |len| {
                crate::layout::decision_table_offset(len, cs, ds) + slot * DECISION_SLOT_SIZE
            },
            &[0u8; DECISION_SLOT_SIZE],
            flush,
        )
    }
}

/// What [`ShardedPerseas::recover`] found and did, beyond the per-shard
/// [`RecoveryReport`]s: how many in-doubt prepared parts each shard held
/// and how they were resolved. Feed it to
/// [`record_shard_recovery`](crate::record_shard_recovery) to surface the
/// counts as metrics.
#[derive(Debug)]
pub struct ShardRecoveryReport {
    /// Per-shard reports from the underlying single-shard recoveries.
    pub shards: Vec<RecoveryReport>,
    /// Per shard: in-doubt prepared parts **kept** because the home
    /// shard's decision table held their global transaction.
    pub resolved_commits: Vec<usize>,
    /// Per shard: in-doubt prepared parts **rolled back** because no
    /// decision record existed (presumed abort).
    pub resolved_aborts: Vec<usize>,
}

/// A database partitioned across K independent [`Perseas`] shards (see
/// the `shard` module docs for the commit protocol).
///
/// Regions allocated through [`ShardedPerseas::malloc`] are spread
/// round-robin: global region `g` lives on shard `g % K`. The global
/// [`RegionId`]s handed out here are what every other method takes; the
/// shard-local ids never escape.
///
/// # Examples
///
/// ```
/// use perseas_core::{PerseasConfig, ShardedPerseas};
/// use perseas_rnram::SimRemote;
///
/// # fn main() -> Result<(), perseas_txn::TxnError> {
/// let backends = (0..2)
///     .map(|s| (0..2).map(|m| SimRemote::new(format!("s{s}m{m}"))).collect())
///     .collect();
/// let mut db = ShardedPerseas::init(backends, PerseasConfig::default())?;
/// let a = db.malloc(64)?; // shard 0
/// let b = db.malloc(64)?; // shard 1
/// db.init_remote_db()?;
///
/// let g = db.begin_global()?;
/// db.set_range_g(g, a, 0, 8)?;
/// db.set_range_g(g, b, 0, 8)?;
/// db.write_g(g, a, 0, &[1; 8])?;
/// db.write_g(g, b, 0, &[2; 8])?;
/// db.commit_g(g)?; // atomic across both shards
/// # Ok(())
/// # }
/// ```
pub struct ShardedPerseas<M: RemoteMemory> {
    shards: Vec<Perseas<M>>,
    /// Global region index → (owning shard, shard-local region handle).
    routes: Vec<(usize, RegionId)>,
    next_global: u64,
    open: BTreeMap<u64, XTxn>,
    /// Per shard: local txn id → owning global id, for holder remapping
    /// in [`TxnError::Conflict`].
    locals: Vec<HashMap<u64, u64>>,
    intent_busy: Vec<Vec<bool>>,
    decision_busy: Vec<Vec<bool>>,
    /// Implicit transaction backing the [`TransactionalMemory`] facade.
    implicit: Option<GlobalToken>,
    /// Set when a shard crashed under the coordinator: the in-doubt
    /// state on the other shards must survive untouched for recovery.
    crashed: bool,
}

/// The per-shard config: shard `s` keeps its metadata under
/// `meta_tag + s` and stamps its identity into the durable header.
fn shard_cfg(base: &PerseasConfig, index: usize, count: usize) -> PerseasConfig {
    base.with_meta_tag(base.meta_tag + index as u64)
        .with_shard(index as u16, count as u16)
}

impl<M: RemoteMemory> ShardedPerseas<M> {
    /// Creates a sharded database: one shard per entry of `backends`,
    /// each mirroring across its own backend set. `cfg` applies to every
    /// shard, except that shard `s` uses `meta_tag + s` (the tag space
    /// must leave `backends.len()` consecutive tags free) and the
    /// concurrent engine is forced on.
    ///
    /// # Errors
    ///
    /// Fails if any shard's backends cannot be initialised.
    ///
    /// # Panics
    ///
    /// Panics on zero shards, more than `u16::MAX` shards, or an odd
    /// `commit_slots` (the decision table must start on a 16-byte line).
    pub fn init(backends: Vec<Vec<M>>, cfg: PerseasConfig) -> Result<Self, TxnError> {
        Self::init_with_clocks(
            backends.into_iter().map(|b| (b, SimClock::new())).collect(),
            cfg,
        )
    }

    /// Like [`ShardedPerseas::init`], charging each shard's protocol work
    /// to its own clock — the model of K workstation sets operating in
    /// parallel, used by the scaling benchmarks.
    pub fn init_with_clocks(
        backends: Vec<(Vec<M>, SimClock)>,
        cfg: PerseasConfig,
    ) -> Result<Self, TxnError> {
        let k = backends.len();
        assert!(k > 0, "a sharded database needs at least one shard");
        assert!(k <= u16::MAX as usize, "shard count must fit in u16");
        let mut shards = Vec::with_capacity(k);
        for (s, (b, clock)) in backends.into_iter().enumerate() {
            shards.push(Perseas::init_with_clock(b, shard_cfg(&cfg, s, k), clock)?);
        }
        Ok(Self::assemble(shards, Vec::new(), 1))
    }

    fn assemble(shards: Vec<Perseas<M>>, routes: Vec<(usize, RegionId)>, next_global: u64) -> Self {
        let k = shards.len();
        ShardedPerseas {
            intent_busy: shards
                .iter()
                .map(|d| vec![false; d.cfg.intent_slots])
                .collect(),
            decision_busy: shards
                .iter()
                .map(|d| vec![false; d.cfg.decision_slots])
                .collect(),
            locals: vec![HashMap::new(); k],
            shards,
            routes,
            next_global,
            open: BTreeMap::new(),
            implicit: None,
            crashed: false,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of regions allocated so far (across all shards).
    pub fn regions(&self) -> usize {
        self.routes.len()
    }

    /// Read access to one shard, for inspection (status, clock,
    /// snapshots via shard-local handles).
    pub fn shard(&self, shard: usize) -> &Perseas<M> {
        &self.shards[shard]
    }

    /// Allocates a region of `len` bytes on shard
    /// `regions() % shard_count()` and returns its **global** handle.
    ///
    /// # Errors
    ///
    /// Fails when the owning shard is out of region-table slots or a
    /// transaction is open.
    pub fn malloc(&mut self, len: usize) -> Result<RegionId, TxnError> {
        self.ensure_alive()?;
        let g = self.routes.len();
        let shard = g % self.shards.len();
        let local = self.shards[shard].malloc(len)?;
        self.routes.push((shard, local));
        Ok(RegionId::from_raw(g as u32))
    }

    /// Publishes every shard to its mirrors (see
    /// [`Perseas::init_remote_db`]).
    ///
    /// # Errors
    ///
    /// Fails on the first shard whose publication fails.
    pub fn init_remote_db(&mut self) -> Result<(), TxnError> {
        self.ensure_alive()?;
        for s in &mut self.shards {
            s.init_remote_db()?;
        }
        Ok(())
    }

    fn ensure_alive(&self) -> Result<(), TxnError> {
        if self.crashed {
            Err(TxnError::Crashed)
        } else {
            Ok(())
        }
    }

    fn route(&self, region: RegionId) -> Result<(usize, RegionId), TxnError> {
        self.routes
            .get(region.as_raw() as usize)
            .copied()
            .ok_or(TxnError::UnknownRegion(region))
    }

    /// Rewrites shard-local ids in `e` into the caller's global terms:
    /// the contested region becomes the global handle and a conflicting
    /// holder becomes its global transaction id. A `Crashed` from a
    /// shard poisons the coordinator.
    fn remap(&mut self, shard: usize, gregion: RegionId, e: TxnError) -> TxnError {
        match e {
            TxnError::Crashed => {
                self.crashed = true;
                TxnError::Crashed
            }
            TxnError::Conflict {
                offset,
                len,
                holder,
                ..
            } => TxnError::Conflict {
                region: gregion,
                offset,
                len,
                holder: self.locals[shard].get(&holder).copied().unwrap_or(holder),
            },
            TxnError::UnknownRegion(_) => TxnError::UnknownRegion(gregion),
            TxnError::OutOfBounds {
                offset,
                len,
                region_len,
                ..
            } => TxnError::OutOfBounds {
                region: gregion,
                offset,
                len,
                region_len,
            },
            TxnError::RangeNotDeclared { offset, .. } => TxnError::RangeNotDeclared {
                region: gregion,
                offset,
            },
            other => other,
        }
    }

    /// Opens a cross-shard transaction. No shard is touched until the
    /// first claim routes to it.
    ///
    /// # Errors
    ///
    /// Fails only after the coordinator was poisoned by a crash.
    pub fn begin_global(&mut self) -> Result<GlobalToken, TxnError> {
        self.ensure_alive()?;
        let id = self.next_global;
        self.next_global += 1;
        self.open.insert(id, XTxn::new());
        Ok(GlobalToken { id })
    }

    /// The part of `g` on `shard`, opened lazily on first touch.
    fn part(&mut self, g: GlobalToken, shard: usize) -> Result<TxnToken, TxnError> {
        let xt = self.open.get(&g.id).ok_or(TxnError::NoActiveTransaction)?;
        if xt.stage != Stage::Open {
            return Err(TxnError::Unavailable(format!(
                "cross-shard transaction {} is already committing",
                g.id
            )));
        }
        if let Some(&tok) = xt.parts.get(&shard) {
            return Ok(tok);
        }
        let tok = match self.shards[shard].begin_concurrent() {
            Ok(t) => t,
            Err(TxnError::Crashed) => {
                self.crashed = true;
                return Err(TxnError::Crashed);
            }
            Err(e) => return Err(e),
        };
        self.open
            .get_mut(&g.id)
            .expect("checked above")
            .parts
            .insert(shard, tok);
        self.locals[shard].insert(tok.id(), g.id);
        Ok(tok)
    }

    /// Declares `[offset, offset+len)` of a (global) region writable by
    /// `g`, claiming it in the owning shard's conflict table.
    ///
    /// # Errors
    ///
    /// [`TxnError::Conflict`] (with the *global* holder id) when the
    /// range is claimed by another open transaction on that shard, plus
    /// every error [`Perseas::set_range_t`] can raise.
    pub fn set_range_g(
        &mut self,
        g: GlobalToken,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> Result<(), TxnError> {
        self.ensure_alive()?;
        let (shard, local) = self.route(region)?;
        let tok = self.part(g, shard)?;
        match self.shards[shard].set_range_t(tok, local, offset, len) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.remap(shard, region, e)),
        }
    }

    /// Transactionally writes `data` into a (global) region under `g`.
    ///
    /// # Errors
    ///
    /// As [`Perseas::write_t`], with shard-local ids remapped.
    pub fn write_g(
        &mut self,
        g: GlobalToken,
        region: RegionId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), TxnError> {
        self.ensure_alive()?;
        let (shard, local) = self.route(region)?;
        let tok = self.part(g, shard)?;
        match self.shards[shard].write_t(tok, local, offset, data) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.remap(shard, region, e)),
        }
    }

    /// Reads from the owning shard's current local image (committed or
    /// uncommitted, like [`Perseas::read`]).
    ///
    /// # Errors
    ///
    /// Fails on unknown regions or out-of-range reads.
    pub fn read_g(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard]
            .read(local, offset, buf)
            .map_err(|e| match e {
                TxnError::UnknownRegion(_) => TxnError::UnknownRegion(region),
                TxnError::OutOfBounds {
                    offset,
                    len,
                    region_len,
                    ..
                } => TxnError::OutOfBounds {
                    region,
                    offset,
                    len,
                    region_len,
                },
                other => other,
            })
    }

    /// Opens a cross-shard snapshot: a vector pinning one commit
    /// watermark **per shard** (index = shard index). Each shard's
    /// watermark is exact for that shard, so single-shard reads through
    /// the vector are serializable; across shards the vector is a
    /// consistent cut only up to cross-shard commits that were mid-flight
    /// while it was taken — a read whose shard has since evicted the
    /// pinned versions fails typed with [`TxnError::SnapshotTooOld`]
    /// rather than returning a torn image.
    ///
    /// # Errors
    ///
    /// Fails when MVCC is disabled or after a crash; on failure no shard
    /// keeps a snapshot open.
    pub fn begin_snapshot_g(&mut self) -> Result<Vec<SnapshotToken>, TxnError> {
        self.ensure_alive()?;
        let mut snaps = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            match self.shards[i].begin_snapshot() {
                Ok(s) => snaps.push(s),
                Err(e) => {
                    for (shard, snap) in snaps.into_iter().enumerate() {
                        self.shards[shard].end_snapshot(snap);
                    }
                    return Err(e);
                }
            }
        }
        Ok(snaps)
    }

    /// Reads `region` at the watermark `snaps` pinned on its owning
    /// shard. Takes no conflict-table claims: concurrent writers on any
    /// shard can never force this read to abort.
    ///
    /// # Errors
    ///
    /// Never `Conflict` or `SnapshotContention`; fails with
    /// [`TxnError::SnapshotTooOld`] when the owning shard evicted the
    /// pinned versions, or on routing/bounds violations.
    ///
    /// # Panics
    ///
    /// Panics if `snaps` has fewer entries than there are shards (it must
    /// come from [`ShardedPerseas::begin_snapshot_g`]).
    pub fn read_g_s(
        &self,
        snaps: &[SnapshotToken],
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), TxnError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard]
            .read_s(snaps[shard], local, offset, buf)
            .map_err(|e| match e {
                TxnError::UnknownRegion(_) => TxnError::UnknownRegion(region),
                TxnError::OutOfBounds {
                    offset,
                    len,
                    region_len,
                    ..
                } => TxnError::OutOfBounds {
                    region,
                    offset,
                    len,
                    region_len,
                },
                other => other,
            })
    }

    /// Closes a cross-shard snapshot, releasing every shard's pinned
    /// versions. Idempotent per token; extra entries are ignored.
    pub fn end_snapshot_g(&mut self, snaps: Vec<SnapshotToken>) {
        for (shard, snap) in snaps.into_iter().enumerate() {
            if let Some(db) = self.shards.get_mut(shard) {
                db.end_snapshot(snap);
            }
        }
    }

    /// Rolls back every part of `g` on its shard.
    ///
    /// # Errors
    ///
    /// Returns the first per-shard abort failure after attempting all of
    /// them; the transaction is closed either way.
    pub fn abort_g(&mut self, g: GlobalToken) -> Result<(), TxnError> {
        self.ensure_alive()?;
        let xt = self
            .open
            .remove(&g.id)
            .ok_or(TxnError::NoActiveTransaction)?;
        let mut first_err = None;
        for (&shard, &tok) in &xt.parts {
            match self.shards[shard].abort_t(tok) {
                Ok(()) => {}
                Err(TxnError::Crashed) => {
                    self.crashed = true;
                    first_err.get_or_insert(TxnError::Crashed);
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
            self.locals[shard].remove(&tok.id());
        }
        for (shard, slot) in xt.intents {
            let _ = self.shards[shard].clear_intent_slot(slot, false);
            self.intent_busy[shard][slot] = false;
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Commits `g` atomically across every shard it touched.
    ///
    /// A transaction that touched **one** shard commits through that
    /// shard's ordinary commit path — no intent, no decision record, no
    /// traffic to any other shard. A transaction that touched several
    /// runs the prepare → intent → decision → fan-out protocol from the
    /// `shard` module docs.
    ///
    /// # Errors
    ///
    /// Before the decision record is durable, errors abort the
    /// transaction everywhere (presumed abort) — except
    /// [`TxnError::Crashed`], which poisons the coordinator in place so
    /// the surviving shards' in-doubt state is preserved for recovery.
    /// After the decision, a failed fan-out surfaces as
    /// [`TxnError::CommitInDoubt`] naming the **global** id: the
    /// transaction *is* committed and recovery will finish the fan-out;
    /// do not retry it.
    pub fn commit_g(&mut self, g: GlobalToken) -> Result<(), TxnError> {
        self.ensure_alive()?;
        let xt = self.open.get(&g.id).ok_or(TxnError::NoActiveTransaction)?;
        match xt.parts.len() {
            0 => {
                self.open.remove(&g.id);
                Ok(())
            }
            1 => {
                let (&shard, &tok) = xt.parts.iter().next().expect("len 1");
                match self.shards[shard].commit_t(tok) {
                    Ok(()) => {
                        self.open.remove(&g.id);
                        self.locals[shard].remove(&tok.id());
                        Ok(())
                    }
                    Err(TxnError::Crashed) => {
                        self.crashed = true;
                        Err(TxnError::Crashed)
                    }
                    Err(TxnError::CommitInDoubt {
                        healthy, quorum, ..
                    }) => {
                        // Durable but under-replicated: resolved, not retryable.
                        self.open.remove(&g.id);
                        self.locals[shard].remove(&tok.id());
                        Err(TxnError::CommitInDoubt {
                            id: g.id,
                            healthy,
                            quorum,
                        })
                    }
                    // Failed before its durability point: the part (and the
                    // transaction) stays open so the caller can abort or retry.
                    Err(e) => Err(e),
                }
            }
            _ => {
                self.prepare_parts(g)?;
                self.write_intents(g)?;
                self.write_decision(g)?;
                self.fan_out_commits(g)
            }
        }
    }

    fn parts_of(&self, g: GlobalToken, want: Stage) -> Result<Vec<(usize, TxnToken)>, TxnError> {
        let xt = self.open.get(&g.id).ok_or(TxnError::NoActiveTransaction)?;
        if xt.stage != want {
            return Err(TxnError::Unavailable(format!(
                "cross-shard transaction {} is at stage {:?}, not {:?}",
                g.id, xt.stage, want
            )));
        }
        Ok(xt.parts.iter().map(|(&s, &t)| (s, t)).collect())
    }

    /// The home shard of `g`: the lowest shard it touched, which holds
    /// the decision record.
    fn home_of(&self, g: GlobalToken) -> usize {
        *self.open[&g.id].parts.keys().next().expect("≥2 parts")
    }

    /// Phase 1 of the cross-shard commit: freezes every part on its
    /// shard. Exposed (hidden) so crash-point tests can stop the
    /// protocol between exact phases; use [`ShardedPerseas::commit_g`].
    ///
    /// # Errors
    ///
    /// See [`ShardedPerseas::commit_g`].
    #[doc(hidden)]
    pub fn prepare_parts(&mut self, g: GlobalToken) -> Result<(), TxnError> {
        self.ensure_alive()?;
        let parts = self.parts_of(g, Stage::Open)?;
        for &(shard, tok) in &parts {
            match self.shards[shard].prepare_t(tok) {
                Ok(()) => {
                    self.shards[shard].emit(TraceEvent::CrossShardPrepared {
                        global: g.id,
                        shard: shard as u16,
                        txn: tok.id(),
                    });
                }
                Err(e) => return Err(self.presumed_abort(g, e)),
            }
        }
        self.open.get_mut(&g.id).expect("open").stage = Stage::Prepared;
        Ok(())
    }

    /// Phase 2: durably records an intent slot on every touched shard.
    ///
    /// # Errors
    ///
    /// See [`ShardedPerseas::commit_g`].
    #[doc(hidden)]
    pub fn write_intents(&mut self, g: GlobalToken) -> Result<(), TxnError> {
        self.ensure_alive()?;
        let parts = self.parts_of(g, Stage::Prepared)?;
        let home = self.home_of(g) as u32;
        for &(shard, tok) in &parts {
            let slot = match self.intent_busy[shard].iter().position(|b| !b) {
                Some(s) => s,
                None => {
                    return Err(self.presumed_abort(
                        g,
                        TxnError::Unavailable(format!("shard {shard}: intent table is full")),
                    ))
                }
            };
            self.intent_busy[shard][slot] = true;
            match self.shards[shard].write_intent_slot(slot, tok.id(), g.id, home) {
                Ok(()) => self
                    .open
                    .get_mut(&g.id)
                    .expect("open")
                    .intents
                    .push((shard, slot)),
                Err(e) => {
                    self.intent_busy[shard][slot] = false;
                    return Err(self.presumed_abort(g, e));
                }
            }
        }
        self.open.get_mut(&g.id).expect("open").stage = Stage::Intended;
        Ok(())
    }

    /// Phase 3: writes and flushes the decision record on the home shard
    /// — the atomic commit point.
    ///
    /// # Errors
    ///
    /// See [`ShardedPerseas::commit_g`].
    #[doc(hidden)]
    pub fn write_decision(&mut self, g: GlobalToken) -> Result<(), TxnError> {
        self.ensure_alive()?;
        let parts = self.parts_of(g, Stage::Intended)?;
        let home = self.home_of(g);
        let slot = match self.decision_busy[home].iter().position(|b| !b) {
            Some(s) => s,
            None => {
                return Err(self.presumed_abort(
                    g,
                    TxnError::Unavailable(format!("shard {home}: decision table is full")),
                ))
            }
        };
        self.decision_busy[home][slot] = true;
        match self.shards[home].write_decision_slot(slot, g.id) {
            Ok(()) => {}
            Err(TxnError::Crashed) => {
                self.crashed = true;
                return Err(TxnError::Crashed);
            }
            Err(e) => {
                // The flush failed part-way: the record may or may not have
                // reached a surviving mirror, so neither outcome can be
                // claimed. Recovery decides from whatever is durable.
                self.forget(g);
                return Err(self.in_doubt(home, g.id, e));
            }
        }
        let xt = self.open.get_mut(&g.id).expect("open");
        xt.decision = Some((home, slot));
        xt.stage = Stage::Decided;
        let shards = parts.len();
        self.shards[home].emit(TraceEvent::CrossShardDecision {
            global: g.id,
            home: home as u16,
            shards,
        });
        Ok(())
    }

    /// Phase 4: record-only commit fan-out, then lazy retirement of the
    /// coordination slots.
    ///
    /// # Errors
    ///
    /// See [`ShardedPerseas::commit_g`].
    #[doc(hidden)]
    pub fn fan_out_commits(&mut self, g: GlobalToken) -> Result<(), TxnError> {
        self.ensure_alive()?;
        let parts = self.parts_of(g, Stage::Decided)?;
        for &(shard, tok) in &parts {
            match self.shards[shard].commit_t(tok) {
                // Degraded but durable on that shard; the fan-out goes on.
                Ok(()) | Err(TxnError::CommitInDoubt { .. }) => {}
                Err(TxnError::Crashed) => {
                    self.crashed = true;
                    return Err(TxnError::Crashed);
                }
                Err(e) => {
                    // Decided but not fully fanned out: recovery finishes the
                    // commit on the shards this loop never reached.
                    self.forget(g);
                    return Err(self.in_doubt(shard, g.id, e));
                }
            }
        }
        let xt = self.open.remove(&g.id).expect("open");
        for &(shard, tok) in &parts {
            self.locals[shard].remove(&tok.id());
        }
        for (shard, slot) in xt.intents {
            if let Err(TxnError::Crashed) = self.shards[shard].clear_intent_slot(slot, false) {
                self.crashed = true;
                return Err(TxnError::Crashed);
            }
            self.intent_busy[shard][slot] = false;
        }
        let (home, dslot) = xt.decision.expect("decided");
        if let Err(TxnError::Crashed) = self.shards[home].clear_decision_slot(dslot, false) {
            self.crashed = true;
            return Err(TxnError::Crashed);
        }
        self.decision_busy[home][dslot] = false;
        self.shards[home].emit(TraceEvent::CrossShardCommitted {
            global: g.id,
            shards: parts.len(),
        });
        Ok(())
    }

    /// Abandons a cross-shard commit **before** its decision record
    /// exists: every part is rolled back — exactly what recovery would
    /// decide (presumed abort) — and written intents are retired. A
    /// [`TxnError::Crashed`] cause instead poisons the coordinator in
    /// place, touching nothing else: the other shards' prepared parts
    /// stay in-doubt, exactly as a coordinator process death would leave
    /// them.
    fn presumed_abort(&mut self, g: GlobalToken, cause: TxnError) -> TxnError {
        if matches!(cause, TxnError::Crashed) {
            self.crashed = true;
            return TxnError::Crashed;
        }
        let Some(xt) = self.open.remove(&g.id) else {
            return cause;
        };
        for (&shard, &tok) in &xt.parts {
            if let Err(TxnError::Crashed) = self.shards[shard].abort_t(tok) {
                self.crashed = true;
            }
            self.locals[shard].remove(&tok.id());
        }
        for (shard, slot) in xt.intents {
            let _ = self.shards[shard].clear_intent_slot(slot, false);
            self.intent_busy[shard][slot] = false;
        }
        cause
    }

    /// Closes the coordinator's books on an in-doubt transaction. The
    /// durable intent/decision slots stay pinned — they must not be
    /// reused while recovery may still need them.
    fn forget(&mut self, g: GlobalToken) {
        if let Some(xt) = self.open.remove(&g.id) {
            for (&shard, &tok) in &xt.parts {
                self.locals[shard].remove(&tok.id());
            }
        }
    }

    fn in_doubt(&self, shard: usize, global: u64, _cause: TxnError) -> TxnError {
        TxnError::CommitInDoubt {
            id: global,
            healthy: self.shards[shard]
                .mirror_status()
                .iter()
                .filter(|s| s.health == crate::MirrorHealth::Healthy)
                .count(),
            quorum: self.shards[shard].cfg.commit_quorum,
        }
    }

    /// Kills every shard's volatile state (fault-injection convenience;
    /// see [`Perseas::crash`]).
    pub fn crash(&mut self) {
        for s in &mut self.shards {
            s.crash();
        }
        self.crashed = true;
    }

    /// Arms crash-point fault injection on one shard (see [`FaultPlan`]).
    pub fn set_fault_plan(&mut self, shard: usize, plan: FaultPlan) {
        self.shards[shard].set_fault_plan(plan);
    }

    /// Protocol steps one shard has taken (see [`Perseas::steps_taken`]).
    pub fn steps_taken(&self, shard: usize) -> u64 {
        self.shards[shard].steps_taken()
    }

    /// Installs a tracer on one shard (see [`Perseas::set_tracer`]).
    pub fn set_tracer(&mut self, shard: usize, tracer: Box<dyn Tracer>) {
        self.shards[shard].set_tracer(tracer);
    }

    /// Installs metrics on every shard, tagging each shard's series with
    /// a `shard` label (the mirror-health gauge becomes
    /// `perseas_shard_mirror_healthy{shard,mirror}` so mirror indices
    /// from different shards never collide), and publishes the
    /// `perseas_shards` gauge.
    pub fn set_metrics(&mut self, registry: &perseas_obs::Registry) {
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.set_metrics_tagged(registry, s as u16);
        }
        registry
            .gauge(
                "perseas_shards",
                "Number of shards in the sharded database.",
            )
            .set(self.shards.len() as i64);
    }

    /// The owning shard's committed watermark for a global region — a
    /// copy of the current bytes (see [`Perseas::region_snapshot`]).
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_snapshot(&self, region: RegionId) -> Result<Vec<u8>, TxnError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard].region_snapshot(local)
    }

    /// Length of a global region.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard].region_len(local)
    }

    /// Recovers the whole sharded database from each shard's surviving
    /// mirrors, resolving in-doubt cross-shard transactions first.
    ///
    /// For every shard the best surviving image is ranked exactly as in
    /// [`Perseas::recover_best`]. Valid intent slots naming a prepared,
    /// uncommitted local part are then resolved against the home shard's
    /// decision table: present → the part's id is written into a free
    /// commit-table slot (an 8-byte packet-atomic write, flushed) so
    /// ordinary recovery keeps it; absent → presumed abort, ordinary
    /// recovery rolls it back. Only after **every** shard has recovered
    /// are the coordination tables cleared, so a crash during recovery
    /// just re-runs the (idempotent) resolution.
    ///
    /// # Errors
    ///
    /// Fails if any shard has no admissible image, an image that is not
    /// this shard of this database, or unreachable mirrors mid-way.
    pub fn recover(
        backends: Vec<Vec<M>>,
        cfg: PerseasConfig,
    ) -> Result<(Self, ShardRecoveryReport), TxnError> {
        Self::recover_with_clocks(
            backends.into_iter().map(|b| (b, SimClock::new())).collect(),
            cfg,
        )
    }

    /// Like [`ShardedPerseas::recover`], charging each shard's recovery
    /// to its own clock.
    ///
    /// # Errors
    ///
    /// See [`ShardedPerseas::recover`].
    pub fn recover_with_clocks(
        mut backends: Vec<(Vec<M>, SimClock)>,
        cfg: PerseasConfig,
    ) -> Result<(Self, ShardRecoveryReport), TxnError> {
        let k = backends.len();
        assert!(k > 0, "a sharded database needs at least one shard");

        // 1. Pick and read the best surviving meta image per shard, with
        // the same ranking recover_best will apply below.
        struct Peek {
            best: usize,
            meta_id: SegmentId,
            image: Vec<u8>,
            header: MetaHeader,
        }
        let mut peeks: Vec<Peek> = Vec::with_capacity(k);
        for (s, (bs, _)) in backends.iter_mut().enumerate() {
            let scfg = shard_cfg(&cfg, s, k);
            let mut best: Option<(usize, u64, u64)> = None;
            for (i, b) in bs.iter_mut().enumerate() {
                let Ok(meta) = b.connect_segment(scfg.meta_tag) else {
                    continue;
                };
                let mut commit = [0u8; 8];
                let mut epoch = [0u8; 8];
                if b.remote_read(meta.id, OFF_COMMIT, &mut commit).is_err()
                    || b.remote_read(meta.id, OFF_EPOCH, &mut epoch).is_err()
                {
                    continue;
                }
                let epoch = u64::from_le_bytes(epoch);
                if epoch < scfg.min_epoch {
                    continue;
                }
                let committed = u64::from_le_bytes(commit);
                let rank = (epoch, committed, std::cmp::Reverse(i));
                if best.is_none_or(|(bi, be, bc)| rank > (be, bc, std::cmp::Reverse(bi))) {
                    best = Some((i, epoch, committed));
                }
            }
            let Some((bi, _, _)) = best else {
                return Err(TxnError::Unavailable(format!(
                    "shard {s}: no mirror holds recoverable PERSEAS metadata at an admissible epoch"
                )));
            };
            let b = &mut bs[bi];
            let meta = b.connect_segment(scfg.meta_tag).map_err(unavailable)?;
            let mut image = vec![0u8; meta.len];
            b.remote_read(meta.id, 0, &mut image).map_err(unavailable)?;
            let header = MetaHeader::decode(&image).map_err(TxnError::Unavailable)?;
            if header.flags & FLAG_SHARDED == 0
                || header.shard_index as usize != s
                || header.shard_count as usize != k
            {
                return Err(TxnError::Unavailable(format!(
                    "shard {s}: image is shard {}/{} (flags {:#x}), not shard {s} of {k}",
                    header.shard_index, header.shard_count, header.flags
                )));
            }
            peeks.push(Peek {
                best: bi,
                meta_id: meta.id,
                image,
                header,
            });
        }

        // 2. The decision tables — the committed set of cross-shard
        // transactions, keyed by home shard.
        let decisions: Vec<HashSet<u64>> = peeks
            .iter()
            .map(|p| {
                decode_decision_table(
                    &p.image,
                    p.header.commit_slots as usize,
                    p.header.decision_slots as usize,
                )
                .into_iter()
                .collect()
            })
            .collect();

        // 3. Resolve in-doubt intents before ordinary recovery, so its
        // rollback pass sees resolved-commit parts as committed.
        let mut resolved_commits = vec![0usize; k];
        let mut resolved_aborts = vec![0usize; k];
        let mut resolutions: Vec<(usize, u64, bool)> = Vec::new();
        let mut max_global = 0u64;
        for s in 0..k {
            let p = &peeks[s];
            let cs = p.header.commit_slots as usize;
            let watermark = p.header.last_committed;
            let mut table = decode_commit_table(&p.image, cs);
            let intents = decode_intent_table(
                &p.image,
                cs,
                p.header.intent_slots as usize,
                p.header.decision_slots as usize,
            );
            for &(_, _, global, _) in &intents {
                max_global = max_global.max(global);
            }
            for &d in &decisions[s] {
                max_global = max_global.max(d);
            }
            if intents.is_empty() {
                continue;
            }
            // Which local ids actually hold live prepared records? A stale
            // intent whose transaction aborted (tombstoned records) or
            // committed before the crash must not be re-resolved.
            let backend = &mut backends[s].0[p.best];
            let in_doubt: HashSet<u64> = if p.header.flags & crate::layout::FLAG_REDO != 0 {
                // Redo shards: an intent is live while the log suffix
                // still holds un-tombstoned records for the id.
                crate::redo::redo_uncommitted_ids(backend, &p.image, &p.header, &table)?
                    .into_iter()
                    .collect()
            } else {
                let undo_id = SegmentId::from_raw(p.header.undo_seg_id);
                let mut undo = vec![0u8; p.header.undo_seg_len as usize];
                backend
                    .remote_read(undo_id, 0, &mut undo)
                    .map_err(unavailable)?;
                let region_lens: Vec<usize> = (0..p.header.region_count as usize)
                    .map(|i| {
                        decode_region_entry(&p.image, i)
                            .map(|(_, len)| len as usize)
                            .map_err(TxnError::Unavailable)
                    })
                    .collect::<Result<_, _>>()?;
                crate::recovery::scan_uncommitted_concurrent(
                    &undo,
                    watermark,
                    &table,
                    &region_lens,
                )
                .iter()
                .map(|(rec, _)| rec.txn_id)
                .collect()
            };
            for (_, local, global, home) in intents {
                if local <= watermark || table.contains(&local) || !in_doubt.contains(&local) {
                    continue;
                }
                let committed = (home as usize) < k && decisions[home as usize].contains(&global);
                if committed {
                    let free = (0..cs).position(|i| table[i] <= watermark).ok_or_else(|| {
                        TxnError::Unavailable(format!("shard {s}: commit table is full"))
                    })?;
                    let off = commit_table_offset(p.image.len(), cs) + free * 8;
                    backend
                        .remote_write(p.meta_id, off, &local.to_le_bytes())
                        .map_err(unavailable)?;
                    backend.flush().map_err(unavailable)?;
                    table[free] = local;
                    resolved_commits[s] += 1;
                } else {
                    resolved_aborts[s] += 1;
                }
                resolutions.push((s, global, committed));
            }
        }

        // 4. Ordinary per-shard recovery: the best image (unchanged in
        // rank by the slot writes above) is rebuilt, uncommitted parts
        // are rolled back, survivors are re-mirrored.
        let mut shards = Vec::with_capacity(k);
        let mut reports = Vec::with_capacity(k);
        for (s, (bs, clock)) in backends.into_iter().enumerate() {
            let (db, report) = Perseas::recover_best(bs, shard_cfg(&cfg, s, k), clock)?;
            shards.push(db);
            reports.push(report);
        }
        for &(s, global, committed) in &resolutions {
            shards[s].emit(TraceEvent::CrossShardResolved {
                global,
                shard: s as u16,
                committed,
            });
        }

        // 5. Every shard is consistent — retire the coordination tables
        // (intent + decision are contiguous, one write covers both).
        for db in &mut shards {
            let (cs, is, ds) = (
                db.cfg.commit_slots,
                db.cfg.intent_slots,
                db.cfg.decision_slots,
            );
            let zeros = vec![0u8; is * INTENT_SLOT_SIZE + ds * DECISION_SLOT_SIZE];
            db.coord_write(
                move |len| intent_table_offset(len, cs, is, ds),
                &zeros,
                true,
            )?;
        }

        // 6. Region routes are deterministic: allocation was round-robin,
        // so shard s must hold exactly the regions g with g % k == s.
        let counts: Vec<usize> = shards.iter().map(|d| d.regions.len()).collect();
        let total: usize = counts.iter().sum();
        for (s, &count) in counts.iter().enumerate() {
            let expected = total / k + usize::from(s < total % k);
            if count != expected {
                return Err(TxnError::Unavailable(format!(
                    "shard {s} holds {count} regions where round-robin placement \
                     of {total} over {k} shards requires {expected}"
                )));
            }
        }
        let routes = (0..total)
            .map(|g| (g % k, RegionId::from_raw((g / k) as u32)))
            .collect();

        let report = ShardRecoveryReport {
            shards: reports,
            resolved_commits,
            resolved_aborts,
        };
        Ok((Self::assemble(shards, routes, max_global + 1), report))
    }
}

/// The [`TransactionalMemory`] facade: one implicit cross-shard
/// transaction at a time, so the store containers (tables, ring logs)
/// span shards without knowing they exist.
impl<M: RemoteMemory> TransactionalMemory for ShardedPerseas<M> {
    fn system_name(&self) -> &'static str {
        "perseas-sharded"
    }

    fn alloc_region(&mut self, len: usize) -> Result<RegionId, TxnError> {
        self.malloc(len)
    }

    fn publish(&mut self) -> Result<(), TxnError> {
        self.init_remote_db()
    }

    fn begin_transaction(&mut self) -> Result<(), TxnError> {
        if self.implicit.is_some() {
            return Err(TxnError::TransactionAlreadyActive);
        }
        self.implicit = Some(self.begin_global()?);
        Ok(())
    }

    fn set_range(&mut self, region: RegionId, offset: usize, len: usize) -> Result<(), TxnError> {
        let g = self.implicit.ok_or(TxnError::NoActiveTransaction)?;
        self.set_range_g(g, region, offset, len)
    }

    fn write(&mut self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        match self.implicit {
            Some(g) => self.write_g(g, region, offset, data),
            // Outside a transaction (region initialisation before
            // publish), delegate to the owning shard's plain write.
            None => {
                let (shard, local) = self.route(region)?;
                match self.shards[shard].write(local, offset, data) {
                    Ok(()) => Ok(()),
                    Err(e) => Err(self.remap(shard, region, e)),
                }
            }
        }
    }

    fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        self.read_g(region, offset, buf)
    }

    fn commit_transaction(&mut self) -> Result<(), TxnError> {
        let g = self.implicit.take().ok_or(TxnError::NoActiveTransaction)?;
        self.commit_g(g)
    }

    fn abort_transaction(&mut self) -> Result<(), TxnError> {
        let g = self.implicit.take().ok_or(TxnError::NoActiveTransaction)?;
        self.abort_g(g)
    }

    fn in_transaction(&self) -> bool {
        self.implicit.is_some()
    }

    fn clock(&self) -> &SimClock {
        // Each shard runs on its own clock; the facade reports shard 0's
        // (the home of the first region), which bounds no cross-shard
        // total — harness code needing per-shard time uses `shard(s).clock()`.
        self.shards[0].clock()
    }

    fn stats(&self) -> TxnStats {
        let mut total = TxnStats::new();
        for s in &self.shards {
            let st = s.stats();
            total.commits += st.commits;
            total.aborts += st.aborts;
            total.set_ranges += st.set_ranges;
            total.local_copies += st.local_copies;
            total.local_copy_bytes += st.local_copy_bytes;
            total.remote_writes += st.remote_writes;
            total.remote_write_bytes += st.remote_write_bytes;
            total.disk_sync_writes += st.disk_sync_writes;
            total.disk_async_writes += st.disk_async_writes;
            total.disk_write_bytes += st.disk_write_bytes;
            total.conflicts += st.conflicts;
            total.group_commits += st.group_commits;
        }
        total
    }

    fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        ShardedPerseas::region_len(self, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perseas_rnram::SimRemote;

    fn sharded(k: usize, mirrors: usize) -> ShardedPerseas<SimRemote> {
        let backends = (0..k)
            .map(|s| {
                (0..mirrors)
                    .map(|m| SimRemote::new(format!("s{s}m{m}")))
                    .collect()
            })
            .collect();
        ShardedPerseas::init(backends, PerseasConfig::default()).unwrap()
    }

    fn backends_of(k: usize, mirrors: usize) -> Vec<Vec<SimRemote>> {
        (0..k)
            .map(|s| {
                (0..mirrors)
                    .map(|m| SimRemote::new(format!("s{s}m{m}")))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn regions_route_round_robin() {
        let mut db = sharded(3, 1);
        let regions: Vec<_> = (0..7).map(|_| db.malloc(32).unwrap()).collect();
        db.init_remote_db().unwrap();
        assert_eq!(db.regions(), 7);
        // Regions 0,3,6 on shard 0; 1,4 on shard 1; 2,5 on shard 2.
        assert_eq!(db.shard(0).last_committed(), 0);
        let g = db.begin_global().unwrap();
        db.set_range_g(g, regions[3], 0, 4).unwrap();
        db.write_g(g, regions[3], 0, &[9; 4]).unwrap();
        db.commit_g(g).unwrap();
        // A single-shard commit advanced only shard 0's line.
        assert_eq!(db.shard(0).last_committed(), 1);
        assert_eq!(db.shard(1).last_committed(), 0);
        assert_eq!(db.shard(2).last_committed(), 0);
        let mut buf = [0u8; 4];
        db.read_g(regions[3], 0, &mut buf).unwrap();
        assert_eq!(buf, [9; 4]);
    }

    #[test]
    fn single_shard_commit_is_coordination_free() {
        let mut db = sharded(2, 2);
        let a = db.malloc(16).unwrap(); // shard 0
        let _b = db.malloc(16).unwrap(); // shard 1
        db.init_remote_db().unwrap();
        let before = db.steps_taken(1);
        let g = db.begin_global().unwrap();
        db.set_range_g(g, a, 0, 8).unwrap();
        db.write_g(g, a, 0, &[1; 8]).unwrap();
        db.commit_g(g).unwrap();
        // Shard 1 saw zero protocol traffic.
        assert_eq!(db.steps_taken(1), before);
    }

    #[test]
    fn cross_shard_commit_is_atomic_and_visible() {
        let mut db = sharded(2, 2);
        let a = db.malloc(16).unwrap();
        let b = db.malloc(16).unwrap();
        db.init_remote_db().unwrap();
        let g = db.begin_global().unwrap();
        db.set_range_g(g, a, 0, 8).unwrap();
        db.set_range_g(g, b, 0, 8).unwrap();
        db.write_g(g, a, 0, &[3; 8]).unwrap();
        db.write_g(g, b, 0, &[4; 8]).unwrap();
        db.commit_g(g).unwrap();
        assert_eq!(db.shard(0).last_committed(), 1);
        assert_eq!(db.shard(1).last_committed(), 1);
        let (mut x, mut y) = ([0u8; 8], [0u8; 8]);
        db.read_g(a, 0, &mut x).unwrap();
        db.read_g(b, 0, &mut y).unwrap();
        assert_eq!((x, y), ([3; 8], [4; 8]));
        // The coordination slots were retired: another cross-shard commit
        // reuses slot 0 on both tables.
        let g2 = db.begin_global().unwrap();
        db.set_range_g(g2, a, 8, 8).unwrap();
        db.set_range_g(g2, b, 8, 8).unwrap();
        db.commit_g(g2).unwrap();
        assert!(db.intent_busy.iter().all(|v| v.iter().all(|b| !b)));
        assert!(db.decision_busy.iter().all(|v| v.iter().all(|b| !b)));
    }

    #[test]
    fn conflict_holders_are_reported_globally() {
        let mut db = sharded(2, 1);
        let a = db.malloc(16).unwrap();
        let _b = db.malloc(16).unwrap();
        db.init_remote_db().unwrap();
        let g1 = db.begin_global().unwrap();
        db.set_range_g(g1, a, 0, 8).unwrap();
        let g2 = db.begin_global().unwrap();
        let err = db.set_range_g(g2, a, 4, 8).unwrap_err();
        match err {
            TxnError::Conflict { region, holder, .. } => {
                assert_eq!(region, a, "global region id, not the shard-local one");
                assert_eq!(holder, g1.id(), "global transaction id");
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        db.abort_g(g2).unwrap();
        db.abort_g(g1).unwrap();
    }

    #[test]
    fn abort_rolls_back_every_part() {
        let mut db = sharded(2, 1);
        let a = db.malloc(16).unwrap();
        let b = db.malloc(16).unwrap();
        db.init_remote_db().unwrap();
        let g = db.begin_global().unwrap();
        db.set_range_g(g, a, 0, 8).unwrap();
        db.set_range_g(g, b, 0, 8).unwrap();
        db.write_g(g, a, 0, &[7; 8]).unwrap();
        db.write_g(g, b, 0, &[8; 8]).unwrap();
        db.abort_g(g).unwrap();
        let (mut x, mut y) = ([1u8; 8], [1u8; 8]);
        db.read_g(a, 0, &mut x).unwrap();
        db.read_g(b, 0, &mut y).unwrap();
        assert_eq!((x, y), ([0; 8], [0; 8]));
    }

    #[test]
    fn recover_restores_routes_and_data() {
        let backends = backends_of(3, 2);
        let mut db = ShardedPerseas::init(backends.clone(), PerseasConfig::default()).unwrap();
        let regions: Vec<_> = (0..6).map(|_| db.malloc(32).unwrap()).collect();
        db.init_remote_db().unwrap();
        for (i, &r) in regions.iter().enumerate() {
            let g = db.begin_global().unwrap();
            db.set_range_g(g, r, 0, 8).unwrap();
            db.write_g(g, r, 0, &[i as u8 + 1; 8]).unwrap();
            db.commit_g(g).unwrap();
        }
        db.crash();
        let (db2, report) = ShardedPerseas::recover(backends, PerseasConfig::default()).unwrap();
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.resolved_commits, vec![0, 0, 0]);
        assert_eq!(report.resolved_aborts, vec![0, 0, 0]);
        assert_eq!(db2.regions(), 6);
        for (i, &r) in regions.iter().enumerate() {
            let mut buf = [0u8; 8];
            db2.read_g(r, 0, &mut buf).unwrap();
            assert_eq!(buf, [i as u8 + 1; 8]);
        }
    }

    #[test]
    fn recovered_database_accepts_new_cross_shard_commits() {
        let backends = backends_of(2, 2);
        let mut db = ShardedPerseas::init(backends.clone(), PerseasConfig::default()).unwrap();
        let a = db.malloc(16).unwrap();
        let b = db.malloc(16).unwrap();
        db.init_remote_db().unwrap();
        let g = db.begin_global().unwrap();
        db.set_range_g(g, a, 0, 4).unwrap();
        db.set_range_g(g, b, 0, 4).unwrap();
        db.commit_g(g).unwrap();
        db.crash();
        let (mut db2, _) = ShardedPerseas::recover(backends, PerseasConfig::default()).unwrap();
        // Global ids continue past anything recovery may have seen.
        let g2 = db2.begin_global().unwrap();
        db2.set_range_g(g2, a, 4, 4).unwrap();
        db2.set_range_g(g2, b, 4, 4).unwrap();
        db2.write_g(g2, a, 4, &[5; 4]).unwrap();
        db2.write_g(g2, b, 4, &[6; 4]).unwrap();
        db2.commit_g(g2).unwrap();
        let mut buf = [0u8; 4];
        db2.read_g(b, 4, &mut buf).unwrap();
        assert_eq!(buf, [6; 4]);
    }

    #[test]
    fn sharded_db_is_a_transactional_memory() {
        let mut db = sharded(2, 1);
        let tm: &mut dyn TransactionalMemory = &mut db;
        let a = tm.alloc_region(16).unwrap();
        let b = tm.alloc_region(16).unwrap();
        tm.write(a, 0, &[1; 16]).unwrap();
        tm.write(b, 0, &[2; 16]).unwrap();
        tm.publish().unwrap();
        tm.begin_transaction().unwrap();
        assert!(tm.in_transaction());
        tm.set_range(a, 0, 4).unwrap();
        tm.set_range(b, 0, 4).unwrap();
        tm.write(a, 0, &[3; 4]).unwrap();
        tm.write(b, 0, &[4; 4]).unwrap();
        tm.commit_transaction().unwrap();
        let mut buf = [0u8; 4];
        tm.read(b, 0, &mut buf).unwrap();
        assert_eq!(buf, [4; 4]);
        assert_eq!(tm.system_name(), "perseas-sharded");
        assert_eq!(tm.stats().commits, 2, "one part per touched shard");
    }

    #[test]
    fn empty_and_unknown_transactions_error_cleanly() {
        let mut db = sharded(2, 1);
        let _a = db.malloc(8).unwrap();
        db.init_remote_db().unwrap();
        let g = db.begin_global().unwrap();
        db.commit_g(g).unwrap(); // zero parts: trivially committed
        assert!(matches!(db.commit_g(g), Err(TxnError::NoActiveTransaction)));
        assert!(matches!(
            db.abort_g(GlobalToken { id: 999 }),
            Err(TxnError::NoActiveTransaction)
        ));
    }
}
