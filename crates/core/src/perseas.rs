//! The PERSEAS transaction library.

use std::fmt;

use perseas_rnram::{mirror_copy, plan_transfer, RemoteMemory, RemoteSegment, RnError, SegmentId};
use perseas_simtime::SimClock;
use perseas_txn::{RegionId, SnapshotToken, TxnError, TxnStats};

use crate::conc::ConcState;
use crate::config::PerseasConfig;
use crate::fault::FaultPlan;
use crate::layout::{
    commit_table_offset, encode_region_entry, meta_segment_size, meta_segment_size_concurrent,
    MetaHeader, UndoRecord, FLAG_CONCURRENT, OFF_COMMIT, OFF_EPOCH, OFF_REGION_TABLE, OFF_UNDO,
    REGION_ENTRY_SIZE,
};
use crate::metrics::CoreMetrics;
use crate::mvcc::MvccState;
use crate::trace::{TraceEvent, Tracer};

/// Per-mirror vectored write batch: each entry pairs a mirror index with
/// the `(segment, offset, bytes)` ranges destined for that mirror.
pub(crate) type MirrorBatches = Vec<(usize, Vec<(SegmentId, usize, Vec<u8>)>)>;

/// Health of one mirror in the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorHealth {
    /// Serving: every protocol write reaches this mirror.
    Healthy,
    /// A reconnect probe got a real answer from a `Down` mirror — the
    /// node is reachable again but its image is stale; it must be
    /// resynced with [`Perseas::rejoin_mirror`] before it serves.
    Suspect,
    /// A transport-level failure condemned this mirror; it receives no
    /// writes and its (stale-epoch) image is fenced out of recovery.
    Down,
}

/// One row of [`Perseas::mirror_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorStatus {
    /// Position in the mirror set.
    pub index: usize,
    /// The backend's node name.
    pub node: String,
    /// Current health.
    pub health: MirrorHealth,
    /// Reconnect probes attempted since the mirror went `Down`.
    pub probes: u32,
}

/// Lifecycle of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Regions may be allocated and initialised; nothing is durable yet.
    Setup,
    /// Mirrored and idle; transactions may start.
    Ready,
    /// A transaction is open.
    InTxn,
    /// Killed by fault injection; only the mirrors survive.
    Crashed,
}

/// Per-mirror remote state.
pub(crate) struct MirrorState<M> {
    pub(crate) backend: M,
    pub(crate) meta: RemoteSegment,
    pub(crate) undo: RemoteSegment,
    pub(crate) db: Vec<RemoteSegment>,
    /// Redo-log segments by directory slot (empty unless `cfg.redo`).
    pub(crate) redo: Vec<Option<RemoteSegment>>,
    /// Log position this mirror's db-segment image covers (redo mode):
    /// recovery from this mirror replays `(redo_snap, tail]` only.
    pub(crate) redo_snap: u64,
    pub(crate) health: MirrorHealth,
    /// Reconnect probes attempted while `Down` (paces the backoff).
    pub(crate) probes: u32,
    /// Segments a failed rejoin allocated but could not free (the
    /// transport died under the frees too). Reclaimed by the next rejoin
    /// attempt; never part of a published image.
    pub(crate) orphans: Vec<SegmentId>,
}

impl<M> MirrorState<M> {
    pub(crate) fn new(backend: M, meta: RemoteSegment, undo: RemoteSegment) -> Self {
        MirrorState {
            backend,
            meta,
            undo,
            db: Vec::new(),
            redo: Vec::new(),
            redo_snap: 0,
            health: MirrorHealth::Healthy,
            probes: 0,
            orphans: Vec::new(),
        }
    }

    pub(crate) fn is_healthy(&self) -> bool {
        self.health == MirrorHealth::Healthy
    }
}

/// One logged before-image of the open transaction (an offset into the
/// undo shadow where the record starts).
pub(crate) struct RecordRef {
    pub(crate) shadow_off: usize,
}

/// State of the open transaction.
pub(crate) struct ActiveTxn {
    pub(crate) id: u64,
    /// Declared writable ranges: `(region index, start, len)`.
    pub(crate) declared: Vec<(usize, usize, usize)>,
    pub(crate) records: Vec<RecordRef>,
    /// `true` once a commit attempt has started pushing data ranges to
    /// the mirrors: an abort after a failed commit must then restore the
    /// mirrored images too, not just the local one.
    pub(crate) mirrors_dirty: bool,
}

/// The PERSEAS recoverable main-memory database.
///
/// Generic over the reliable-network-RAM backend `M`: use
/// [`perseas_rnram::SimRemote`] to reproduce the paper's virtual-time
/// experiments and [`perseas_rnram::TcpRemote`] for a real two-process
/// deployment. See the [crate docs](crate) for the full protocol.
pub struct Perseas<M: RemoteMemory> {
    pub(crate) cfg: PerseasConfig,
    pub(crate) clock: SimClock,
    pub(crate) mirrors: Vec<MirrorState<M>>,
    /// Local images of the database regions.
    pub(crate) regions: Vec<Vec<u8>>,
    /// Local undo log — a byte-exact shadow of the mirrored undo segment.
    pub(crate) undo_shadow: Vec<u8>,
    pub(crate) undo_off: usize,
    pub(crate) phase: Phase,
    pub(crate) txn: Option<ActiveTxn>,
    /// Mirror-set epoch: bumped on every membership change and written
    /// to every healthy mirror before the change takes effect.
    pub(crate) epoch: u64,
    pub(crate) last_committed: u64,
    pub(crate) next_txn_id: u64,
    pub(crate) stats: TxnStats,
    pub(crate) fault: FaultPlan,
    pub(crate) tracer: Option<Box<dyn Tracer>>,
    pub(crate) metrics: Option<CoreMetrics>,
    /// State of the concurrent engine (unused unless `cfg.concurrent`).
    pub(crate) conc: ConcState,
    /// The version store behind snapshot reads (empty unless `cfg.mvcc`).
    pub(crate) mvcc: MvccState,
    /// State of the segmented redo log (unused unless `cfg.redo`).
    pub(crate) redo: crate::redo::RedoState,
}

impl<M: RemoteMemory> Perseas<M> {
    /// `PERSEAS_init`: creates an instance mirroring into `mirrors`,
    /// allocating the remote metadata and undo segments on each.
    ///
    /// A fresh virtual clock is created; use [`Perseas::init_with_clock`]
    /// to share a clock with simulated mirrors (required for meaningful
    /// virtual-time measurements).
    ///
    /// # Errors
    ///
    /// Fails if `mirrors` is empty or a mirror cannot allocate segments.
    pub fn init(mirrors: Vec<M>, cfg: PerseasConfig) -> Result<Self, TxnError> {
        Perseas::init_with_clock(mirrors, cfg, SimClock::new())
    }

    /// Like [`Perseas::init`] but charging local-copy costs to `clock`.
    ///
    /// # Errors
    ///
    /// Fails if `mirrors` is empty or a mirror cannot allocate segments.
    pub fn init_with_clock(
        mirrors: Vec<M>,
        cfg: PerseasConfig,
        clock: SimClock,
    ) -> Result<Self, TxnError> {
        if mirrors.is_empty() {
            return Err(TxnError::Unavailable(
                "at least one mirror node is required".into(),
            ));
        }
        let meta_size = Perseas::<M>::meta_len_for(&cfg);
        let mut states = Vec::with_capacity(mirrors.len());
        for mut backend in mirrors {
            let meta = backend
                .remote_malloc(meta_size, cfg.meta_tag)
                .map_err(unavailable)?;
            let undo = backend
                .remote_malloc(cfg.initial_undo_capacity, 0)
                .map_err(unavailable)?;
            states.push(MirrorState::new(backend, meta, undo));
        }
        Ok(Perseas {
            clock,
            mirrors: states,
            regions: Vec::new(),
            undo_shadow: vec![0; cfg.initial_undo_capacity],
            undo_off: 0,
            phase: Phase::Setup,
            txn: None,
            epoch: 1,
            last_committed: 0,
            next_txn_id: 1,
            stats: TxnStats::new(),
            fault: FaultPlan::none(),
            tracer: None,
            metrics: None,
            conc: ConcState::new(cfg.commit_slots),
            mvcc: MvccState::new(cfg.version_bytes, cfg.version_entries),
            redo: crate::redo::RedoState::new(cfg.redo_segments),
            cfg,
        })
    }

    /// Size of the metadata segment under `cfg`: the legacy layout plus,
    /// for the concurrent engine, the trailing commit table, plus, in
    /// redo mode, the redo-log directory nested before the tables.
    pub(crate) fn meta_len_for(cfg: &PerseasConfig) -> usize {
        let base = if cfg.shard_count > 0 {
            crate::layout::meta_segment_size_sharded(
                cfg.max_regions,
                cfg.commit_slots,
                cfg.intent_slots,
                cfg.decision_slots,
            )
        } else if cfg.concurrent {
            meta_segment_size_concurrent(cfg.max_regions, cfg.commit_slots)
        } else {
            meta_segment_size(cfg.max_regions)
        };
        if cfg.redo {
            base + crate::layout::redo_dir_size(cfg.redo_segments)
        } else {
            base
        }
    }

    /// `PERSEAS_malloc`: allocates a zero-filled database region of `len`
    /// bytes locally *and* its mirror segment on every remote node.
    ///
    /// Only legal before [`Perseas::init_remote_db`].
    ///
    /// # Errors
    ///
    /// Fails after publication, past `max_regions`, or if a mirror is out
    /// of memory.
    pub fn malloc(&mut self, len: usize) -> Result<RegionId, TxnError> {
        self.ensure_phase(Phase::Setup)?;
        if self.regions.len() >= self.cfg.max_regions {
            return Err(TxnError::Unavailable(format!(
                "region table full ({} regions)",
                self.cfg.max_regions
            )));
        }
        for m in &mut self.mirrors {
            let seg = m.backend.remote_malloc(len, 0).map_err(unavailable)?;
            m.db.push(seg);
        }
        self.regions.push(vec![0; len]);
        Ok(RegionId::from_raw(self.regions.len() as u32 - 1))
    }

    /// `PERSEAS_init_remote_db`: copies every region to every mirror and
    /// publishes the metadata (region table + undo indirection + commit
    /// record 0). After this the database is fully mirrored and
    /// transactions may start.
    ///
    /// # Errors
    ///
    /// Fails if called twice, inside a transaction, or if a mirror is
    /// unreachable.
    pub fn init_remote_db(&mut self) -> Result<(), TxnError> {
        self.ensure_phase(Phase::Setup)?;
        let meta_image = self.build_meta_image();
        for (mi, image) in meta_image.iter().enumerate() {
            for ri in 0..self.regions.len() {
                let m = &mut self.mirrors[mi];
                let seg = m.db[ri];
                if !self.regions[ri].is_empty() {
                    push_range(
                        &mut m.backend,
                        seg,
                        &self.regions[ri],
                        0,
                        self.regions[ri].len(),
                        self.cfg.aligned_memcpy,
                    )
                    .map_err(unavailable)?;
                    self.stats.add_remote_write(self.regions[ri].len());
                }
            }
            let m = &mut self.mirrors[mi];
            m.backend
                .remote_write(m.meta.id, 0, image)
                // Everything streamed to this mirror — regions and the
                // metadata image — must be confirmed before the database
                // is published as mirrored.
                .and_then(|()| m.backend.flush().map(|_| ()))
                .map_err(unavailable)?;
            self.stats.add_remote_write(image.len());
        }
        self.phase = Phase::Ready;
        Ok(())
    }

    /// `PERSEAS_begin_transaction`.
    ///
    /// # Errors
    ///
    /// Fails inside a transaction, before publication, after a crash, or
    /// `Unavailable` while fewer than `commit_quorum` mirrors are
    /// healthy: a set that degraded below quorum keeps refusing new
    /// transactions until mirrors rejoin, not just the operation that
    /// watched a mirror die.
    pub fn begin_transaction(&mut self) -> Result<(), TxnError> {
        if self.cfg.concurrent {
            // Legacy facade over the concurrent engine: one implicit token.
            if self.conc.legacy_token.is_some() {
                return Err(TxnError::TransactionAlreadyActive);
            }
            let token = self.begin_concurrent()?;
            self.conc.legacy_token = Some(token.id());
            return Ok(());
        }
        if self.phase == Phase::InTxn {
            return Err(TxnError::TransactionAlreadyActive);
        }
        self.ensure_phase(Phase::Ready)?;
        self.check_commit_quorum()?;
        self.txn = Some(ActiveTxn {
            id: self.next_txn_id,
            declared: Vec::new(),
            records: Vec::new(),
            mirrors_dirty: false,
        });
        self.next_txn_id += 1;
        self.undo_off = 0;
        self.phase = Phase::InTxn;
        self.emit(TraceEvent::TxnBegin {
            id: self.next_txn_id - 1,
        });
        Ok(())
    }

    /// `PERSEAS_set_range`: declares that the open transaction may modify
    /// `[offset, offset+len)` of `region`. The before-image is copied to
    /// the local undo log and appended (one remote write per mirror) to
    /// the mirrored undo log.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction, on bad regions/bounds, or if a mirror
    /// is unreachable.
    pub fn set_range(
        &mut self,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> Result<(), TxnError> {
        if self.cfg.concurrent {
            let t = self.legacy_conc_token()?;
            return self.set_range_t(t, region, offset, len);
        }
        self.ensure_phase(Phase::InTxn)?;
        let ri = self.check_region_range(region, offset, len)?;
        if len == 0 {
            return Ok(());
        }

        let txn_id = self.txn.as_ref().expect("in txn").id;
        let rec = UndoRecord {
            txn_id,
            region: ri as u32,
            offset: offset as u64,
            len: len as u64,
        };
        let total = rec.encoded_len();
        if self.undo_off + total > self.undo_shadow.len() {
            self.grow_undo(self.undo_off + total)?;
        }

        // Copy the before-image into the local undo log (copy 1 of the
        // paper's Figure 3).
        let shadow_off = self.undo_off;
        let payload = self.regions[ri][offset..offset + len].to_vec();
        rec.encode_into(&mut self.undo_shadow, shadow_off, &payload);
        self.cfg.mem_cost.charge_memcpy(&self.clock, total);
        self.stats.add_local_copy(len);

        // Push it to the mirrored undo log (copy 2: the remote write). On
        // the batched path this push is deferred: commit sends the whole
        // undo prefix as one vectored write per mirror, which is safe
        // because the mirror's undo log is only consulted by recovery
        // after the data-propagation phase has begun. In redo mode the
        // mirrors never see undo bytes at all — that is the point of the
        // design — the before-image stays local for abort and snapshot
        // reads only.
        if !self.cfg.batched_commit && !self.cfg.redo {
            let mut any_failed = false;
            for mi in 0..self.mirrors.len() {
                if !self.mirrors[mi].is_healthy() {
                    continue;
                }
                self.fault_step()?;
                let m = &mut self.mirrors[mi];
                let undo = m.undo;
                match push_range(
                    &mut m.backend,
                    undo,
                    &self.undo_shadow,
                    shadow_off,
                    total,
                    self.cfg.aligned_memcpy,
                ) {
                    Ok(()) => self.stats.add_remote_write(total),
                    Err(e) if e.is_unavailable() => {
                        self.mark_down(mi, &e);
                        any_failed = true;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
            }
            self.fence_failed(any_failed)?;
        }

        self.undo_off += total;
        let txn = self.txn.as_mut().expect("in txn");
        txn.declared.push((ri, offset, len));
        txn.records.push(RecordRef { shadow_off });
        self.stats.set_ranges += 1;
        self.emit(TraceEvent::SetRange {
            id: txn_id,
            region: ri as u32,
            offset,
            len,
        });
        Ok(())
    }

    /// Declares several ranges in one protocol step: all before-images
    /// are appended to the undo log as consecutive records and pushed
    /// with a **single** remote write per mirror, instead of one write
    /// per range. Semantically identical to calling
    /// [`Perseas::set_range`] for each element; measurably cheaper for
    /// multi-range transactions like debit-credit (see the
    /// `ablation-batch` experiment).
    ///
    /// # Errors
    ///
    /// Fails like [`Perseas::set_range`]; on error, no range of the batch
    /// is declared.
    pub fn set_ranges(&mut self, ranges: &[(RegionId, usize, usize)]) -> Result<(), TxnError> {
        if self.cfg.concurrent {
            let t = self.legacy_conc_token()?;
            return self.set_ranges_t(t, ranges);
        }
        self.ensure_phase(Phase::InTxn)?;
        // Validate everything first: all-or-nothing declaration.
        let mut checked = Vec::with_capacity(ranges.len());
        let mut payload_total = 0usize;
        for &(region, offset, len) in ranges {
            let ri = self.check_region_range(region, offset, len)?;
            if len > 0 {
                checked.push((ri, offset, len));
                payload_total += UndoRecord {
                    txn_id: 0,
                    region: 0,
                    offset: 0,
                    len: len as u64,
                }
                .encoded_len();
            }
        }
        if checked.is_empty() {
            return Ok(());
        }
        let txn_id = self.txn.as_ref().expect("in txn").id;
        if self.undo_off + payload_total > self.undo_shadow.len() {
            self.grow_undo(self.undo_off + payload_total)?;
        }

        // Encode all records back to back (one local copy each).
        let start = self.undo_off;
        let mut at = start;
        let mut refs = Vec::with_capacity(checked.len());
        for &(ri, offset, len) in &checked {
            let rec = UndoRecord {
                txn_id,
                region: ri as u32,
                offset: offset as u64,
                len: len as u64,
            };
            let payload = self.regions[ri][offset..offset + len].to_vec();
            rec.encode_into(&mut self.undo_shadow, at, &payload);
            self.cfg
                .mem_cost
                .charge_memcpy(&self.clock, rec.encoded_len());
            self.stats.add_local_copy(len);
            refs.push(RecordRef { shadow_off: at });
            at += rec.encoded_len();
        }

        // One remote burst per mirror for the whole batch (deferred to
        // commit entirely on the batched path, never sent in redo mode,
        // as in `set_range`).
        if !self.cfg.batched_commit && !self.cfg.redo {
            let mut any_failed = false;
            for mi in 0..self.mirrors.len() {
                if !self.mirrors[mi].is_healthy() {
                    continue;
                }
                self.fault_step()?;
                let m = &mut self.mirrors[mi];
                let undo = m.undo;
                match push_range(
                    &mut m.backend,
                    undo,
                    &self.undo_shadow,
                    start,
                    at - start,
                    self.cfg.aligned_memcpy,
                ) {
                    Ok(()) => self.stats.add_remote_write(at - start),
                    Err(e) if e.is_unavailable() => {
                        self.mark_down(mi, &e);
                        any_failed = true;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
            }
            self.fence_failed(any_failed)?;
        }

        self.undo_off = at;
        let txn = self.txn.as_mut().expect("in txn");
        for (i, &(ri, offset, len)) in checked.iter().enumerate() {
            txn.declared.push((ri, offset, len));
            txn.records.push(RecordRef {
                shadow_off: refs[i].shadow_off,
            });
            self.stats.set_ranges += 1;
        }
        for &(ri, offset, len) in &checked {
            self.emit(TraceEvent::SetRange {
                id: txn_id,
                region: ri as u32,
                offset,
                len,
            });
        }
        Ok(())
    }

    /// Writes `data` at `offset` of `region`.
    ///
    /// During setup this initialises the local image. Inside a transaction
    /// the range must be covered by prior [`Perseas::set_range`] calls —
    /// otherwise an abort could not restore it.
    ///
    /// # Errors
    ///
    /// Fails on bounds violations, undeclared transactional writes, or
    /// when idle after publication.
    pub fn write(&mut self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        if self.cfg.concurrent && self.phase != Phase::Setup {
            let t = self.legacy_conc_token()?;
            return self.write_t(t, region, offset, data);
        }
        let ri = self.check_region_range(region, offset, data.len())?;
        match self.phase {
            Phase::Setup => {}
            Phase::InTxn => {
                let txn = self.txn.as_ref().expect("in txn");
                if let Some(bad) = first_uncovered(&txn.declared, ri, offset, data.len()) {
                    return Err(TxnError::RangeNotDeclared {
                        region,
                        offset: bad,
                    });
                }
            }
            Phase::Ready => return Err(TxnError::NoActiveTransaction),
            Phase::Crashed => return Err(TxnError::Crashed),
        }
        self.regions[ri][offset..offset + data.len()].copy_from_slice(data);
        self.cfg.mem_cost.charge_memcpy(&self.clock, data.len());
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset` of `region` from the local
    /// image.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions, bounds violations, or after a crash.
    pub fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        if self.phase == Phase::Crashed {
            return Err(TxnError::Crashed);
        }
        let ri = self.check_region_range(region, offset, buf.len())?;
        buf.copy_from_slice(&self.regions[ri][offset..offset + buf.len()]);
        self.cfg.mem_cost.charge_memcpy(&self.clock, buf.len());
        Ok(())
    }

    /// Opens a read snapshot pinned at the current commit watermark.
    /// Snapshot reads ([`Perseas::read_s`]) resolve against the version
    /// store at that watermark, take no conflict-table claims, and can
    /// never fail with [`TxnError::Conflict`] or
    /// [`TxnError::SnapshotContention`]. Close with
    /// [`Perseas::end_snapshot`] so the store can evict past the pin.
    ///
    /// # Errors
    ///
    /// Fails after a crash, or with [`TxnError::Unavailable`] when the
    /// version store is disabled (see [`PerseasConfig::with_mvcc`]).
    pub fn begin_snapshot(&mut self) -> Result<SnapshotToken, TxnError> {
        if self.phase == Phase::Crashed {
            return Err(TxnError::Crashed);
        }
        if !self.cfg.mvcc {
            return Err(TxnError::Unavailable(
                "MVCC version store is disabled; enable with PerseasConfig::with_mvcc".into(),
            ));
        }
        let token = self.mvcc.begin();
        self.emit(TraceEvent::SnapshotBegin {
            id: token.id(),
            read_seq: token.read_seq(),
            open: self.mvcc.open_count(),
        });
        Ok(token)
    }

    /// Reads `buf.len()` bytes at `offset` of `region` as of the
    /// snapshot's pinned commit watermark: the live bytes are copied,
    /// uncommitted writes of open transactions are masked with their
    /// logged before-images, and commits newer than the pin are unwound
    /// from the version store.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions, bounds violations, after a crash, and
    /// with [`TxnError::SnapshotTooOld`] when the snapshot's versions
    /// were evicted. Never blocks on or conflicts with writers.
    pub fn read_s(
        &self,
        snap: SnapshotToken,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), TxnError> {
        if self.phase == Phase::Crashed {
            return Err(TxnError::Crashed);
        }
        let read_seq = match self.mvcc.validate(snap) {
            Ok(seq) => seq,
            Err(e) => {
                if let TxnError::SnapshotTooOld {
                    read_seq,
                    floor_seq,
                } = e
                {
                    self.observe_metrics(&TraceEvent::SnapshotTooOld {
                        id: snap.id(),
                        read_seq,
                        floor_seq,
                    });
                }
                return Err(e);
            }
        };
        let ri = self.check_region_range(region, offset, buf.len())?;
        buf.copy_from_slice(&self.regions[ri][offset..offset + buf.len()]);
        // Mask uncommitted writes: open transactions modify the local
        // image in place, so their logged before-images are overlaid to
        // recover the committed-current bytes first.
        self.overlay_open_txns(ri, offset, buf);
        // Then unwind every commit newer than the snapshot's pin.
        self.mvcc.overlay(read_seq, ri, offset, buf);
        self.cfg.mem_cost.charge_memcpy(&self.clock, buf.len());
        Ok(())
    }

    /// [`Perseas::read_s`] into a freshly allocated buffer.
    ///
    /// # Errors
    ///
    /// As [`Perseas::read_s`].
    pub fn read_range_s(
        &self,
        snap: SnapshotToken,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, TxnError> {
        let mut buf = vec![0u8; len];
        self.read_s(snap, region, offset, &mut buf)?;
        Ok(buf)
    }

    /// Closes a snapshot so the version store can evict past its pin.
    /// Closing an unknown or already-closed token is a no-op.
    pub fn end_snapshot(&mut self, snap: SnapshotToken) {
        let evicted = self.mvcc.end(snap);
        let open = self.mvcc.open_count();
        self.emit(TraceEvent::SnapshotEnd {
            id: snap.id(),
            open,
        });
        self.emit_eviction(evicted);
    }

    /// Number of snapshots currently open.
    pub fn open_snapshot_count(&self) -> usize {
        self.mvcc.open_count()
    }

    /// Bytes currently retained by the version store.
    pub fn version_store_bytes(&self) -> usize {
        self.mvcc.version_bytes()
    }

    /// Retains a committed transaction's before-images in the version
    /// store and emits the capture/eviction telemetry. Charges nothing to
    /// the virtual clock, so enabling MVCC never perturbs sim-mode
    /// measurements.
    pub(crate) fn capture_version(&mut self, txn_id: u64, records: Vec<(usize, usize, Vec<u8>)>) {
        let (seq, evicted) = self.mvcc.capture(records);
        self.emit(TraceEvent::VersionCaptured {
            seq,
            txn: txn_id,
            bytes: self.mvcc.version_bytes(),
            versions: self.mvcc.version_count(),
        });
        self.emit_eviction(evicted);
    }

    pub(crate) fn emit_eviction(&mut self, evicted: crate::mvcc::Evicted) {
        if evicted.versions > 0 {
            self.emit(TraceEvent::VersionEvicted {
                versions: evicted.versions,
                bytes: evicted.bytes,
                floor_seq: self.mvcc.floor(),
                store_bytes: self.mvcc.version_bytes(),
            });
        }
    }

    /// Overlays onto `buf` (live bytes of region `ri` from `offset`) the
    /// logged before-images of every open transaction — legacy or
    /// concurrent — masking their uncommitted in-place writes. Claims of
    /// distinct open transactions never overlap; within one transaction
    /// records apply in reverse log order, matching the abort path.
    fn overlay_open_txns(&self, ri: usize, offset: usize, buf: &mut [u8]) {
        if let Some(txn) = self.txn.as_ref() {
            for rec in txn.records.iter().rev() {
                let (urec, payload) = UndoRecord::decode_at(&self.undo_shadow, rec.shadow_off)
                    .expect("local undo log is never torn");
                if urec.region as usize == ri {
                    overlay_bytes(
                        buf,
                        offset,
                        urec.offset as usize,
                        &self.undo_shadow[payload],
                    );
                }
            }
        }
        for txn in self.conc.txns.values() {
            let mut recs = Vec::new();
            let mut off = 0;
            while off < txn.undo.len() {
                let (rec, payload) =
                    UndoRecord::decode_at(&txn.undo, off).expect("local undo log is never torn");
                off += rec.encoded_len();
                recs.push((rec, payload));
            }
            for (rec, payload) in recs.iter().rev() {
                if rec.region as usize == ri {
                    overlay_bytes(buf, offset, rec.offset as usize, &txn.undo[payload.clone()]);
                }
            }
        }
    }

    /// Forwards an event to the metrics sink only (used on `&self` read
    /// paths where the tracer, which needs `&mut`, cannot run).
    pub(crate) fn observe_metrics(&self, event: &TraceEvent) {
        if let Some(m) = self.metrics.as_ref() {
            m.observe(event);
        }
    }

    /// `PERSEAS_commit_transaction`: copies every declared range to the
    /// mirrored database (copy 3 of Figure 3) and publishes the
    /// packet-atomic commit record. No disk, no fsync.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction, or `Unavailable` when fewer than
    /// `commit_quorum` mirrors are healthy — checked before any remote
    /// work, so a set already degraded below quorum refuses every
    /// commit, not only the one that watched a mirror die. An error
    /// raised *before* the durability point leaves the transaction open
    /// and not durable anywhere: the caller may [`abort_transaction`]
    /// (which also restores any mirror bytes the failed attempt
    /// propagated) or retry the commit. A quorum failure *at* the
    /// durability point is reported as [`TxnError::CommitInDoubt`]: the
    /// record already reached every surviving mirror, so the
    /// transaction is completed locally and must not be retried.
    ///
    /// [`abort_transaction`]: Perseas::abort_transaction
    pub fn commit_transaction(&mut self) -> Result<(), TxnError> {
        if self.cfg.concurrent {
            let t = self.legacy_conc_token()?;
            self.conc.legacy_token = None;
            let r = self.commit_group(&[t]);
            if self.conc.txns.contains_key(&t.id()) {
                // Pre-durability failure left the transaction open: keep
                // the legacy slot bound so the caller can abort or retry.
                self.conc.legacy_token = Some(t.id());
            }
            return r;
        }
        self.ensure_phase(Phase::InTxn)?;
        self.check_commit_quorum()?;
        // Commit-latency timing exists only with metrics installed: the
        // virtual clock is read, never advanced, and the wall clock is
        // not consulted at all on the metrics-off path.
        let timer = self
            .metrics
            .as_ref()
            .map(|_| (self.clock.now(), std::time::Instant::now()));
        let mut txn = self.txn.take().expect("in txn");
        let ranges = coalesce(&txn.declared);

        let mut in_doubt = None;
        if !txn.records.is_empty() {
            let result = if self.cfg.redo {
                self.commit_redo(&mut txn, &ranges)
            } else if self.cfg.batched_commit {
                self.commit_batched(&mut txn, &ranges)
            } else {
                self.commit_unbatched(&mut txn, &ranges)
            };
            match result {
                Ok(()) => {}
                // A failure at the durability point: the record already
                // rests on every surviving mirror (each would replay the
                // transaction as committed), so finish the commit and
                // report the under-replication after the fact.
                Err(e @ TxnError::CommitInDoubt { .. }) => in_doubt = Some(e),
                Err(e) => {
                    // Nothing durable was published. Keep the transaction
                    // open so the caller can abort or retry instead of
                    // wedging the instance; a crash already cleared it.
                    if self.phase == Phase::InTxn {
                        self.txn = Some(txn);
                    }
                    return Err(e);
                }
            }
            self.last_committed = txn.id;
            if self.cfg.mvcc {
                let records = txn
                    .records
                    .iter()
                    .map(|rec| {
                        let (urec, payload) =
                            UndoRecord::decode_at(&self.undo_shadow, rec.shadow_off)
                                .expect("local undo log is never torn");
                        (
                            urec.region as usize,
                            urec.offset as usize,
                            self.undo_shadow[payload].to_vec(),
                        )
                    })
                    .collect();
                self.capture_version(txn.id, records);
            }
            let bytes = ranges.iter().map(|&(_, _, l)| l).sum();
            self.emit(TraceEvent::TxnCommitted {
                id: txn.id,
                ranges: ranges.len(),
                bytes,
            });
        } else {
            self.emit(TraceEvent::TxnCommitted {
                id: txn.id,
                ranges: 0,
                bytes: 0,
            });
        }

        let (healthy, total) = (self.healthy_mirror_count(), self.mirrors.len());
        if healthy < total {
            self.emit(TraceEvent::DegradedCommit {
                id: txn.id,
                healthy,
                mirrors: total,
            });
        }
        self.phase = Phase::Ready;
        self.stats.commits += 1;
        if let (Some(m), Some((sim0, wall0))) = (self.metrics.as_ref(), timer) {
            m.record_commit(self.clock.now().duration_since(sim0), wall0.elapsed());
        }
        match in_doubt {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The paper's per-range commit path: propagate every coalesced
    /// range to every healthy mirror, then publish the commit record.
    fn commit_unbatched(
        &mut self,
        txn: &mut ActiveTxn,
        ranges: &[(usize, usize, usize)],
    ) -> Result<(), TxnError> {
        // Propagate coalesced modified ranges to every healthy mirror; a
        // mirror failing mid-propagation is fenced and the commit
        // continues degraded.
        txn.mirrors_dirty = true;
        for &(ri, start, len) in ranges {
            let mut any_failed = false;
            for mi in 0..self.mirrors.len() {
                if !self.mirrors[mi].is_healthy() {
                    continue;
                }
                self.fault_step()?;
                let m = &mut self.mirrors[mi];
                let seg = m.db[ri];
                match push_range(
                    &mut m.backend,
                    seg,
                    &self.regions[ri],
                    start,
                    len,
                    self.cfg.aligned_memcpy,
                ) {
                    Ok(()) => self.stats.add_remote_write(len),
                    Err(e) if e.is_unavailable() => {
                        self.mark_down(mi, &e);
                        any_failed = true;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
            }
            self.fence_failed(any_failed)?;
        }
        // Ack barrier: every posted undo and data write must be confirmed
        // before the commit record can be published — per-connection FIFO
        // already guarantees the mirror *applies* them first, but the
        // record must not claim durability for writes the mirror never
        // received.
        self.flush_mirrors()?;
        // Durability point: one 8-byte, packet-atomic remote write per
        // surviving mirror. A mirror failing here is fenced: the
        // survivors get the new epoch before the commit is reported
        // durable, so the failed mirror (which may lack the record) can
        // never outrank them in recovery. The record write is posted too,
        // so its own barrier follows before the commit is reported.
        self.write_commit_records(txn.id)
            .and_then(|()| self.flush_mirrors())
            .map_err(|e| self.durability_in_doubt(e, txn.id))
    }

    /// Writes the commit record to every surviving mirror. The loop
    /// never stops early on a transport failure, so on return every
    /// mirror that is still `Healthy` carries the record.
    pub(crate) fn write_commit_records(&mut self, id: u64) -> Result<(), TxnError> {
        let mut any_failed = false;
        for mi in 0..self.mirrors.len() {
            if !self.mirrors[mi].is_healthy() {
                continue;
            }
            self.fault_step()?;
            let m = &mut self.mirrors[mi];
            let meta_id = m.meta.id;
            match m
                .backend
                .remote_write(meta_id, OFF_COMMIT, &id.to_le_bytes())
            {
                Ok(()) => self.stats.add_remote_write(8),
                Err(e) if e.is_unavailable() => {
                    self.mark_down(mi, &e);
                    any_failed = true;
                }
                Err(e) => return Err(unavailable(e)),
            }
        }
        self.fence_failed(any_failed)
    }

    /// `PERSEAS_abort_transaction`: restores every declared range from the
    /// **local** undo log. As the paper notes, this is just local memory
    /// copies — the mirrored undo log is simply superseded by the next
    /// transaction.
    ///
    /// The one exception is an abort after a *failed commit*: the failed
    /// attempt may already have pushed data ranges to the surviving
    /// mirrors, so the restored before-images are pushed back to every
    /// healthy mirror too — otherwise the next successful commit would
    /// bake the aborted bytes into the mirrors as committed state.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction, or on the post-failed-commit path if
    /// the mirror restoration itself drops the set below quorum. The
    /// local abort has completed by then (the instance stays usable).
    pub fn abort_transaction(&mut self) -> Result<(), TxnError> {
        if self.cfg.concurrent {
            let t = self.legacy_conc_token()?;
            self.conc.legacy_token = None;
            return self.abort_t(t);
        }
        self.ensure_phase(Phase::InTxn)?;
        let txn = self.txn.take().expect("in txn");
        // Restore in reverse, so overlapping set_ranges resolve to the
        // oldest (pre-transaction) image.
        for rec in txn.records.iter().rev() {
            let (urec, payload) = UndoRecord::decode_at(&self.undo_shadow, rec.shadow_off)
                .expect("local undo log is never torn");
            let ri = urec.region as usize;
            let off = urec.offset as usize;
            let payload = self.undo_shadow[payload].to_vec();
            self.regions[ri][off..off + payload.len()].copy_from_slice(&payload);
            self.cfg.mem_cost.charge_memcpy(&self.clock, payload.len());
            self.stats.add_local_copy(payload.len());
        }
        self.phase = Phase::Ready;
        self.stats.aborts += 1;
        self.emit(TraceEvent::TxnAborted { id: txn.id });
        if txn.mirrors_dirty {
            if self.cfg.redo {
                // The failed commit appended this transaction's
                // after-images to the log; the database segments were
                // never touched. Publish an abort tombstone so replay
                // treats the records as dead even once the watermark
                // passes the id.
                self.redo_abort_mark(txn.id)?;
            } else {
                self.restore_mirror_ranges(&coalesce(&txn.declared))?;
            }
        }
        Ok(())
    }

    /// Pushes the (already locally restored) images of `ranges` back to
    /// every healthy mirror, undoing the data propagation of a failed
    /// commit. A mirror failing the restore is fenced like any other
    /// write failure — its polluted image then carries a stale epoch.
    pub(crate) fn restore_mirror_ranges(
        &mut self,
        ranges: &[(usize, usize, usize)],
    ) -> Result<(), TxnError> {
        let mut any_failed = false;
        // Never widen under the concurrent engine: the bytes around a
        // restored range may belong to another open transaction and must
        // not reach the mirror.
        let aligned = self.cfg.aligned_memcpy && !self.cfg.concurrent;
        for &(ri, start, len) in ranges {
            for mi in 0..self.mirrors.len() {
                if !self.mirrors[mi].is_healthy() {
                    continue;
                }
                self.fault_step()?;
                let m = &mut self.mirrors[mi];
                let seg = m.db[ri];
                match push_range(&mut m.backend, seg, &self.regions[ri], start, len, aligned) {
                    Ok(()) => self.stats.add_remote_write(len),
                    Err(e) if e.is_unavailable() => {
                        self.mark_down(mi, &e);
                        any_failed = true;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
            }
        }
        self.fence_failed(any_failed)?;
        // The restores must be confirmed before the abort completes:
        // otherwise the next commit could publish its record over a
        // mirror that never applied them.
        self.flush_mirrors()
    }

    /// Simulates a crash of the primary: all local state becomes
    /// unusable; the mirrors keep their memory. Recover with
    /// [`Perseas::recover`].
    pub fn crash(&mut self) {
        self.phase = Phase::Crashed;
        self.regions.clear();
        self.undo_shadow.clear();
        self.txn = None;
        self.conc.clear();
        // The version store is volatile: every open snapshot is forgotten
        // so stale tokens fail typed instead of serving torn bytes.
        self.mvcc.clear();
        self.emit(TraceEvent::Crashed);
    }

    /// Arms crash-point fault injection (see [`FaultPlan`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Installs a [`Tracer`] receiving a [`TraceEvent`] at each protocol
    /// milestone. Without a tracer the overhead is a single branch per
    /// milestone.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Installs metrics: every protocol milestone is mirrored into
    /// counters/gauges registered in `registry` and the commit paths
    /// record latency histograms in both time bases (see
    /// `docs/OBSERVABILITY.md` for the metric-name contract). Without
    /// this call the overhead is a single branch per milestone and the
    /// virtual clock is never touched, so sim-mode measurements are
    /// byte-identical with metrics off.
    pub fn set_metrics(&mut self, registry: &perseas_obs::Registry) {
        let m = CoreMetrics::new(registry);
        let health: Vec<bool> = self.mirrors.iter().map(|s| s.is_healthy()).collect();
        m.seed(self.epoch, &health, self.undo_shadow.len());
        self.metrics = Some(m);
    }

    /// Like [`Perseas::set_metrics`], tagging every series with a shard
    /// label (used by [`crate::ShardedPerseas`]; the mirror-health gauge
    /// becomes `perseas_shard_mirror_healthy{shard,mirror}` so mirror
    /// indices from different shards never collide in one registry).
    pub(crate) fn set_metrics_tagged(&mut self, registry: &perseas_obs::Registry, shard: u16) {
        let m = CoreMetrics::new(registry).with_shard(shard);
        let health: Vec<bool> = self.mirrors.iter().map(|s| s.is_healthy()).collect();
        m.seed(self.epoch, &health, self.undo_shadow.len());
        self.metrics = Some(m);
    }

    pub(crate) fn emit(&mut self, event: TraceEvent) {
        if let Some(m) = self.metrics.as_ref() {
            m.observe(&event);
        }
        if let Some(t) = self.tracer.as_mut() {
            t.event(&event);
        }
    }

    /// Protocol steps attempted so far under the current fault plan.
    pub fn steps_taken(&self) -> u64 {
        self.fault.steps_taken()
    }

    /// The virtual clock costs are charged to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> TxnStats {
        self.stats
    }

    /// Number of mirror nodes (healthy or not).
    pub fn mirror_count(&self) -> usize {
        self.mirrors.len()
    }

    /// Number of mirrors currently `Healthy` (receiving every write).
    pub fn healthy_mirror_count(&self) -> usize {
        self.mirrors.iter().filter(|m| m.is_healthy()).count()
    }

    /// The current mirror-set epoch. Bumped on every membership change;
    /// a mirror whose metadata carries an older epoch was fenced out of
    /// the set and must not serve recovery.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Health and identity of every mirror in the set.
    pub fn mirror_status(&self) -> Vec<MirrorStatus> {
        self.mirrors
            .iter()
            .enumerate()
            .map(|(index, m)| MirrorStatus {
                index,
                node: m.backend.node_name(),
                health: m.health,
                probes: m.probes,
            })
            .collect()
    }

    /// Probes every `Down` mirror once, paced by
    /// [`PerseasConfig::probe_backoff`]: the delay for probe number *n*
    /// grows exponentially (capped, jittered) and is charged to the
    /// backend's virtual clock for simulated mirrors or slept on the
    /// wall clock for TCP. A mirror that gives any real answer — even a
    /// refusal, which proves the node is reachable — is promoted to
    /// `Suspect`; its image is still stale, so it must go through
    /// [`Perseas::rejoin_mirror`] before it serves again.
    ///
    /// Returns the indices of mirrors promoted to `Suspect` by this
    /// pass. Call periodically (e.g. from a reconnect thread) until the
    /// dead mirrors come back or are
    /// [`remove_mirror`](Perseas::remove_mirror)ed.
    pub fn probe_down_mirrors(&mut self) -> Vec<usize> {
        let mut reachable = Vec::new();
        for mi in 0..self.mirrors.len() {
            if self.mirrors[mi].health != MirrorHealth::Down {
                continue;
            }
            let delay = self.cfg.probe_backoff.delay_nanos(self.mirrors[mi].probes);
            let m = &mut self.mirrors[mi];
            if delay > 0 {
                match m.backend.virtual_clock() {
                    Some(clock) => {
                        clock.advance(perseas_simtime::SimDuration::from_nanos(delay));
                    }
                    None => std::thread::sleep(std::time::Duration::from_nanos(delay)),
                }
            }
            let meta_id = m.meta.id;
            match m.backend.segment_info(meta_id) {
                Err(e) if e.is_unavailable() => {
                    m.probes = m.probes.saturating_add(1);
                }
                _ => {
                    m.health = MirrorHealth::Suspect;
                    m.probes = 0;
                    reachable.push(mi);
                }
            }
        }
        reachable
    }

    /// Id of the last durably committed transaction (0 if none).
    pub fn last_committed(&self) -> u64 {
        self.last_committed
    }

    /// `true` while a transaction is open (for the concurrent engine:
    /// while the legacy facade's implicit token is bound; concurrently
    /// open tokens are tracked by [`Perseas::open_txn_count`]).
    pub fn in_transaction(&self) -> bool {
        self.phase == Phase::InTxn || self.conc.legacy_token.is_some()
    }

    /// `true` once the instance has crashed.
    pub fn is_crashed(&self) -> bool {
        self.phase == Phase::Crashed
    }

    /// Length of a region.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        self.regions
            .get(region.as_raw() as usize)
            .map(Vec::len)
            .ok_or(TxnError::UnknownRegion(region))
    }

    /// A copy of a region's current local image (diagnostics and tests).
    ///
    /// # Errors
    ///
    /// Fails on unknown regions or after a crash.
    pub fn region_snapshot(&self, region: RegionId) -> Result<Vec<u8>, TxnError> {
        if self.phase == Phase::Crashed {
            return Err(TxnError::Crashed);
        }
        self.regions
            .get(region.as_raw() as usize)
            .cloned()
            .ok_or(TxnError::UnknownRegion(region))
    }

    /// Adds a fresh mirror node to a running (idle) database: allocates
    /// segments on it, copies every region, and publishes metadata. This
    /// is the paper's availability story — after a mirror loss the
    /// database re-establishes redundancy on any spare workstation.
    ///
    /// # Errors
    ///
    /// Fails inside a transaction, before publication, or if the new
    /// mirror cannot hold the database.
    pub fn add_mirror(&mut self, mut backend: M) -> Result<(), TxnError> {
        self.ensure_phase(Phase::Ready)?;
        self.ensure_no_open_txns()?;
        // Membership change: the survivors move to a fresh epoch before
        // the newcomer is built, so a half-streamed newcomer can never
        // look like the newest image to a later recovery.
        self.bump_epoch()?;
        let meta_size = Perseas::<M>::meta_len_for(&self.cfg);
        let meta = backend
            .remote_malloc(meta_size, self.cfg.meta_tag)
            .map_err(unavailable)?;
        let undo = backend
            .remote_malloc(self.undo_shadow.len(), 0)
            .map_err(unavailable)?;
        let mut db = Vec::with_capacity(self.regions.len());
        for region in &self.regions {
            let seg = backend
                .remote_malloc(region.len(), 0)
                .map_err(unavailable)?;
            if !region.is_empty() {
                push_range(
                    &mut backend,
                    seg,
                    region,
                    0,
                    region.len(),
                    self.cfg.aligned_memcpy,
                )
                .map_err(unavailable)?;
                self.stats.add_remote_write(region.len());
            }
            db.push(seg);
        }
        let mut m = MirrorState::new(backend, meta, undo);
        m.db = db;
        if self.cfg.redo {
            // Fresh (zeroed) log segments for the live slots — no log
            // content is copied. The newcomer's snapshot position is the
            // current tail: the region images streamed above already
            // contain every committed write, so recovery from this
            // mirror has nothing to replay until the next commit.
            m.redo = vec![None; self.cfg.redo_segments];
            for (slot, seq) in self.redo.slot_seqs.iter().enumerate() {
                if seq.is_some() {
                    let seg = m
                        .backend
                        .remote_malloc(self.cfg.redo_segment_bytes, 0)
                        .map_err(unavailable)?;
                    m.redo[slot] = Some(seg);
                }
            }
            m.redo_snap = self.redo.tail;
        }
        let image = self.meta_image_for(&m);
        // Publish region table first, magic-bearing header last: a torn
        // publication leaves no valid magic, so recovery skips the
        // newcomer instead of trusting a half-built image. An ack
        // barrier between the two writes makes "first" real on a
        // pipelined transport, and one after the header confirms the
        // newcomer before it joins the set.
        m.backend
            .remote_write(m.meta.id, OFF_REGION_TABLE, &image[OFF_REGION_TABLE..])
            .and_then(|()| m.backend.flush().map(|_| ()))
            .map_err(unavailable)?;
        m.backend
            .remote_write(m.meta.id, 0, &image[..OFF_REGION_TABLE])
            .and_then(|()| m.backend.flush().map(|_| ()))
            .map_err(unavailable)?;
        self.stats.add_remote_write(image.len());
        if let Some(met) = self.metrics.as_ref() {
            met.resynced(self.regions.iter().map(Vec::len).sum());
        }
        self.mirrors.push(m);
        self.emit(TraceEvent::MirrorAdded {
            index: self.mirrors.len() - 1,
        });
        Ok(())
    }

    /// Resyncs a `Down` or `Suspect` mirror and promotes it back to
    /// `Healthy` at a fresh epoch, restoring full redundancy: the
    /// survivors are fenced forward first, the rejoiner's stale segments
    /// are scrubbed, the current region images, undo capacity, and
    /// metadata are streamed to it, and only then does its metadata
    /// header become valid. Byte-for-byte, the rejoined mirror ends
    /// identical to the survivors.
    ///
    /// Crash-safe at every step: until the final header write the
    /// rejoiner holds no valid metadata magic, so a crash mid-resync
    /// leaves recovery to the surviving mirrors.
    ///
    /// # Errors
    ///
    /// Fails inside a transaction, on bad indices, on already-healthy
    /// mirrors, or if the rejoiner is still unreachable (it stays
    /// `Down`).
    pub fn rejoin_mirror(&mut self, index: usize) -> Result<(), TxnError> {
        self.ensure_phase(Phase::Ready)?;
        self.ensure_no_open_txns()?;
        if index >= self.mirrors.len() {
            return Err(TxnError::Unavailable(format!("no mirror at index {index}")));
        }
        if self.mirrors[index].is_healthy() {
            return Err(TxnError::Unavailable(format!(
                "mirror {index} is healthy; nothing to rejoin"
            )));
        }
        // 1. Fence the rejoin: survivors move to a fresh epoch before the
        //    stale mirror is touched, so whatever half-state a crash
        //    leaves on it is provably old.
        self.bump_epoch()?;

        // 2. Scrub the rejoiner's stale segments. A node that lost its
        //    memory (restart) has nothing under the tag — that's fine.
        self.fault_step()?;
        {
            let m = &mut self.mirrors[index];
            if let Err(e) = Perseas::scrub_mirror(&mut m.backend, &self.cfg) {
                m.health = MirrorHealth::Down;
                return Err(e);
            }
            // Also reclaim segments a previous failed rejoin could not
            // free (its frees raced the transport failure): the scrub
            // cannot see them — no header ever pointed at them — but
            // their ids were recorded. A node that lost its memory
            // reports them unknown, which is fine.
            for id in std::mem::take(&mut m.orphans) {
                let _ = m.backend.remote_free(id);
            }
        }

        // 3. Allocate and stream: meta, undo capacity, region images. On
        //    any failure from here to the header publish, the segments
        //    allocated so far are freed again (best effort): the header
        //    never becomes valid, so a later scrub could not find them
        //    and repeated failed rejoins would otherwise leak the
        //    rejoiner's memory.
        let meta_size = Perseas::<M>::meta_len_for(&self.cfg);
        let undo_len = self.undo_shadow.len();
        self.fault_step()?;
        let alloc = {
            let m = &mut self.mirrors[index];
            m.backend
                .remote_malloc(meta_size, self.cfg.meta_tag)
                .and_then(|meta| match m.backend.remote_malloc(undo_len, 0) {
                    Ok(undo) => Ok((meta, undo)),
                    Err(e) => {
                        let _ = m.backend.remote_free(meta.id);
                        Err(e)
                    }
                })
        };
        let (meta, undo) = match alloc {
            Ok(pair) => pair,
            Err(e) => {
                if e.is_unavailable() {
                    self.mirrors[index].health = MirrorHealth::Down;
                }
                return Err(unavailable(e));
            }
        };
        self.mirrors[index].meta = meta;
        self.mirrors[index].undo = undo;
        self.mirrors[index].db.clear();
        let mut resynced = 0usize;
        for ri in 0..self.regions.len() {
            self.fault_step()?;
            let aligned = self.cfg.aligned_memcpy;
            let region_len = self.regions[ri].len();
            let m = &mut self.mirrors[index];
            // Register the segment before streaming into it, so a failed
            // stream still finds (and frees) it in `abandon_rejoin`.
            let seg = match m.backend.remote_malloc(region_len, 0) {
                Ok(seg) => seg,
                Err(e) => {
                    self.abandon_rejoin(index, &e);
                    return Err(unavailable(e));
                }
            };
            self.mirrors[index].db.push(seg);
            if region_len > 0 {
                let m = &mut self.mirrors[index];
                if let Err(e) = push_range(
                    &mut m.backend,
                    seg,
                    &self.regions[ri],
                    0,
                    region_len,
                    aligned,
                ) {
                    self.abandon_rejoin(index, &e);
                    return Err(unavailable(e));
                }
            }
            self.stats.add_remote_write(region_len);
            resynced += region_len;
        }

        // 3b. Fresh (zeroed) redo-log segments for the live slots, as in
        //     `add_mirror`: the streamed region images are current
        //     through the tail, so the rejoiner's snapshot position is
        //     the tail and its log holds only post-rejoin appends.
        if self.cfg.redo {
            self.fault_step()?;
            let slots = self.cfg.redo_segments;
            self.mirrors[index].redo = vec![None; slots];
            for slot in 0..slots {
                if self.redo.slot_seqs[slot].is_none() {
                    continue;
                }
                let m = &mut self.mirrors[index];
                match m.backend.remote_malloc(self.cfg.redo_segment_bytes, 0) {
                    Ok(seg) => m.redo[slot] = Some(seg),
                    Err(e) => {
                        self.abandon_rejoin(index, &e);
                        return Err(unavailable(e));
                    }
                }
            }
            self.mirrors[index].redo_snap = self.redo.tail;
        }

        // 4. Publish the metadata: region table first, the magic-bearing
        //    header last, so a torn publication leaves no valid image.
        //    The barrier after each part confirms the streamed regions
        //    and the table before the magic goes out, and the header
        //    itself before the promotion below.
        let image = self.meta_image_for(&self.mirrors[index]);
        for (off, part) in [
            (OFF_REGION_TABLE, &image[OFF_REGION_TABLE..]),
            (0, &image[..OFF_REGION_TABLE]),
        ] {
            self.fault_step()?;
            let m = &mut self.mirrors[index];
            let meta_id = m.meta.id;
            if let Err(e) = m
                .backend
                .remote_write(meta_id, off, part)
                .and_then(|()| m.backend.flush().map(|_| ()))
            {
                self.abandon_rejoin(index, &e);
                return Err(unavailable(e));
            }
            self.stats.add_remote_write(part.len());
        }

        // 5. Promote.
        self.mirrors[index].health = MirrorHealth::Healthy;
        self.mirrors[index].probes = 0;
        if let Some(m) = self.metrics.as_ref() {
            m.resynced(resynced);
        }
        self.emit(TraceEvent::MirrorRejoined {
            index,
            epoch: self.epoch,
        });
        Ok(())
    }

    /// The backend of mirror `index`, if it exists. Gives tests and
    /// operational tooling access to backend-specific facilities (link
    /// statistics, fault injection, the underlying node handle).
    pub fn mirror_backend(&self, index: usize) -> Option<&M> {
        self.mirrors.get(index).map(|m| &m.backend)
    }

    /// Removes mirror `index` (e.g. after it crashed and is not coming
    /// back), returning its backend. The database keeps running on the
    /// remaining mirrors, which are fenced forward to a fresh epoch.
    ///
    /// # Errors
    ///
    /// Fails if `index` is out of range, this is the last mirror, or it
    /// is the last *healthy* mirror (removing it would leave only stale
    /// images).
    pub fn remove_mirror(&mut self, index: usize) -> Result<M, TxnError> {
        self.ensure_no_open_txns()?;
        if index >= self.mirrors.len() {
            return Err(TxnError::Unavailable(format!("no mirror at index {index}")));
        }
        if self.mirrors.len() == 1 {
            return Err(TxnError::Unavailable(
                "cannot remove the last mirror".into(),
            ));
        }
        if self.mirrors[index].is_healthy() && self.healthy_mirror_count() == 1 {
            return Err(TxnError::Unavailable(
                "cannot remove the last healthy mirror".into(),
            ));
        }
        // Membership change: fence the survivors forward *before* the
        // removal takes effect, so the removed mirror's image can never
        // outrank theirs — and so a failed fence leaves the set
        // unchanged. The leaver is excluded from the epoch write (its
        // image must stay at the old, fenced-out epoch).
        let prior = self.mirrors[index].health;
        self.mirrors[index].health = MirrorHealth::Down;
        if let Err(e) = self.bump_epoch() {
            self.mirrors[index].health = prior;
            return Err(e);
        }
        let backend = self.mirrors.remove(index).backend;
        self.emit(TraceEvent::MirrorRemoved { index });
        Ok(backend)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Reclaims a failed rejoin's partial image: frees the segments
    /// allocated so far — their header was never published, so no later
    /// scrub could find them and repeated failed rejoins would leak the
    /// rejoiner's memory. Ids whose free also fails (the transport died
    /// under us) are recorded in `orphans` and reclaimed by the next
    /// rejoin attempt. Transport failures condemn the mirror again.
    fn abandon_rejoin(&mut self, index: usize, error: &RnError) {
        let m = &mut self.mirrors[index];
        let stale: Vec<SegmentId> = [m.meta.id, m.undo.id]
            .into_iter()
            .chain(std::mem::take(&mut m.db).into_iter().map(|s| s.id))
            .chain(std::mem::take(&mut m.redo).into_iter().flatten().map(|s| s.id))
            .collect();
        for id in stale {
            if m.backend.remote_free(id).is_err() {
                m.orphans.push(id);
            }
        }
        if error.is_unavailable() {
            m.health = MirrorHealth::Down;
        }
    }

    /// Condemns mirror `index` after a transport-level failure.
    pub(crate) fn mark_down(&mut self, index: usize, error: &RnError) {
        self.mirrors[index].health = MirrorHealth::Down;
        self.mirrors[index].probes = 0;
        self.emit(TraceEvent::MirrorDown {
            index,
            error: error.to_string(),
        });
    }

    /// Ack barrier across the healthy mirror set: awaits every remote
    /// write a pipelined backend has posted without waiting for its
    /// acknowledgement. Called at durability points — before a commit
    /// record is published, and after it — so the commit path can post
    /// undo and data writes to all mirrors concurrently and only pay
    /// round-trip latency here.
    ///
    /// Each backend's refusal queue is drained completely (one refusal
    /// per `flush` call, looped until clean) so a failed operation's
    /// refusals cannot leak into a later transaction's barrier; the
    /// first refusal fails this barrier. A mirror whose connection died
    /// with the window unconfirmed is condemned and fenced like any
    /// other transport failure. Inline-acknowledging backends make this
    /// a no-op: no events, no crash points, no virtual time — the
    /// simulated figures are unchanged.
    pub(crate) fn flush_mirrors(&mut self) -> Result<(), TxnError> {
        let mut any_failed = false;
        let mut posted = 0usize;
        let mut bytes = 0usize;
        let mut first_refusal: Option<RnError> = None;
        for mi in 0..self.mirrors.len() {
            if !self.mirrors[mi].is_healthy() {
                continue;
            }
            let mut down: Option<RnError> = None;
            loop {
                match self.mirrors[mi].backend.flush() {
                    Ok(stats) => {
                        posted += stats.posted;
                        bytes += stats.bytes;
                        break;
                    }
                    Err(e) if e.is_unavailable() => {
                        down = Some(e);
                        break;
                    }
                    // A typed refusal of a posted write: keep draining so
                    // later barriers start clean, report the first one.
                    Err(e) => {
                        if first_refusal.is_none() {
                            first_refusal = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = down {
                self.mark_down(mi, &e);
                any_failed = true;
            }
        }
        if posted > 0 {
            self.emit(TraceEvent::Flush { posted, bytes });
        }
        if let Some(e) = first_refusal {
            return Err(unavailable(e));
        }
        self.fence_failed(any_failed)
    }

    /// Advances the mirror-set epoch and writes it to every healthy
    /// mirror. If a survivor fails the epoch write it is condemned too
    /// and the bump restarts at a fresh epoch, so on return every
    /// healthy mirror carries the same, newest epoch.
    ///
    /// # Errors
    ///
    /// Fails only on injected crashes or non-transport refusals.
    pub(crate) fn bump_epoch(&mut self) -> Result<(), TxnError> {
        'restart: loop {
            self.epoch += 1;
            self.emit(TraceEvent::EpochBump { epoch: self.epoch });
            for mi in 0..self.mirrors.len() {
                if !self.mirrors[mi].is_healthy() {
                    continue;
                }
                self.fault_step()?;
                let m = &mut self.mirrors[mi];
                let meta_id = m.meta.id;
                // The epoch write is itself a fencing operation, so it is
                // confirmed inline (per-mirror `flush`, not the set-wide
                // barrier — `flush_mirrors` fences through *this* function
                // and must not recurse into it).
                match m
                    .backend
                    .remote_write(meta_id, OFF_EPOCH, &self.epoch.to_le_bytes())
                    .and_then(|()| m.backend.flush().map(|_| ()))
                {
                    Ok(()) => self.stats.add_remote_write(8),
                    Err(e) if e.is_unavailable() => {
                        self.mark_down(mi, &e);
                        continue 'restart;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
            }
            return Ok(());
        }
    }

    /// Completes the fencing of mirrors condemned during the current
    /// operation: bump the epoch on the survivors, then verify the
    /// healthy count still meets the commit quorum.
    ///
    /// # Errors
    ///
    /// Fails `Unavailable` when fewer than `commit_quorum` mirrors
    /// survive. What that means for the enclosing operation depends on
    /// where it happens: before the durability point the transaction is
    /// not durable anywhere; at the durability point the caller maps the
    /// error to [`TxnError::CommitInDoubt`] (see
    /// [`Perseas::durability_in_doubt`]).
    pub(crate) fn fence_failed(&mut self, any_failed: bool) -> Result<(), TxnError> {
        if !any_failed {
            return Ok(());
        }
        self.bump_epoch()?;
        self.check_commit_quorum()
    }

    /// Refuses the operation when fewer than `commit_quorum` mirrors are
    /// healthy. Checked on every `fence_failed` *and* unconditionally at
    /// `begin_transaction` / `commit_transaction`, so a set that
    /// degraded below quorum in an earlier operation keeps refusing
    /// until mirrors rejoin — not only on the Healthy→Down transition
    /// that observed the failure.
    pub(crate) fn check_commit_quorum(&self) -> Result<(), TxnError> {
        let healthy = self.healthy_mirror_count();
        if healthy < self.cfg.commit_quorum {
            if let Some(m) = self.metrics.as_ref() {
                m.quorum_refusal();
            }
            return Err(TxnError::Unavailable(format!(
                "{healthy} healthy mirrors left, below the commit quorum of {}",
                self.cfg.commit_quorum
            )));
        }
        Ok(())
    }

    /// Maps an error raised at the durability point to
    /// [`TxnError::CommitInDoubt`]. By then the commit-record loop has
    /// visited every mirror without stopping early, so each mirror
    /// either holds the record or is `Down` (and fenced to a stale
    /// epoch): recovery from any surviving mirror replays the
    /// transaction as committed, and the error must say so rather than
    /// claim the transaction is not durable. Injected crashes keep
    /// their own variant — recovery reports the actual outcome. And
    /// when *no* healthy mirror is left, the record rests nowhere
    /// reliable: recovery may roll a torn record back, so the original
    /// error passes through and the transaction stays open.
    pub(crate) fn durability_in_doubt(&self, e: TxnError, id: u64) -> TxnError {
        let healthy = self.healthy_mirror_count();
        match e {
            TxnError::Crashed => TxnError::Crashed,
            e if healthy == 0 => e,
            _ => TxnError::CommitInDoubt {
                id,
                healthy,
                quorum: self.cfg.commit_quorum,
            },
        }
    }

    /// Refuses membership and archival changes while any concurrent
    /// transaction (token-based or via the legacy facade) is open.
    pub(crate) fn ensure_no_open_txns(&self) -> Result<(), TxnError> {
        if self.conc.txns.is_empty() {
            Ok(())
        } else {
            Err(TxnError::BusyInTransaction)
        }
    }

    /// The implicit token bound by the legacy facade over the concurrent
    /// engine ([`Perseas::begin_transaction`] under `cfg.concurrent`).
    fn legacy_conc_token(&self) -> Result<crate::conc::TxnToken, TxnError> {
        if self.phase == Phase::Crashed {
            return Err(TxnError::Crashed);
        }
        self.conc
            .legacy_token
            .map(crate::conc::TxnToken::new)
            .ok_or(TxnError::NoActiveTransaction)
    }

    pub(crate) fn ensure_phase(&self, want: Phase) -> Result<(), TxnError> {
        if self.phase == want {
            return Ok(());
        }
        Err(match (self.phase, want) {
            (Phase::Crashed, _) => TxnError::Crashed,
            (Phase::InTxn, Phase::Setup) | (Phase::InTxn, Phase::Ready) => {
                TxnError::BusyInTransaction
            }
            (_, Phase::InTxn) => TxnError::NoActiveTransaction,
            (Phase::Ready, Phase::Setup) => TxnError::BadPublishState,
            (Phase::Setup, Phase::Ready) => TxnError::BadPublishState,
            _ => TxnError::BadPublishState,
        })
    }

    pub(crate) fn check_region_range(
        &self,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> Result<usize, TxnError> {
        let ri = region.as_raw() as usize;
        let region_len = self
            .regions
            .get(ri)
            .map(Vec::len)
            .ok_or(TxnError::UnknownRegion(region))?;
        if offset.checked_add(len).is_none_or(|e| e > region_len) {
            return Err(TxnError::OutOfBounds {
                region,
                offset,
                len,
                region_len,
            });
        }
        Ok(ri)
    }

    pub(crate) fn fault_step(&mut self) -> Result<(), TxnError> {
        if self.fault.step() {
            Ok(())
        } else {
            self.crash();
            Err(TxnError::Crashed)
        }
    }

    /// The batched commit pipeline: one vectored write per mirror for the
    /// deferred undo log, one for the coalesced data ranges, and one for
    /// the packet-atomic commit record — each phase fanned out to the
    /// mirrors in parallel (see [`Perseas::fan_out_vectored`]).
    fn commit_batched(
        &mut self,
        txn: &mut ActiveTxn,
        ranges: &[(usize, usize, usize)],
    ) -> Result<(), TxnError> {
        let aligned = self.cfg.aligned_memcpy;

        // Phase 1: the undo pushes deferred by `set_range` — the whole log
        // prefix rides as one range. Recovery tolerates the trailing
        // widened bytes: they hold either garbage (CRC-invalid) or records
        // of already-superseded transactions (stale ids), both of which
        // stop the scan.
        let undo_bytes = self.undo_off;
        let undo_lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                let (off, len) = if aligned {
                    let p = plan_transfer(m.undo.base_addr, 0, undo_bytes, self.undo_shadow.len());
                    (p.offset, p.len)
                } else {
                    (0, undo_bytes)
                };
                (
                    mi,
                    vec![(m.undo.id, off, self.undo_shadow[off..off + len].to_vec())],
                )
            })
            .collect();

        // Phase 2: the data update. Alignment widening can re-introduce
        // overlap between coalesced ranges, so the physical plans are
        // merged again before building the vectored write.
        let db_lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                let mut planned: Vec<(usize, usize, usize)> = ranges
                    .iter()
                    .map(|&(ri, start, len)| {
                        if aligned {
                            let p = plan_transfer(
                                m.db[ri].base_addr,
                                start,
                                len,
                                self.regions[ri].len(),
                            );
                            (ri, p.offset, p.offset + p.len)
                        } else {
                            (ri, start, start + len)
                        }
                    })
                    .collect();
                planned.sort_unstable();
                let mut merged: Vec<(usize, usize, usize)> = Vec::with_capacity(planned.len());
                for (ri, s, e) in planned {
                    match merged.last_mut() {
                        Some((lr, _, le)) if *lr == ri && s <= *le => *le = (*le).max(e),
                        _ => merged.push((ri, s, e)),
                    }
                }
                (
                    mi,
                    merged
                        .into_iter()
                        .map(|(ri, s, e)| (m.db[ri].id, s, self.regions[ri][s..e].to_vec()))
                        .collect(),
                )
            })
            .collect();

        // Phase 3: the durability point, same 8-byte record as the
        // per-range path.
        let meta_lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                (
                    mi,
                    vec![(m.meta.id, OFF_COMMIT, txn.id.to_le_bytes().to_vec())],
                )
            })
            .collect();

        let (batch_ranges, batch_bytes) = db_lists
            .first()
            .map(|(_, l)| (l.len(), l.iter().map(|(_, _, d)| d.len()).sum()))
            .unwrap_or((0, 0));
        self.emit(TraceEvent::CommitBatch {
            id: txn.id,
            mirrors: db_lists.len(),
            ranges: batch_ranges,
            bytes: batch_bytes,
            undo_bytes,
        });

        self.fan_out_vectored(undo_lists)?;
        txn.mirrors_dirty = true;
        self.fan_out_vectored(db_lists)?;
        // Ack barrier before the durability point: the undo and data
        // fan-outs above may be posted without acknowledgement on
        // pipelined transports (see `commit_unbatched`).
        self.flush_mirrors()?;
        // Durability point (see `commit_unbatched`): a failure past here
        // cannot claim the transaction is not durable.
        self.fan_out_vectored(meta_lists)
            .and_then(|()| self.flush_mirrors())
            .map_err(|e| self.durability_in_doubt(e, txn.id))
    }

    /// Issues one vectored write per listed mirror as a parallel fan-out:
    /// mirrors sharing a simulated clock are charged the *maximum* of
    /// their latencies (the rewind/advance pattern of
    /// [`SimClock::rewind_to`]), and real-network mirrors are written from
    /// scoped threads so the writes overlap on the wire. Each mirror's
    /// write is one crash point. Each list entry carries the mirror index
    /// it targets; entries whose mirror has gone `Down` since the lists
    /// were built are skipped, and a mirror failing its write is fenced
    /// while the fan-out commits degraded on the survivors.
    pub(crate) fn fan_out_vectored(&mut self, lists: MirrorBatches) -> Result<(), TxnError> {
        let clocks: Vec<Option<SimClock>> = lists
            .iter()
            .map(|(mi, _)| self.mirrors[*mi].backend.virtual_clock())
            .collect();
        let any_sim = clocks.iter().any(Option::is_some);
        let shared = match clocks.first().and_then(Option::as_ref) {
            Some(first)
                if clocks
                    .iter()
                    .all(|c| c.as_ref().is_some_and(|c| c.same_clock(first))) =>
            {
                Some(first.clone())
            }
            _ => None,
        };

        let mut any_failed = false;
        if self.fault.is_armed() || any_sim || lists.len() == 1 {
            // Sequential issue keeps crash points deterministic; when all
            // the mirrors share one simulated timeline the overlap is
            // modelled by rewinding to the dispatch instant before each
            // mirror and finally advancing to the latest completion.
            let t0 = shared.as_ref().map(|c| c.now());
            let mut t_end = t0;
            for (mi, list) in &lists {
                if !self.mirrors[*mi].is_healthy() {
                    continue;
                }
                self.fault_step()?;
                if let (Some(c), Some(start)) = (shared.as_ref(), t0) {
                    c.rewind_to(start);
                }
                let refs: Vec<(SegmentId, usize, &[u8])> = list
                    .iter()
                    .map(|(s, o, d)| (*s, *o, d.as_slice()))
                    .collect();
                match self.mirrors[*mi].backend.remote_write_v(&refs) {
                    Ok(()) => self
                        .stats
                        .add_remote_write(list.iter().map(|(_, _, d)| d.len()).sum()),
                    Err(e) if e.is_unavailable() => {
                        self.mark_down(*mi, &e);
                        any_failed = true;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
                if let (Some(c), Some(te)) = (shared.as_ref(), t_end.as_mut()) {
                    *te = (*te).max(c.now());
                }
            }
            if let (Some(c), Some(te)) = (shared.as_ref(), t_end) {
                c.advance_to(te);
            }
        } else {
            // Real-network mirrors with no fault plan armed: one scoped
            // thread per listed healthy mirror. Crash-point accounting is
            // unchanged (one step per mirror; an unarmed plan never
            // fires).
            let live: Vec<usize> = lists
                .iter()
                .filter(|(mi, _)| self.mirrors[*mi].is_healthy())
                .map(|(mi, _)| *mi)
                .collect();
            for _ in 0..live.len() {
                self.fault_step()?;
            }
            let results: Vec<(usize, Result<usize, RnError>)> = std::thread::scope(|scope| {
                let mut lists_it = lists.iter().peekable();
                let mut handles = Vec::with_capacity(lists.len());
                for (mi, m) in self.mirrors.iter_mut().enumerate() {
                    let Some(entry) = lists_it.peek() else { break };
                    if entry.0 != mi {
                        continue;
                    }
                    let (_, list) = lists_it.next().expect("peeked");
                    if m.health != MirrorHealth::Healthy {
                        continue;
                    }
                    handles.push(scope.spawn(move || {
                        let refs: Vec<(SegmentId, usize, &[u8])> = list
                            .iter()
                            .map(|(s, o, d)| (*s, *o, d.as_slice()))
                            .collect();
                        let bytes = list.iter().map(|(_, _, d)| d.len()).sum();
                        (mi, m.backend.remote_write_v(&refs).map(|()| bytes))
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("mirror writer panicked"))
                    .collect()
            });
            for (mi, r) in results {
                match r {
                    Ok(bytes) => self.stats.add_remote_write(bytes),
                    Err(e) if e.is_unavailable() => {
                        self.mark_down(mi, &e);
                        any_failed = true;
                    }
                    Err(e) => return Err(unavailable(e)),
                }
            }
        }
        self.fence_failed(any_failed)
    }

    /// Grows the undo log to at least `needed` bytes: allocate the larger
    /// segment, re-push the open transaction's records, flip the
    /// single-packet indirection in the metadata, free the old segment.
    pub(crate) fn grow_undo(&mut self, needed: usize) -> Result<(), TxnError> {
        let new_len = (self.undo_shadow.len() * 2).max(needed);
        self.undo_shadow.resize(new_len, 0);
        self.emit(TraceEvent::UndoGrown {
            new_capacity: new_len,
        });
        if self.cfg.redo {
            // The undo log is purely local in redo mode (abort restore
            // and snapshot-read masking); the mirrors hold no copy to
            // grow.
            return Ok(());
        }
        let mut any_failed = false;
        for mi in 0..self.mirrors.len() {
            if !self.mirrors[mi].is_healthy() {
                continue;
            }
            self.fault_step()?;
            let prefix_len = self.undo_off;
            let m = &mut self.mirrors[mi];
            let grown = m.backend.remote_malloc(new_len, 0).and_then(|new_seg| {
                if prefix_len > 0 {
                    m.backend
                        .remote_write(new_seg.id, 0, &self.undo_shadow[..prefix_len])?;
                }
                // Single 16-byte line: (undo_seg_id, undo_seg_len) flips
                // atomically.
                let mut line = [0u8; 16];
                line[0..8].copy_from_slice(&new_seg.id.as_raw().to_le_bytes());
                line[8..16].copy_from_slice(&(new_len as u64).to_le_bytes());
                m.backend.remote_write(m.meta.id, OFF_UNDO, &line)?;
                let old = m.undo.id;
                m.undo = new_seg;
                m.backend.remote_free(old)?;
                Ok(prefix_len + 16)
            });
            match grown {
                Ok(bytes) => self.stats.add_remote_write(bytes),
                Err(e) if e.is_unavailable() => {
                    self.mark_down(mi, &e);
                    any_failed = true;
                }
                Err(e) => return Err(unavailable(e)),
            }
        }
        self.fence_failed(any_failed)?;
        // The re-pushed prefix and the metadata flip must be confirmed
        // before the growth is relied on.
        self.flush_mirrors()
    }

    fn build_meta_image(&self) -> Vec<Vec<u8>> {
        self.mirrors
            .iter()
            .map(|m| self.meta_image_for(m))
            .collect()
    }

    pub(crate) fn meta_image_for(&self, m: &MirrorState<M>) -> Vec<u8> {
        let concurrent = self.cfg.concurrent;
        let mut image = vec![0u8; Perseas::<M>::meta_len_for(&self.cfg)];
        let sharded = self.cfg.shard_count > 0;
        let header = MetaHeader {
            region_count: self.regions.len() as u32,
            undo_seg_id: m.undo.id.as_raw(),
            undo_seg_len: m.undo.len as u64,
            epoch: self.epoch,
            flags: if concurrent { FLAG_CONCURRENT } else { 0 }
                | if sharded {
                    crate::layout::FLAG_SHARDED
                } else {
                    0
                }
                | if self.cfg.redo {
                    crate::layout::FLAG_REDO
                } else {
                    0
                },
            commit_slots: if concurrent {
                self.cfg.commit_slots as u32
            } else {
                0
            },
            intent_slots: if sharded {
                self.cfg.intent_slots as u16
            } else {
                0
            },
            decision_slots: if sharded {
                self.cfg.decision_slots as u16
            } else {
                0
            },
            shard_index: if sharded { self.cfg.shard_index } else { 0 },
            shard_count: self.cfg.shard_count,
            last_committed: self.last_committed,
        };
        image[..OFF_REGION_TABLE].copy_from_slice(&header.encode());
        for (i, seg) in m.db.iter().enumerate() {
            let off = OFF_REGION_TABLE + i * REGION_ENTRY_SIZE;
            image[off..off + REGION_ENTRY_SIZE]
                .copy_from_slice(&encode_region_entry(seg.id.as_raw(), seg.len as u64));
        }
        if concurrent {
            let base = commit_table_offset(image.len(), self.cfg.commit_slots);
            for (i, id) in self.conc.slot_ids.iter().enumerate() {
                image[base + i * 8..base + i * 8 + 8].copy_from_slice(&id.to_le_bytes());
            }
        }
        if self.cfg.redo {
            use crate::layout::{
                encode_redo_dir_header, encode_redo_entry, redo_entry_offset, redo_header_offset,
                redo_snap_offset, redo_tail_offset, REDO_ENTRY_SIZE,
            };
            let dir_end = self.redo_dir_end_local(image.len());
            let slots = self.cfg.redo_segments;
            image[redo_header_offset(dir_end)..][..16].copy_from_slice(&encode_redo_dir_header(
                self.cfg.redo_segment_bytes as u32,
                slots as u32,
            ));
            image[redo_tail_offset(dir_end)..][..8]
                .copy_from_slice(&self.redo.tail.to_le_bytes());
            // The snapshot position is per-mirror: a newcomer's streamed
            // image is current through the join-time tail even while the
            // veterans' images cover an older snapshot.
            image[redo_snap_offset(dir_end)..][..8].copy_from_slice(&m.redo_snap.to_le_bytes());
            for slot in 0..slots {
                if let (Some(seq), Some(seg)) = (
                    self.redo.slot_seqs.get(slot).copied().flatten(),
                    m.redo.get(slot).copied().flatten(),
                ) {
                    image[redo_entry_offset(dir_end, slots, slot)..][..REDO_ENTRY_SIZE]
                        .copy_from_slice(&encode_redo_entry(seg.id.as_raw(), seq));
                }
            }
        }
        image
    }
}

/// Maps a backend failure to the shared error type.
/// Copies the intersection of `image` (at region offset `roff`) into
/// `buf` (a view of the region starting at `offset`).
pub(crate) fn overlay_bytes(buf: &mut [u8], offset: usize, roff: usize, image: &[u8]) {
    let start = roff.max(offset);
    let end = (roff + image.len()).min(offset + buf.len());
    if start < end {
        buf[start - offset..end - offset].copy_from_slice(&image[start - roff..end - roff]);
    }
}

pub(crate) fn unavailable(e: RnError) -> TxnError {
    TxnError::Unavailable(e.to_string())
}

/// Pushes `local[offset..offset+len]` to a remote segment, using the
/// optimised aligned-chunk `sci_memcpy` or the naive store depending on
/// configuration.
pub(crate) fn push_range<M: RemoteMemory>(
    backend: &mut M,
    seg: RemoteSegment,
    local: &[u8],
    offset: usize,
    len: usize,
    aligned: bool,
) -> Result<(), RnError> {
    if aligned {
        mirror_copy(backend, seg.id, seg.base_addr, local, offset, len).map(|_| ())
    } else {
        backend.remote_write(seg.id, offset, &local[offset..offset + len])
    }
}

/// Returns the first byte of `[start, start+len)` of region `ri` that no
/// declared range covers, or `None` if fully covered.
pub(crate) fn first_uncovered(
    declared: &[(usize, usize, usize)],
    ri: usize,
    start: usize,
    len: usize,
) -> Option<usize> {
    let mut uncovered = vec![(start, start + len)];
    for &(r, s, l) in declared {
        if r != ri || l == 0 {
            continue;
        }
        let (ds, de) = (s, s + l);
        let mut next = Vec::with_capacity(uncovered.len() + 1);
        for (a, b) in uncovered {
            if de <= a || ds >= b {
                next.push((a, b));
            } else {
                if a < ds {
                    next.push((a, ds));
                }
                if de < b {
                    next.push((de, b));
                }
            }
        }
        uncovered = next;
        if uncovered.is_empty() {
            return None;
        }
    }
    uncovered.first().map(|&(a, _)| a)
}

/// Coalesces declared ranges per region into maximal disjoint ranges.
pub(crate) fn coalesce(declared: &[(usize, usize, usize)]) -> Vec<(usize, usize, usize)> {
    let mut ranges: Vec<(usize, usize, usize)> = declared
        .iter()
        .filter(|&&(_, _, l)| l > 0)
        .map(|&(r, s, l)| (r, s, s + l))
        .collect();
    ranges.sort_unstable();
    let mut out: Vec<(usize, usize, usize)> = Vec::with_capacity(ranges.len());
    for (r, s, e) in ranges {
        match out.last_mut() {
            Some((lr, _, le)) if *lr == r && s <= *le => {
                *le = (*le).max(e);
            }
            _ => out.push((r, s, e)),
        }
    }
    out.into_iter().map(|(r, s, e)| (r, s, e - s)).collect()
}

impl<M: RemoteMemory> fmt::Debug for Perseas<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Perseas")
            .field("phase", &self.phase)
            .field("mirrors", &self.mirrors.len())
            .field("healthy", &self.healthy_mirror_count())
            .field("epoch", &self.epoch)
            .field("regions", &self.regions.len())
            .field("last_committed", &self.last_committed)
            .field("undo_capacity", &self.undo_shadow.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_overlaps_and_adjacency() {
        let d = vec![(0, 0, 4), (0, 4, 4), (0, 10, 2), (1, 0, 2), (0, 11, 5)];
        let c = coalesce(&d);
        assert_eq!(c, vec![(0, 0, 8), (0, 10, 6), (1, 0, 2)]);
    }

    #[test]
    fn coalesce_drops_empty_ranges() {
        assert!(coalesce(&[(0, 5, 0)]).is_empty());
    }

    #[test]
    fn uncovered_detection() {
        let d = vec![(0, 0, 4), (0, 8, 4)];
        assert_eq!(first_uncovered(&d, 0, 0, 4), None);
        assert_eq!(first_uncovered(&d, 0, 2, 2), None);
        assert_eq!(first_uncovered(&d, 0, 2, 8), Some(4));
        assert_eq!(first_uncovered(&d, 1, 0, 1), Some(0));
        assert_eq!(first_uncovered(&d, 0, 4, 4), Some(4));
    }

    #[test]
    fn uncovered_with_split_coverage() {
        // Two declared ranges covering a middle write jointly.
        let d = vec![(0, 0, 6), (0, 6, 6)];
        assert_eq!(first_uncovered(&d, 0, 4, 6), None);
    }
}
