//! A thread-safe front-end over the (sequential) PERSEAS library.
//!
//! The paper's library serves "traditional sequential applications": one
//! transaction at a time. [`SharedPerseas`] keeps that execution model —
//! transactions are serialised on an internal lock, which trivially gives
//! strict serialisability — while letting a multi-threaded application
//! share one database handle.

use std::sync::{Arc, Mutex};

use perseas_rnram::RemoteMemory;
use perseas_txn::{RegionId, TxnError, TxnStats};

use crate::perseas::Perseas;
use crate::scope::TxnScope;

/// A cloneable, thread-safe handle to one PERSEAS database.
///
/// All transactional work goes through [`SharedPerseas::transaction`],
/// which acquires the database for the closure's duration; reads outside
/// transactions take the lock per call.
///
/// # Examples
///
/// ```
/// use std::thread;
/// use perseas_core::{Perseas, PerseasConfig, SharedPerseas};
/// use perseas_rnram::SimRemote;
///
/// # fn main() -> Result<(), perseas_txn::TxnError> {
/// let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default())?;
/// let r = db.malloc(8)?;
/// db.init_remote_db()?;
/// let shared = SharedPerseas::new(db);
///
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let db = shared.clone();
///         thread::spawn(move || {
///             for _ in 0..25 {
///                 db.transaction(|tx| {
///                     let mut buf = [0u8; 8];
///                     tx.read(r, 0, &mut buf)?;
///                     let v = u64::from_le_bytes(buf) + 1;
///                     tx.update(r, 0, &v.to_le_bytes())
///                 })
///                 .unwrap();
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
///
/// let mut buf = [0u8; 8];
/// shared.read(r, 0, &mut buf)?;
/// assert_eq!(u64::from_le_bytes(buf), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SharedPerseas<M: RemoteMemory> {
    inner: Arc<Mutex<Perseas<M>>>,
}

impl<M: RemoteMemory> Clone for SharedPerseas<M> {
    fn clone(&self) -> Self {
        SharedPerseas {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: RemoteMemory> SharedPerseas<M> {
    /// Wraps a published database for shared use.
    pub fn new(db: Perseas<M>) -> Self {
        SharedPerseas {
            inner: Arc::new(Mutex::new(db)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Perseas<M>> {
        // A poisoned lock means a panic mid-transaction on another
        // thread; the database object is still structurally sound (the
        // open transaction simply aborts on the next use), so recover the
        // guard.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs a serialised transaction (see [`Perseas::transaction`]).
    ///
    /// # Errors
    ///
    /// Propagates the closure's or the library's error; the transaction
    /// is aborted on error.
    pub fn transaction<T, F>(&self, f: F) -> Result<T, TxnError>
    where
        F: FnOnce(&mut TxnScope<'_, M>) -> Result<T, TxnError>,
    {
        let mut db = self.lock();
        if db.in_transaction() {
            // A previous holder panicked mid-transaction; roll back its
            // leftovers before starting ours.
            db.abort_transaction()?;
        }
        db.transaction(f)
    }

    /// Reads `buf.len()` bytes at `offset` of `region` outside any
    /// transaction.
    ///
    /// # Errors
    ///
    /// Propagates library errors.
    pub fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        self.lock().read(region, offset, buf)
    }

    /// Length of a region.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        self.lock().region_len(region)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TxnStats {
        self.lock().stats()
    }

    /// Id of the last durably committed transaction.
    pub fn last_committed(&self) -> u64 {
        self.lock().last_committed()
    }

    /// Runs arbitrary code with exclusive access to the database (crash
    /// simulation, mirror management, diagnostics).
    pub fn with<T>(&self, f: impl FnOnce(&mut Perseas<M>) -> T) -> T {
        f(&mut self.lock())
    }

    /// Extracts the database if this is the last handle.
    ///
    /// # Errors
    ///
    /// Returns `self` back if other handles exist.
    pub fn try_unwrap(self) -> Result<Perseas<M>, SharedPerseas<M>> {
        match Arc::try_unwrap(self.inner) {
            Ok(m) => Ok(m.into_inner().unwrap_or_else(|e| e.into_inner())),
            Err(inner) => Err(SharedPerseas { inner }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerseasConfig;
    use perseas_rnram::SimRemote;
    use perseas_sci::{NodeMemory, SciParams};
    use perseas_simtime::SimClock;
    use std::thread;

    fn shared_counter() -> (SharedPerseas<SimRemote>, RegionId, NodeMemory) {
        let backend = SimRemote::new("shared");
        let node = backend.node().clone();
        let mut db = Perseas::init(vec![backend], PerseasConfig::default()).unwrap();
        let r = db.malloc(64).unwrap();
        db.init_remote_db().unwrap();
        (SharedPerseas::new(db), r, node)
    }

    #[test]
    fn concurrent_increments_are_serialised() {
        let (shared, r, _) = shared_counter();
        let threads = 8;
        let per_thread = 50;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let db = shared.clone();
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        db.transaction(|tx| {
                            let mut buf = [0u8; 8];
                            tx.read(r, 0, &mut buf)?;
                            let v = u64::from_le_bytes(buf) + 1;
                            tx.update(r, 0, &v.to_le_bytes())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut buf = [0u8; 8];
        shared.read(r, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), threads * per_thread);
        assert_eq!(shared.stats().commits, threads * per_thread);
    }

    #[test]
    fn concurrent_history_survives_crash() {
        let (shared, r, node) = shared_counter();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let db = shared.clone();
                thread::spawn(move || {
                    for i in 0..20u64 {
                        db.transaction(|tx| {
                            tx.update(r, (t as usize % 8) * 8, &(i + 1).to_le_bytes())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = shared.with(|db| {
            let snap = db.region_snapshot(RegionId::from_raw(0)).unwrap();
            db.crash();
            snap
        });

        let backend = SimRemote::with_parts(SimClock::new(), node, SciParams::dolphin_1998());
        let (db2, _) = Perseas::recover(backend, PerseasConfig::default()).unwrap();
        assert_eq!(db2.region_snapshot(r).unwrap(), expected);
    }

    #[test]
    fn panicking_transaction_does_not_poison_the_database() {
        let (shared, r, _) = shared_counter();
        let db = shared.clone();
        let result = thread::spawn(move || {
            db.transaction(|tx| -> Result<(), TxnError> {
                tx.update(r, 0, &[9; 8])?;
                panic!("application bug inside a transaction");
            })
        })
        .join();
        assert!(result.is_err(), "the panic must propagate to join()");

        // The shared handle remains usable and the half-done transaction
        // is rolled back before the next one runs.
        shared
            .transaction(|tx| tx.update(r, 0, &7u64.to_le_bytes()))
            .unwrap();
        let mut buf = [0u8; 8];
        shared.read(r, 0, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 7);
    }

    #[test]
    fn try_unwrap_returns_database_when_sole_owner() {
        let (shared, r, _) = shared_counter();
        let clone = shared.clone();
        let back = shared.try_unwrap().unwrap_err();
        drop(clone);
        let db = back.try_unwrap().expect("now sole owner");
        assert_eq!(db.region_len(r).unwrap(), 64);
    }
}
