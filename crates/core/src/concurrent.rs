//! A `Send + Sync` front-end over the concurrent transaction engine.
//!
//! [`SharedPerseas`](crate::SharedPerseas) serialises whole transactions
//! on one lock. [`ConcurrentPerseas`] instead hands out RAII
//! [`TxnHandle`]s backed by [`Perseas::begin_concurrent`]: many OS
//! threads keep transactions open against one instance at once, each
//! operation takes the instance lock only for its own duration, and
//! threads that reach commit together are batched into one **group
//! commit** — a single undo/data/commit-record fan-out covers all of
//! them (the commit-desk pattern: the first committer becomes leader,
//! drains the queue of every transaction waiting to commit, and runs one
//! [`Perseas::commit_group`] for the whole batch).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use perseas_rnram::RemoteMemory;
use perseas_txn::{RegionId, SnapshotToken, TxnError, TxnStats};

use crate::conc::TxnToken;
use crate::perseas::Perseas;

/// Transactions queued for the next group commit, and the results the
/// leader published for the previous one.
struct CommitDesk {
    /// Ids waiting to be committed by the next leader.
    queue: Vec<u64>,
    /// `true` while some thread is inside `commit_group`.
    leader: bool,
    /// Per-id outcome of a finished group: `(still open, result)`.
    results: HashMap<u64, (bool, Result<(), TxnError>)>,
}

struct Shared<M: RemoteMemory> {
    db: Mutex<Perseas<M>>,
    desk: Mutex<CommitDesk>,
    done: Condvar,
}

impl<M: RemoteMemory> Shared<M> {
    fn lock_db(&self) -> MutexGuard<'_, Perseas<M>> {
        // A poisoned lock means a panic on another thread; the instance
        // is still structurally sound (its transaction aborts on the
        // handle's drop), so recover the guard.
        self.db.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_desk(&self) -> MutexGuard<'_, CommitDesk> {
        self.desk.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Commits `id`, batching with every other transaction queued at the
    /// desk. Returns whether the transaction is still open (a
    /// pre-durability failure leaves it open) and the group's result.
    fn commit_id(&self, id: u64) -> (bool, Result<(), TxnError>) {
        let mut desk = self.lock_desk();
        desk.queue.push(id);
        loop {
            if let Some(outcome) = desk.results.remove(&id) {
                return outcome;
            }
            if desk.leader {
                // A leader is committing; it may or may not have taken
                // this id along — check again when it finishes.
                desk = self.done.wait(desk).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the leader. The desk lock is released before taking
            // the instance lock (always db before desk, never both ways),
            // so late committers can keep enqueueing while the group
            // runs — they ride the next one.
            desk.leader = true;
            drop(desk);
            let mut db = self.lock_db();
            let batch: Vec<u64> = std::mem::take(&mut self.lock_desk().queue);
            let tokens: Vec<TxnToken> = batch.iter().map(|&i| TxnToken::new(i)).collect();
            let result = db.commit_group(&tokens);
            let outcomes: Vec<(u64, bool)> = batch
                .iter()
                .map(|&i| (i, db.txn_is_open(TxnToken::new(i))))
                .collect();
            drop(db);
            let mut desk = self.lock_desk();
            desk.leader = false;
            for (i, open) in outcomes {
                desk.results.insert(i, (open, result.clone()));
            }
            self.done.notify_all();
            let own = desk
                .results
                .remove(&id)
                .expect("leader's own id rides its own batch");
            return own;
        }
    }
}

/// One open transaction, owned by a thread.
///
/// The handle releases the instance between operations, so other threads'
/// transactions interleave freely; conflicting `set_range` claims are
/// refused with [`TxnError::Conflict`]. Dropping an open handle aborts
/// its transaction.
pub struct TxnHandle<M: RemoteMemory> {
    shared: Arc<Shared<M>>,
    token: TxnToken,
    open: bool,
}

impl<M: RemoteMemory> TxnHandle<M> {
    /// The underlying transaction id.
    pub fn id(&self) -> u64 {
        self.token.id()
    }

    /// The raw [`TxnToken`] this handle wraps, for routing the
    /// transaction through token-level APIs — e.g. staging its
    /// prepare/commit phases directly on the engine via
    /// [`ConcurrentPerseas::with`], or correlating it with the parts a
    /// sharded coordinator opens. The token stays valid only while this
    /// handle is open; the handle still owns the transaction's
    /// lifecycle (dropping it aborts).
    pub fn token(&self) -> TxnToken {
        self.token
    }

    /// Declares a writable range (see [`Perseas::set_range_t`]).
    ///
    /// # Errors
    ///
    /// [`TxnError::Conflict`] when another open transaction holds an
    /// overlapping claim; this transaction stays open.
    pub fn set_range(&self, region: RegionId, offset: usize, len: usize) -> Result<(), TxnError> {
        self.shared
            .lock_db()
            .set_range_t(self.token, region, offset, len)
    }

    /// Declares several ranges all-or-nothing (see
    /// [`Perseas::set_ranges_t`]).
    ///
    /// # Errors
    ///
    /// Fails like [`TxnHandle::set_range`].
    pub fn set_ranges(&self, ranges: &[(RegionId, usize, usize)]) -> Result<(), TxnError> {
        self.shared.lock_db().set_ranges_t(self.token, ranges)
    }

    /// Writes into a previously declared range.
    ///
    /// # Errors
    ///
    /// Fails on undeclared ranges or bounds violations.
    pub fn write(&self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        self.shared
            .lock_db()
            .write_t(self.token, region, offset, data)
    }

    /// Declares and writes in one step.
    ///
    /// # Errors
    ///
    /// Fails like [`TxnHandle::set_range`] and [`TxnHandle::write`].
    pub fn update(&self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        let mut db = self.shared.lock_db();
        db.set_range_t(self.token, region, offset, data.len())?;
        db.write_t(self.token, region, offset, data)
    }

    /// Reads from the shared local image (own writes included).
    ///
    /// # Errors
    ///
    /// Fails on unknown regions or bounds violations.
    pub fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        self.shared.lock_db().read(region, offset, buf)
    }

    /// Length of a region.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        self.shared.lock_db().region_len(region)
    }

    /// Ships this transaction's records and data to the mirrors ahead of
    /// the commit, freezing it: a prepared transaction accepts no further
    /// claims or writes and its commit is a single record fan-out (the
    /// stage a group commit amortizes).
    ///
    /// # Errors
    ///
    /// Fails like [`Perseas::prepare_t`](crate::Perseas::prepare_t); the
    /// transaction stays open either way.
    pub fn prepare(&self) -> Result<(), TxnError> {
        self.shared.lock_db().prepare_t(self.token)
    }

    /// Commits this transaction, group-committing with any other
    /// transaction that reaches its commit point at the same time.
    ///
    /// # Errors
    ///
    /// Propagates the group's commit error. After a pre-durability
    /// failure the transaction is aborted (the handle is consumed);
    /// [`TxnError::CommitInDoubt`] means it **is** durable on the
    /// survivors.
    pub fn commit(mut self) -> Result<(), TxnError> {
        let (still_open, result) = self.shared.commit_id(self.token.id());
        // A pre-durability failure leaves the transaction open; the
        // consuming call can't retry, so Drop aborts it cleanly.
        self.open = still_open;
        result
    }

    /// Aborts this transaction: its claims are released immediately and
    /// its writes rolled back.
    ///
    /// # Errors
    ///
    /// Propagates mirror-cleanup failures after a failed commit; the
    /// local abort has completed regardless.
    pub fn abort(mut self) -> Result<(), TxnError> {
        self.open = false;
        self.shared.lock_db().abort_t(self.token)
    }
}

impl<M: RemoteMemory> Drop for TxnHandle<M> {
    fn drop(&mut self) {
        if self.open {
            let _ = self.shared.lock_db().abort_t(self.token);
        }
    }
}

/// A cloneable, `Send + Sync` handle driving concurrent transactions
/// against one PERSEAS instance.
///
/// # Examples
///
/// ```
/// use perseas_core::{ConcurrentPerseas, Perseas, PerseasConfig};
/// use perseas_rnram::SimRemote;
///
/// # fn main() -> Result<(), perseas_txn::TxnError> {
/// let cfg = PerseasConfig::default().with_concurrent(true);
/// let mut db = Perseas::init(vec![SimRemote::new("m")], cfg)?;
/// let r = db.malloc(64)?;
/// db.init_remote_db()?;
/// let shared = ConcurrentPerseas::new(db)?;
///
/// // Two transactions open at once; their claims are disjoint.
/// let a = shared.begin_transaction()?;
/// let b = shared.begin_transaction()?;
/// a.update(r, 0, &[1; 8])?;
/// b.update(r, 8, &[2; 8])?;
/// a.commit()?;
/// b.commit()?;
///
/// let mut buf = [0u8; 16];
/// shared.read(r, 0, &mut buf)?;
/// assert_eq!(&buf[..8], &[1; 8]);
/// assert_eq!(&buf[8..], &[2; 8]);
/// # Ok(())
/// # }
/// ```
pub struct ConcurrentPerseas<M: RemoteMemory> {
    shared: Arc<Shared<M>>,
}

impl<M: RemoteMemory> Clone for ConcurrentPerseas<M> {
    fn clone(&self) -> Self {
        ConcurrentPerseas {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: RemoteMemory> ConcurrentPerseas<M> {
    /// Wraps a published database for concurrent use.
    ///
    /// # Errors
    ///
    /// Fails `Unavailable` unless the instance was configured with
    /// [`PerseasConfig::with_concurrent`](crate::PerseasConfig::with_concurrent).
    pub fn new(db: Perseas<M>) -> Result<Self, TxnError> {
        if !db.cfg.concurrent {
            return Err(TxnError::Unavailable(
                "ConcurrentPerseas requires PerseasConfig::with_concurrent".into(),
            ));
        }
        Ok(ConcurrentPerseas {
            shared: Arc::new(Shared {
                db: Mutex::new(db),
                desk: Mutex::new(CommitDesk {
                    queue: Vec::new(),
                    leader: false,
                    results: HashMap::new(),
                }),
                done: Condvar::new(),
            }),
        })
    }

    /// Opens a new transaction and returns its handle.
    ///
    /// # Errors
    ///
    /// Fails like [`Perseas::begin_concurrent`].
    pub fn begin_transaction(&self) -> Result<TxnHandle<M>, TxnError> {
        let token = self.shared.lock_db().begin_concurrent()?;
        Ok(TxnHandle {
            shared: Arc::clone(&self.shared),
            token,
            open: true,
        })
    }

    /// Runs `f` inside a transaction: committed when `f` succeeds,
    /// aborted when it fails. Errors — including
    /// [`TxnError::Conflict`] from a lost claim — propagate without
    /// wedging the instance; the caller may simply retry.
    ///
    /// # Errors
    ///
    /// Propagates the closure's or the library's error.
    pub fn transaction<T, F>(&self, f: F) -> Result<T, TxnError>
    where
        F: FnOnce(&TxnHandle<M>) -> Result<T, TxnError>,
    {
        let handle = self.begin_transaction()?;
        match f(&handle) {
            Ok(value) => {
                handle.commit()?;
                Ok(value)
            }
            Err(e) => {
                // Abort failures would mask the original error; the
                // rollback itself has completed locally either way.
                let _ = handle.abort();
                Err(e)
            }
        }
    }

    /// Reads outside any transaction.
    ///
    /// # Errors
    ///
    /// Propagates library errors.
    pub fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        self.shared.lock_db().read(region, offset, buf)
    }

    /// Length of a region.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    pub fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        self.shared.lock_db().region_len(region)
    }

    /// Opens a snapshot pinned at the current commit watermark (see
    /// [`Perseas::begin_snapshot`]). Snapshot reads through
    /// [`ConcurrentPerseas::read_snapshot`] take no conflict-table claims
    /// and can never conflict with writers on other handles.
    ///
    /// # Errors
    ///
    /// Fails when MVCC is disabled or after an unrecovered crash.
    pub fn begin_snapshot(&self) -> Result<SnapshotToken, TxnError> {
        self.shared.lock_db().begin_snapshot()
    }

    /// Reads at a snapshot's pinned watermark (see [`Perseas::read_s`]).
    ///
    /// # Errors
    ///
    /// Never `Conflict` or `SnapshotContention`; fails typed with
    /// [`TxnError::SnapshotTooOld`] when the snapshot's versions were
    /// evicted, or on bounds violations.
    pub fn read_snapshot(
        &self,
        snap: SnapshotToken,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), TxnError> {
        self.shared.lock_db().read_s(snap, region, offset, buf)
    }

    /// Closes a snapshot, releasing the versions it pinned.
    pub fn end_snapshot(&self, snap: SnapshotToken) {
        self.shared.lock_db().end_snapshot(snap);
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TxnStats {
        self.shared.lock_db().stats()
    }

    /// Id of the last durably committed transaction.
    pub fn last_committed(&self) -> u64 {
        self.shared.lock_db().last_committed()
    }

    /// Number of transactions currently open.
    pub fn open_txn_count(&self) -> usize {
        self.shared.lock_db().open_txn_count()
    }

    /// Runs arbitrary code with exclusive access to the instance (crash
    /// simulation, mirror management, diagnostics).
    pub fn with<T>(&self, f: impl FnOnce(&mut Perseas<M>) -> T) -> T {
        f(&mut self.shared.lock_db())
    }

    /// Extracts the database if this is the last handle.
    ///
    /// # Errors
    ///
    /// Returns `self` back if other handles exist.
    pub fn try_unwrap(self) -> Result<Perseas<M>, ConcurrentPerseas<M>> {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared.db.into_inner().unwrap_or_else(|e| e.into_inner())),
            Err(shared) => Err(ConcurrentPerseas { shared }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerseasConfig;
    use perseas_rnram::SimRemote;
    use std::thread;

    fn built() -> (ConcurrentPerseas<SimRemote>, RegionId) {
        let cfg = PerseasConfig::default().with_concurrent(true);
        let mut db = Perseas::init(vec![SimRemote::new("m")], cfg).unwrap();
        let r = db.malloc(256).unwrap();
        db.init_remote_db().unwrap();
        (ConcurrentPerseas::new(db).unwrap(), r)
    }

    #[test]
    fn handle_layer_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentPerseas<SimRemote>>();
        assert_send_sync::<TxnHandle<SimRemote>>();
    }

    #[test]
    fn new_requires_concurrent_config() {
        let db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        assert!(matches!(
            ConcurrentPerseas::new(db),
            Err(TxnError::Unavailable(_))
        ));
    }

    #[test]
    fn threads_share_disjoint_slices() {
        let (shared, r) = built();
        let threads = 8usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = shared.clone();
                thread::spawn(move || {
                    for i in 0..10u64 {
                        db.transaction(|tx| tx.update(r, t * 8, &(i + 1).to_le_bytes()))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..threads {
            let mut buf = [0u8; 8];
            shared.read(r, t * 8, &mut buf).unwrap();
            assert_eq!(u64::from_le_bytes(buf), 10);
        }
        assert_eq!(shared.stats().commits, (threads * 10) as u64);
        assert_eq!(shared.open_txn_count(), 0);
    }

    #[test]
    fn dropping_an_open_handle_aborts_it() {
        let (shared, r) = built();
        {
            let tx = shared.begin_transaction().unwrap();
            tx.update(r, 0, &[9; 8]).unwrap();
            assert_eq!(shared.open_txn_count(), 1);
        }
        assert_eq!(shared.open_txn_count(), 0);
        let mut buf = [0u8; 8];
        shared.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "dropped handle rolled back");
    }

    #[test]
    fn conflicting_threads_one_wins_one_retries() {
        let (shared, r) = built();
        let a = shared.begin_transaction().unwrap();
        a.set_range(r, 0, 16).unwrap();
        let err = shared
            .transaction(|tx| tx.update(r, 8, &[1; 4]))
            .unwrap_err();
        assert!(matches!(err, TxnError::Conflict { holder, .. } if holder == a.id()));
        a.write(r, 0, &[5; 16]).unwrap();
        a.commit().unwrap();
        // The loser retries after the holder resolves and succeeds.
        shared.transaction(|tx| tx.update(r, 8, &[1; 4])).unwrap();
        let mut buf = [0u8; 4];
        shared.read(r, 8, &mut buf).unwrap();
        assert_eq!(buf, [1; 4]);
    }

    #[test]
    fn tokens_route_through_the_engine() {
        let (shared, r) = built();
        let h = shared.begin_transaction().unwrap();
        h.set_range(r, 0, 8).unwrap();
        h.write(r, 0, &[9; 8]).unwrap();
        let tok = h.token();
        assert_eq!(tok.id(), h.id());
        // The token drives token-level phases on the engine directly —
        // here a vectored prepare — while the handle keeps ownership.
        shared.with(|db| db.prepare_t(tok)).unwrap();
        h.commit().unwrap();
        let mut buf = [0u8; 8];
        shared.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [9; 8]);
    }
}
