//! The in-memory version store behind snapshot reads.
//!
//! Every committed transaction's before-images — the same bytes the undo
//! arena already carries for abort and recovery — are retained here for a
//! bounded window, keyed by a monotonically increasing **commit
//! sequence**. A snapshot pins the sequence current at `begin_snapshot`;
//! a snapshot read starts from the live region bytes and walks the
//! retained versions newest-first, overlaying the before-image of every
//! commit *after* the pin, which reconstructs the exact committed image
//! at the pinned watermark. Readers therefore take no conflict-table
//! claims and can never lose a first-claimer-wins race.
//!
//! The store is volatile and bounded: versions older than every open
//! snapshot are pruned eagerly, and byte/entry budget pressure evicts
//! oldest-first past open snapshots, raising the reconstruction floor. A
//! snapshot pinned below the floor can no longer be served consistently
//! and every later read on it fails typed with
//! [`TxnError::SnapshotTooOld`] — never with torn bytes. A crash clears
//! the store and the open-snapshot table, so recovered instances refuse
//! stale tokens the same way.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use perseas_txn::{SnapshotToken, TxnError};

/// Process-wide generation counter: every engine instance (fresh init or
/// recovery) gets a distinct generation, so tokens minted before a crash
/// can never alias a snapshot opened after it.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

/// One committed transaction's retained before-images.
#[derive(Debug, Clone)]
pub(crate) struct CommittedVersion {
    /// Commit sequence (1-based, dense, store-local).
    pub seq: u64,
    /// `(region index, offset, before-image)` in undo-log order.
    pub records: Vec<(usize, usize, Vec<u8>)>,
    /// Total payload bytes across `records`.
    pub bytes: usize,
}

/// What one store operation evicted, for trace/metrics emission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Evicted {
    /// Versions removed.
    pub versions: usize,
    /// Payload bytes removed.
    pub bytes: usize,
}

/// The bounded version store plus the open-snapshot table.
#[derive(Debug)]
pub(crate) struct MvccState {
    /// Retained versions, ascending by `seq`.
    versions: VecDeque<CommittedVersion>,
    /// Total payload bytes across `versions`.
    bytes: usize,
    /// Highest commit sequence ever removed from the store: snapshots
    /// pinned strictly below this can no longer be reconstructed.
    floor_seq: u64,
    /// Sequence of the most recent captured commit.
    cur_seq: u64,
    /// Open snapshots: id → pinned sequence.
    open: BTreeMap<u64, u64>,
    next_snap_id: u64,
    gen: u64,
    max_bytes: usize,
    max_entries: usize,
}

impl MvccState {
    pub fn new(max_bytes: usize, max_entries: usize) -> MvccState {
        MvccState {
            versions: VecDeque::new(),
            bytes: 0,
            floor_seq: 0,
            cur_seq: 0,
            open: BTreeMap::new(),
            next_snap_id: 1,
            gen: NEXT_GEN.fetch_add(1, Ordering::Relaxed),
            max_bytes,
            max_entries,
        }
    }

    /// Number of snapshots currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Retained versions.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// Retained payload bytes.
    pub fn version_bytes(&self) -> usize {
        self.bytes
    }

    /// The reconstruction floor (see [`MvccState::floor_seq`]).
    pub fn floor(&self) -> u64 {
        self.floor_seq
    }

    /// Clears everything volatile on a crash: retained versions are gone
    /// and every open snapshot is forgotten, so stale tokens fail typed.
    pub fn clear(&mut self) {
        self.versions.clear();
        self.bytes = 0;
        self.floor_seq = self.cur_seq;
        self.open.clear();
    }

    /// Opens a snapshot pinned at the current sequence.
    pub fn begin(&mut self) -> SnapshotToken {
        let id = self.next_snap_id;
        self.next_snap_id += 1;
        self.open.insert(id, self.cur_seq);
        SnapshotToken::from_raw(id, self.cur_seq, self.gen)
    }

    /// Closes a snapshot (idempotent) and prunes versions no open
    /// snapshot needs any more.
    pub fn end(&mut self, token: SnapshotToken) -> Evicted {
        if token.generation() == self.gen {
            self.open.remove(&token.id());
        }
        self.prune()
    }

    /// Checks that `token` still names a live, reconstructable snapshot.
    ///
    /// # Errors
    ///
    /// [`TxnError::SnapshotTooOld`] when the token predates a crash, was
    /// already closed, or is pinned below the eviction floor.
    pub fn validate(&self, token: SnapshotToken) -> Result<u64, TxnError> {
        let live =
            token.generation() == self.gen && self.open.get(&token.id()) == Some(&token.read_seq());
        if live && token.read_seq() >= self.floor_seq {
            Ok(token.read_seq())
        } else {
            Err(TxnError::SnapshotTooOld {
                read_seq: token.read_seq(),
                floor_seq: self.floor_seq,
            })
        }
    }

    /// Retains one committed transaction's before-images and enforces the
    /// retention budgets. Returns the commit's sequence and whatever the
    /// budgets evicted.
    pub fn capture(&mut self, records: Vec<(usize, usize, Vec<u8>)>) -> (u64, Evicted) {
        self.cur_seq += 1;
        let seq = self.cur_seq;
        let bytes = records.iter().map(|(_, _, b)| b.len()).sum();
        self.bytes += bytes;
        self.versions.push_back(CommittedVersion {
            seq,
            records,
            bytes,
        });
        let mut evicted = self.prune();
        // Budget pressure evicts oldest-first *past* open snapshots:
        // their next read fails typed rather than serving wrong bytes.
        while self.versions.len() > self.max_entries
            || (self.bytes > self.max_bytes && self.versions.len() > 1)
        {
            self.pop_front(&mut evicted);
        }
        if self.bytes > self.max_bytes {
            // A single commit larger than the whole budget: retain it
            // anyway iff someone may still need it, else drop it too.
            let needed = self.open.values().any(|&pin| pin < seq);
            if !needed {
                self.pop_front(&mut evicted);
            }
        }
        (seq, evicted)
    }

    /// Overlays onto `buf` (the live bytes of region `region` starting at
    /// `offset`) the before-images of every retained commit newer than
    /// `read_seq`, newest first — reconstructing the committed image at
    /// `read_seq`. Records within one commit apply in reverse log order,
    /// matching the abort path, so overlapping claims resolve to the
    /// oldest before-image.
    pub fn overlay(&self, read_seq: u64, region: usize, offset: usize, buf: &mut [u8]) {
        for v in self.versions.iter().rev() {
            if v.seq <= read_seq {
                break;
            }
            for &(r, roff, ref image) in v.records.iter().rev() {
                if r != region {
                    continue;
                }
                crate::perseas::overlay_bytes(buf, offset, roff, image);
            }
        }
    }

    /// Drops versions older than every open snapshot (they can never be
    /// read again).
    fn prune(&mut self) -> Evicted {
        let horizon = self.open.values().copied().min().unwrap_or(self.cur_seq);
        let mut evicted = Evicted::default();
        while self.versions.front().is_some_and(|v| v.seq <= horizon) {
            self.pop_front(&mut evicted);
        }
        evicted
    }

    fn pop_front(&mut self, evicted: &mut Evicted) {
        if let Some(v) = self.versions.pop_front() {
            self.bytes -= v.bytes;
            self.floor_seq = self.floor_seq.max(v.seq);
            evicted.versions += 1;
            evicted.bytes += v.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MvccState {
        MvccState::new(1 << 20, 1 << 10)
    }

    #[test]
    fn tokens_pin_the_capture_sequence() {
        let mut s = store();
        assert_eq!(s.capture(vec![(0, 0, vec![0; 4])]).0, 1);
        let t = s.begin();
        assert_eq!(t.read_seq(), 1);
        assert_eq!(s.validate(t).unwrap(), 1);
        assert_eq!(s.capture(vec![(0, 0, vec![9; 4])]).0, 2);
        // Still valid: version 2's before-image is retained for t.
        assert_eq!(s.validate(t).unwrap(), 1);
        s.end(t);
        assert!(s.validate(t).is_err(), "closed tokens are refused");
    }

    #[test]
    fn overlay_reconstructs_older_images() {
        let mut s = store();
        let t0 = s.begin(); // before any commit
        s.capture(vec![(0, 2, vec![0, 0, 0])]); // commit wrote [2,5)
        let t1 = s.begin();
        s.capture(vec![(0, 4, vec![1, 1])]); // commit wrote [4,6)
                                             // Live bytes after both commits:
        let live = [7u8, 7, 1, 1, 2, 2, 7, 7];
        let mut buf = live;
        s.overlay(t1.read_seq(), 0, 0, &mut buf);
        assert_eq!(buf, [7, 7, 1, 1, 1, 1, 7, 7], "only commit 2 undone");
        let mut buf = live;
        s.overlay(t0.read_seq(), 0, 0, &mut buf);
        assert_eq!(buf, [7, 7, 0, 0, 0, 1, 7, 7], "both commits undone");
        // Partial window into the region.
        let mut buf = [1u8, 2, 2];
        s.overlay(t0.read_seq(), 0, 3, &mut buf);
        assert_eq!(buf, [0, 0, 1]);
        // Other regions are untouched.
        let mut buf = live;
        s.overlay(t0.read_seq(), 1, 0, &mut buf);
        assert_eq!(buf, live);
    }

    #[test]
    fn records_within_a_commit_apply_in_reverse() {
        let mut s = store();
        let t = s.begin();
        // One commit logged two overlapping claims: the first (oldest)
        // record holds the true pre-transaction bytes.
        s.capture(vec![(0, 0, vec![5, 5, 5, 5]), (0, 2, vec![8, 8])]);
        let mut buf = [9u8; 4];
        s.overlay(t.read_seq(), 0, 0, &mut buf);
        assert_eq!(buf, [5, 5, 5, 5], "oldest record wins on overlap");
    }

    #[test]
    fn prune_keeps_only_what_open_snapshots_need() {
        let mut s = store();
        s.capture(vec![(0, 0, vec![1; 8])]);
        assert_eq!(s.version_count(), 0, "no snapshot open: pruned at once");
        let t = s.begin();
        s.capture(vec![(0, 0, vec![2; 8])]);
        s.capture(vec![(0, 0, vec![3; 8])]);
        assert_eq!(s.version_count(), 2, "both needed by t");
        let e = s.end(t);
        assert_eq!(
            e,
            Evicted {
                versions: 2,
                bytes: 16
            }
        );
        assert_eq!(s.version_bytes(), 0);
    }

    #[test]
    fn budget_pressure_raises_the_floor_past_open_snapshots() {
        let mut s = MvccState::new(20, 1024);
        let t = s.begin();
        s.capture(vec![(0, 0, vec![1; 16])]);
        let (_, e) = s.capture(vec![(0, 0, vec![2; 16])]);
        assert_eq!(e.versions, 1, "byte budget evicted the oldest");
        assert!(
            matches!(
                s.validate(t),
                Err(TxnError::SnapshotTooOld {
                    read_seq: 0,
                    floor_seq: 1
                })
            ),
            "snapshot below the floor must fail typed"
        );
        // A fresh snapshot above the floor still works.
        let t2 = s.begin();
        assert!(s.validate(t2).is_ok());
    }

    #[test]
    fn entry_budget_evicts_oldest_first() {
        let mut s = MvccState::new(1 << 20, 2);
        let t = s.begin();
        for i in 1..=3u64 {
            s.capture(vec![(0, 0, vec![i as u8; 4])]);
        }
        assert_eq!(s.version_count(), 2);
        assert_eq!(s.floor(), 1);
        assert!(s.validate(t).is_err());
    }

    #[test]
    fn crash_clear_invalidates_every_open_snapshot() {
        let mut s = store();
        let t = s.begin();
        s.capture(vec![(0, 0, vec![1; 4])]);
        s.clear();
        assert_eq!(s.open_count(), 0);
        assert_eq!(s.version_bytes(), 0);
        assert!(s.validate(t).is_err());
        // Generations differ across instances, so a token from another
        // instance can never validate here even with matching ids.
        let mut other = store();
        let alien = other.begin();
        assert!(s.validate(alien).is_err());
    }
}
