//! The concurrent transaction engine.
//!
//! With [`PerseasConfig::with_concurrent`](crate::PerseasConfig::with_concurrent)
//! enabled, [`Perseas::begin_concurrent`] hands out [`TxnToken`]s for many
//! simultaneously open transactions. A byte-range conflict table serializes
//! only genuinely overlapping `set_range` claims (first-claimer-wins; the
//! loser gets [`TxnError::Conflict`] and stays open), and non-conflicting
//! transactions commit together through the batched, vectored pipeline as
//! one *group commit*: one undo fan-out, one data fan-out, and one
//! commit-record fan-out amortized across the whole group.
//!
//! Durability stays per-transaction. The metadata segment's commit record
//! at `OFF_COMMIT` becomes a *watermark* (every id at or below it is
//! committed), and each transaction committed above the watermark claims
//! one 8-byte, packet-atomic slot in the commit table appended to the
//! metadata segment. The commit fan-out writes the group's slots first and
//! the watermark last, all in one vectored write per mirror, so a torn
//! delivery durably commits exactly a prefix of the group — recovery then
//! resolves each transaction independently from its slot.

use std::collections::{BTreeMap, BTreeSet};

use perseas_rnram::{plan_transfer, RemoteMemory, SegmentId};
use perseas_txn::{RegionId, TxnError};

use crate::layout::{
    commit_table_offset, encode_group_header, UndoRecord, GROUP_HEADER_SIZE, OFF_COMMIT,
};
use crate::perseas::{
    coalesce, first_uncovered, push_range, unavailable, MirrorBatches, Perseas, Phase,
};
use crate::trace::TraceEvent;

/// Handle to one open concurrent transaction.
///
/// Tokens are plain copyable ids: they carry no borrow of the instance, so
/// any number may be open at once and they can be moved freely across
/// threads (the [`ConcurrentPerseas`](crate::ConcurrentPerseas) layer wraps
/// them in RAII handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnToken {
    id: u64,
}

impl TxnToken {
    pub(crate) fn new(id: u64) -> Self {
        TxnToken { id }
    }

    /// The transaction id this token names.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// One open concurrent transaction.
pub(crate) struct ConcTxn {
    /// Declared writable ranges: `(region index, start, len)`.
    pub(crate) declared: Vec<(usize, usize, usize)>,
    /// This transaction's encoded undo records (the local rollback source
    /// of truth; copied into the shared arena only at commit time).
    pub(crate) undo: Vec<u8>,
    /// Placement `(start, len)` in the undo-arena shadow, set when a
    /// commit attempt stages the records.
    pub(crate) extent: Option<(usize, usize)>,
    /// `true` once a commit attempt has pushed the arena (and hence this
    /// transaction's records) to the mirrors: an abort must then tombstone
    /// the remote records.
    pub(crate) undo_remote: bool,
    /// `true` once a commit attempt has started pushing data ranges.
    pub(crate) mirrors_dirty: bool,
    /// `true` once [`Perseas::prepare_t`] has shipped this transaction's
    /// records and data to the mirrors: the transaction is then frozen
    /// (no further claims or writes) and its commit is record-only.
    pub(crate) prepared: bool,
}

impl ConcTxn {
    fn new() -> Self {
        ConcTxn {
            declared: Vec::new(),
            undo: Vec::new(),
            extent: None,
            undo_remote: false,
            mirrors_dirty: false,
            prepared: false,
        }
    }
}

/// Shared state of the concurrent engine.
pub(crate) struct ConcState {
    /// Open transactions by id.
    pub(crate) txns: BTreeMap<u64, ConcTxn>,
    /// Per-region conflict table: claim start → `(end, owner id)`. The
    /// claims of one region are always pairwise disjoint.
    pub(crate) claims: Vec<BTreeMap<usize, (usize, u64)>>,
    /// Ids committed above the watermark (still holding a table slot).
    pub(crate) committed_above: BTreeSet<u64>,
    /// Ids resolved without a durable trace (aborted, or committed empty)
    /// above the watermark — they gate its advance but hold no slot.
    pub(crate) resolved_above: BTreeSet<u64>,
    /// Local image of the commit table (slot index → id; an id at or
    /// below the watermark marks a free slot).
    pub(crate) slot_ids: Vec<u64>,
    /// High-water mark of the undo arena (records live in
    /// `[GROUP_HEADER_SIZE, undo_hw)`); resets when no staged transaction
    /// remains.
    pub(crate) undo_hw: usize,
    /// The implicit token bound by the legacy single-transaction facade.
    pub(crate) legacy_token: Option<u64>,
}

impl ConcState {
    pub(crate) fn new(slots: usize) -> Self {
        ConcState {
            txns: BTreeMap::new(),
            claims: Vec::new(),
            committed_above: BTreeSet::new(),
            resolved_above: BTreeSet::new(),
            slot_ids: vec![0; slots],
            undo_hw: GROUP_HEADER_SIZE,
            legacy_token: None,
        }
    }

    /// Drops all open transactions and claims (crash path).
    pub(crate) fn clear(&mut self) {
        self.txns.clear();
        self.claims.clear();
        self.committed_above.clear();
        self.resolved_above.clear();
        self.undo_hw = GROUP_HEADER_SIZE;
        self.legacy_token = None;
    }
}

impl<M: RemoteMemory> Perseas<M> {
    /// Opens a new concurrent transaction and returns its token. Any
    /// number may be open at once; each sees the committed image plus its
    /// own writes.
    ///
    /// # Errors
    ///
    /// Fails when the concurrent engine is off, before publication, after
    /// a crash, or `Unavailable` below the commit quorum.
    pub fn begin_concurrent(&mut self) -> Result<TxnToken, TxnError> {
        self.ensure_concurrent()?;
        self.ensure_phase(Phase::Ready)?;
        self.check_commit_quorum()?;
        while self.conc.claims.len() < self.regions.len() {
            self.conc.claims.push(BTreeMap::new());
        }
        let id = self.next_txn_id;
        self.next_txn_id += 1;
        self.conc.txns.insert(id, ConcTxn::new());
        self.emit(TraceEvent::TxnBegin { id });
        Ok(TxnToken { id })
    }

    /// `true` while the token's transaction is open.
    pub fn txn_is_open(&self, t: TxnToken) -> bool {
        self.conc.txns.contains_key(&t.id)
    }

    /// Number of concurrently open transactions.
    pub fn open_txn_count(&self) -> usize {
        self.conc.txns.len()
    }

    /// Declares `[offset, offset+len)` of `region` writable by the
    /// token's transaction: the range is claimed in the conflict table
    /// and its before-image appended to the transaction's undo records.
    ///
    /// # Errors
    ///
    /// [`TxnError::Conflict`] when the range overlaps a claim of another
    /// open transaction (first-claimer-wins; this transaction stays open
    /// and keeps every claim it already holds). Also fails on unknown
    /// tokens, bad regions/bounds, or after a crash.
    pub fn set_range_t(
        &mut self,
        t: TxnToken,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> Result<(), TxnError> {
        self.ensure_concurrent()?;
        self.ensure_phase(Phase::Ready)?;
        let id = t.id;
        match self.conc.txns.get(&id) {
            None => return Err(TxnError::NoActiveTransaction),
            Some(txn) if txn.prepared => return Err(frozen(id)),
            Some(_) => {}
        }
        let ri = self.check_region_range(region, offset, len)?;
        if len == 0 {
            return Ok(());
        }
        if let Err(holder) = self.claim_range(ri, offset, len, id) {
            self.stats.conflicts += 1;
            self.emit(TraceEvent::TxnConflict {
                id,
                holder,
                region: ri as u32,
                offset,
                len,
            });
            return Err(TxnError::Conflict {
                region,
                offset,
                len,
                holder,
            });
        }
        self.log_before_image(id, ri, offset, len);
        Ok(())
    }

    /// Declares several ranges in one step, all-or-nothing: every range
    /// is bounds- and conflict-checked before any is claimed, so on error
    /// no range of the batch is declared.
    ///
    /// # Errors
    ///
    /// Fails like [`Perseas::set_range_t`].
    pub fn set_ranges_t(
        &mut self,
        t: TxnToken,
        ranges: &[(RegionId, usize, usize)],
    ) -> Result<(), TxnError> {
        self.ensure_concurrent()?;
        self.ensure_phase(Phase::Ready)?;
        let id = t.id;
        match self.conc.txns.get(&id) {
            None => return Err(TxnError::NoActiveTransaction),
            Some(txn) if txn.prepared => return Err(frozen(id)),
            Some(_) => {}
        }
        let mut checked = Vec::with_capacity(ranges.len());
        for &(region, offset, len) in ranges {
            let ri = self.check_region_range(region, offset, len)?;
            if len == 0 {
                continue;
            }
            if let Some(holder) = self.peek_conflict(ri, offset, len, id) {
                self.stats.conflicts += 1;
                self.emit(TraceEvent::TxnConflict {
                    id,
                    holder,
                    region: ri as u32,
                    offset,
                    len,
                });
                return Err(TxnError::Conflict {
                    region,
                    offset,
                    len,
                    holder,
                });
            }
            checked.push((ri, offset, len));
        }
        // Intra-batch overlaps are same-owner by construction, so none of
        // these claims can fail now.
        for &(ri, offset, len) in &checked {
            self.claim_range(ri, offset, len, id)
                .expect("batch pre-checked against all other owners");
            self.log_before_image(id, ri, offset, len);
        }
        Ok(())
    }

    /// Writes `data` at `offset` of `region` under the token's
    /// transaction; the range must be covered by prior claims.
    ///
    /// # Errors
    ///
    /// Fails on unknown tokens, bounds violations, or undeclared ranges.
    pub fn write_t(
        &mut self,
        t: TxnToken,
        region: RegionId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), TxnError> {
        self.ensure_concurrent()?;
        if self.phase == Phase::Crashed {
            return Err(TxnError::Crashed);
        }
        let ri = self.check_region_range(region, offset, data.len())?;
        let txn = self
            .conc
            .txns
            .get(&t.id)
            .ok_or(TxnError::NoActiveTransaction)?;
        if txn.prepared {
            return Err(frozen(t.id));
        }
        if let Some(bad) = first_uncovered(&txn.declared, ri, offset, data.len()) {
            return Err(TxnError::RangeNotDeclared {
                region,
                offset: bad,
            });
        }
        self.regions[ri][offset..offset + data.len()].copy_from_slice(data);
        self.cfg.mem_cost.charge_memcpy(&self.clock, data.len());
        Ok(())
    }

    /// Ships the token's transaction to the mirrors ahead of its commit:
    /// one vectored fan-out per mirror carries the arena header, the
    /// transaction's undo records, and its data ranges — in WAL order, so
    /// a torn delivery can always be rolled back. A prepared transaction
    /// is frozen (no further claims or writes) and its later commit is a
    /// single 8-byte-record fan-out; that is the stage a group commit
    /// amortizes across members. Preparing is idempotent, preparing an
    /// empty transaction is a local no-op, and an abort after prepare
    /// restores the shipped ranges and tombstones the records exactly
    /// like an abort after a failed commit attempt.
    ///
    /// # Errors
    ///
    /// Fails on unknown tokens, below quorum, or when a mirror write
    /// fails. On error before the fan-out the transaction is untouched; a
    /// crash mid-fan-out leaves only rollback-covered bytes on the
    /// mirrors.
    pub fn prepare_t(&mut self, t: TxnToken) -> Result<(), TxnError> {
        self.ensure_concurrent()?;
        self.ensure_phase(Phase::Ready)?;
        self.check_commit_quorum()?;
        let id = t.id;
        let txn = self
            .conc
            .txns
            .get(&id)
            .ok_or(TxnError::NoActiveTransaction)?;
        if txn.prepared {
            return Ok(());
        }
        if txn.undo.is_empty() {
            self.conc.txns.get_mut(&id).expect("open").prepared = true;
            return Ok(());
        }
        if self.cfg.redo {
            // Redo mode ships the member's after-images to the log
            // instead of staging undo records and data: the transaction
            // is frozen, so the local bytes of its (disjoint) claims are
            // final, and its later commit is record-only exactly as on
            // the undo path. `redo_append` confirms the burst.
            let id_copy = id;
            let ranges = coalesce(&self.conc.txns[&id].declared);
            let writes: Vec<crate::redo::RedoWrite> = ranges
                .iter()
                .map(|&(ri, s, l)| (id_copy, ri, s, l))
                .collect();
            self.redo_append(&writes)?;
            let txn = self.conc.txns.get_mut(&id).expect("open");
            txn.mirrors_dirty = true;
            txn.prepared = true;
            return Ok(());
        }

        // Stage the records in the shared arena, exactly as a commit
        // would, and stamp the header so recovery sees the new reach.
        let new = txn.undo.len();
        let hw = self.conc.undo_hw;
        if hw + new > self.undo_shadow.len() {
            self.undo_off = hw;
            self.grow_undo(hw + new)?;
        }
        let txn = self.conc.txns.get_mut(&id).expect("open");
        self.undo_shadow[hw..hw + new].copy_from_slice(&txn.undo);
        txn.extent = Some((hw, new));
        let at = hw + new;
        self.conc.undo_hw = at;
        self.undo_off = at;
        let header = encode_group_header((at - GROUP_HEADER_SIZE) as u64);
        self.undo_shadow[..GROUP_HEADER_SIZE].copy_from_slice(&header);
        self.cfg
            .mem_cost
            .charge_memcpy(&self.clock, new + GROUP_HEADER_SIZE);
        self.stats.add_local_copy(new + GROUP_HEADER_SIZE);

        // Header, records, then data, all in one vectored write per
        // mirror: ranges apply in order, so any torn prefix still honours
        // write-ahead logging. Data ships exactly as declared — see the
        // widening note in `commit_group`.
        let ranges = coalesce(&self.conc.txns[&id].declared);
        let lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                let mut list = vec![
                    (m.undo.id, 0, self.undo_shadow[..GROUP_HEADER_SIZE].to_vec()),
                    (m.undo.id, hw, self.undo_shadow[hw..at].to_vec()),
                ];
                list.extend(
                    ranges
                        .iter()
                        .map(|&(ri, s, l)| (m.db[ri].id, s, self.regions[ri][s..s + l].to_vec())),
                );
                (mi, list)
            })
            .collect();
        self.fan_out_vectored(lists)?;
        // Prepare promises the staged records and data are *on* the
        // mirrors, so the barrier belongs here, not at the later commit.
        self.flush_mirrors()?;
        let txn = self.conc.txns.get_mut(&id).expect("open");
        txn.undo_remote = true;
        txn.mirrors_dirty = true;
        txn.prepared = true;
        Ok(())
    }

    /// Commits the token's transaction alone (a group of one).
    ///
    /// # Errors
    ///
    /// Fails like [`Perseas::commit_group`].
    pub fn commit_t(&mut self, t: TxnToken) -> Result<(), TxnError> {
        self.commit_group(&[t])
    }

    /// Commits several open transactions as one group: one undo fan-out,
    /// one data fan-out, and one commit-record fan-out per mirror cover
    /// the whole group. Durability stays per-transaction — the vectored
    /// commit write carries each transaction's 8-byte table slot (one
    /// packet each) before the watermark, so a torn delivery durably
    /// commits exactly a prefix of the group and recovery resolves each
    /// member independently.
    ///
    /// # Errors
    ///
    /// Fails on unknown tokens, below quorum, or when the commit table
    /// has no free slot per transaction (`Unavailable`; resolve older
    /// transactions first). An error raised *before* the durability point
    /// leaves every member open; [`TxnError::CommitInDoubt`] means the
    /// whole group is durable on the survivors and completed locally.
    pub fn commit_group(&mut self, tokens: &[TxnToken]) -> Result<(), TxnError> {
        self.ensure_concurrent()?;
        self.ensure_phase(Phase::Ready)?;
        self.check_commit_quorum()?;
        // Group-commit timing exists only with metrics installed; the
        // clocks are read, never advanced.
        let timer = self
            .metrics
            .as_ref()
            .map(|_| (self.clock.now(), std::time::Instant::now()));
        let mut ids: Vec<u64> = tokens.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.is_empty() {
            return Ok(());
        }
        for id in &ids {
            if !self.conc.txns.contains_key(id) {
                return Err(TxnError::NoActiveTransaction);
            }
        }
        let nonempty: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|id| !self.conc.txns[id].undo.is_empty())
            .collect();
        if nonempty.is_empty() {
            // Nothing was written: resolve every member locally, no
            // durable trace needed.
            self.finish_group(&ids, &[], &[], self.last_committed, 0, 0, 0);
            self.record_group_latency(timer);
            return Ok(());
        }

        // One commit-table slot per non-empty member. A slot is free once
        // the id it holds is covered by the *currently durable* watermark
        // — never the one this group is about to publish, since a torn
        // delivery could then overwrite a committed id recovery still
        // needs.
        let free: Vec<usize> = self
            .conc
            .slot_ids
            .iter()
            .enumerate()
            .filter(|&(_, &sid)| sid <= self.last_committed)
            .map(|(i, _)| i)
            .take(nonempty.len())
            .collect();
        if free.len() < nonempty.len() {
            return Err(TxnError::Unavailable(format!(
                "commit table full: {} free slots for {} transactions — \
                 resolve older open transactions so the watermark can advance",
                free.len(),
                nonempty.len()
            )));
        }

        // Stage every not-yet-prepared member's records in the shared
        // undo arena and stamp the group header so recovery knows how far
        // the arena reaches. Prepared members are already staged and
        // durable on the mirrors; their commit needs only a record.
        let unstaged: Vec<u64> = nonempty
            .iter()
            .copied()
            .filter(|id| !self.conc.txns[id].prepared)
            .collect();
        let total_new: usize = unstaged
            .iter()
            .map(|id| self.conc.txns[id].undo.len())
            .sum();
        if !self.cfg.redo {
            let hw = self.conc.undo_hw;
            if hw + total_new > self.undo_shadow.len() {
                // `grow_undo` re-pushes `[0, undo_off)`: keep the live arena
                // prefix (header included) intact on the larger segment.
                self.undo_off = hw;
                self.grow_undo(hw + total_new)?;
            }
            let mut at = hw;
            for id in &unstaged {
                let txn = self.conc.txns.get_mut(id).expect("member open");
                let len = txn.undo.len();
                self.undo_shadow[at..at + len].copy_from_slice(&txn.undo);
                txn.extent = Some((at, len));
                at += len;
            }
            self.conc.undo_hw = at;
            self.undo_off = at;
            if !unstaged.is_empty() {
                let header = encode_group_header((at - GROUP_HEADER_SIZE) as u64);
                self.undo_shadow[..GROUP_HEADER_SIZE].copy_from_slice(&header);
                self.cfg
                    .mem_cost
                    .charge_memcpy(&self.clock, total_new + GROUP_HEADER_SIZE);
                self.stats.add_local_copy(total_new + GROUP_HEADER_SIZE);
            }
        }

        // New watermark: ids are dense, so it advances while the next id
        // is resolved by this group or an earlier one.
        let group: BTreeSet<u64> = ids.iter().copied().collect();
        let mut new_w = self.last_committed;
        while self.conc.committed_above.contains(&(new_w + 1))
            || self.conc.resolved_above.contains(&(new_w + 1))
            || group.contains(&(new_w + 1))
        {
            new_w += 1;
        }

        // The durability fan-out: each member's table slot (one 8-byte,
        // packet-atomic write each), then the watermark last, all in one
        // vectored write per mirror. Slot offsets are end-relative and
        // per-mirror: every mirror's metadata segment carries its own
        // table at the tail.
        let max_id = *nonempty.last().expect("nonempty");
        let slots = self.cfg.commit_slots;
        let meta_lists: MirrorBatches = self
            .mirrors
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_healthy())
            .map(|(mi, m)| {
                let base = commit_table_offset(m.meta.len, slots);
                let mut list: Vec<(SegmentId, usize, Vec<u8>)> = nonempty
                    .iter()
                    .zip(&free)
                    .map(|(id, &slot)| (m.meta.id, base + slot * 8, id.to_le_bytes().to_vec()))
                    .collect();
                list.push((m.meta.id, OFF_COMMIT, new_w.to_le_bytes().to_vec()));
                (mi, list)
            })
            .collect();

        let undo_bytes = if self.cfg.redo { 0 } else { self.conc.undo_hw };
        let mut batch_ranges = 0;
        let mut batch_bytes = 0;
        if !unstaged.is_empty() && self.cfg.redo {
            // Redo mode: one coalesced after-image batch for every
            // unprepared member, appended (and confirmed) as a single
            // log burst. Prepared members' records are already in the
            // log; claims are disjoint, so each member's local bytes
            // are its own.
            let mut writes: Vec<crate::redo::RedoWrite> = Vec::new();
            for id in &unstaged {
                for &(ri, s, l) in coalesce(&self.conc.txns[id].declared).iter() {
                    writes.push((*id, ri, s, l));
                }
            }
            let (records, bytes) = self.redo_append(&writes)?;
            batch_ranges = records;
            batch_bytes = bytes;
            for id in &unstaged {
                // Past the append the members' after-images rest on the
                // mirrors, so their aborts must tombstone the log.
                let txn = self.conc.txns.get_mut(id).expect("member open");
                txn.mirrors_dirty = true;
            }
        } else if !unstaged.is_empty() {
            let aligned = self.cfg.aligned_memcpy;
            let undo_lists: MirrorBatches = self
                .mirrors
                .iter()
                .enumerate()
                .filter(|(_, m)| m.is_healthy())
                .map(|(mi, m)| {
                    let (off, len) = if aligned {
                        let p =
                            plan_transfer(m.undo.base_addr, 0, undo_bytes, self.undo_shadow.len());
                        (p.offset, p.len)
                    } else {
                        (0, undo_bytes)
                    };
                    (
                        mi,
                        vec![(m.undo.id, off, self.undo_shadow[off..off + len].to_vec())],
                    )
                })
                .collect();

            // The shared data update: the coalesced union of every
            // unprepared member's declared ranges (claims are disjoint
            // across members, so the union is exact; prepared members'
            // data is already on the mirrors). Unlike the
            // single-transaction path, the ranges are shipped EXACTLY as
            // declared — alignment widening would read neighbouring bytes
            // from the local image, and under concurrency those may be
            // another open transaction's uncommitted writes, which must
            // never reach a mirror.
            let mut declared_all = Vec::new();
            for id in &unstaged {
                declared_all.extend(self.conc.txns[id].declared.iter().copied());
            }
            let ranges = coalesce(&declared_all);
            let db_lists: MirrorBatches = self
                .mirrors
                .iter()
                .enumerate()
                .filter(|(_, m)| m.is_healthy())
                .map(|(mi, m)| {
                    (
                        mi,
                        ranges
                            .iter()
                            .map(|&(ri, s, len)| {
                                (m.db[ri].id, s, self.regions[ri][s..s + len].to_vec())
                            })
                            .collect(),
                    )
                })
                .collect();
            (batch_ranges, batch_bytes) = db_lists
                .first()
                .map(|(_, l)| {
                    (
                        l.len(),
                        l.iter().map(|(_, _, d): &(_, _, Vec<u8>)| d.len()).sum(),
                    )
                })
                .unwrap_or((0, 0));
            self.emit(TraceEvent::CommitBatch {
                id: max_id,
                mirrors: db_lists.len(),
                ranges: batch_ranges,
                bytes: batch_bytes,
                undo_bytes,
            });

            // Phase 1: the arena. Past this fan-out the members' records
            // may rest on the mirrors, so their aborts must tombstone.
            self.fan_out_vectored(undo_lists)?;
            for id in &unstaged {
                let txn = self.conc.txns.get_mut(id).expect("member open");
                txn.undo_remote = true;
                txn.mirrors_dirty = true;
            }
            // Phase 2: the data.
            self.fan_out_vectored(db_lists)?;
            // Ack barrier: the arena and data fan-outs may be posted
            // unacknowledged on pipelined transports; all of them must be
            // confirmed before any member's commit record is published.
            self.flush_mirrors()?;
        }
        // Phase 3: the durability point. The record write is posted too,
        // so its own barrier follows before the group is reported
        // committed.
        match self
            .fan_out_vectored(meta_lists)
            .and_then(|()| self.flush_mirrors())
            .map_err(|e| self.durability_in_doubt(e, max_id))
        {
            Ok(()) => {
                self.finish_group(
                    &ids,
                    &nonempty,
                    &free,
                    new_w,
                    batch_ranges,
                    batch_bytes,
                    undo_bytes,
                );
                self.record_group_latency(timer);
                Ok(())
            }
            Err(e @ TxnError::CommitInDoubt { .. }) => {
                // The record fan-out visited every mirror: the group is
                // durable on each survivor, merely under-replicated.
                self.finish_group(
                    &ids,
                    &nonempty,
                    &free,
                    new_w,
                    batch_ranges,
                    batch_bytes,
                    undo_bytes,
                );
                self.record_group_latency(timer);
                Err(e)
            }
            // Crashed, or no healthy mirror holds the record reliably:
            // nothing is durable, every member stays open (a crash
            // cleared them already).
            Err(e) => Err(e),
        }
    }

    /// Aborts the token's transaction: the before-images are restored
    /// locally, its claims are released **immediately** (another
    /// transaction may claim the ranges right away), and any trace a
    /// failed commit left on the mirrors is cleaned up — data ranges are
    /// restored first, then the staged arena records are tombstoned so
    /// recovery can never replay the aborted writes.
    ///
    /// # Errors
    ///
    /// Fails on unknown tokens, or if the mirror cleanup after a failed
    /// commit drops the set below quorum. The local abort (rollback,
    /// claim release, slot-free) has completed by then.
    pub fn abort_t(&mut self, t: TxnToken) -> Result<(), TxnError> {
        self.ensure_concurrent()?;
        if self.phase == Phase::Crashed {
            return Err(TxnError::Crashed);
        }
        let id = t.id;
        let txn = self
            .conc
            .txns
            .remove(&id)
            .ok_or(TxnError::NoActiveTransaction)?;
        if self.conc.legacy_token == Some(id) {
            self.conc.legacy_token = None;
        }
        // Restore in reverse, so overlapping claims resolve to the oldest
        // (pre-transaction) image.
        let mut recs = Vec::new();
        let mut off = 0;
        while off < txn.undo.len() {
            let (rec, payload) =
                UndoRecord::decode_at(&txn.undo, off).expect("local undo log is never torn");
            off += rec.encoded_len();
            recs.push((rec, payload));
        }
        for (rec, payload) in recs.iter().rev() {
            let ri = rec.region as usize;
            let o = rec.offset as usize;
            let bytes = txn.undo[payload.clone()].to_vec();
            self.regions[ri][o..o + bytes.len()].copy_from_slice(&bytes);
            self.cfg.mem_cost.charge_memcpy(&self.clock, bytes.len());
            self.stats.add_local_copy(bytes.len());
        }
        self.release_claims(id);
        self.conc.resolved_above.insert(id);
        self.stats.aborts += 1;
        self.emit(TraceEvent::TxnAborted { id });

        // Mirror cleanup after a failed commit attempt: restore the data
        // ranges *before* tombstoning the records — until the tombstones
        // land, the live records still let recovery restore the
        // before-images of whatever the failed attempt propagated.
        let mut result = Ok(());
        if self.cfg.redo {
            // The log is append-only: a tombstone record marks every
            // earlier after-image of this id dead for replay.
            if txn.mirrors_dirty {
                result = self.redo_abort_mark(id);
            }
        } else {
            if txn.mirrors_dirty {
                result = self.restore_mirror_ranges(&coalesce(&txn.declared));
            }
            if result.is_ok() {
                if let (Some((start, len)), true) = (txn.extent, txn.undo_remote) {
                    result = self.tombstone_extent(start, len);
                }
            }
        }
        self.maybe_reset_arena();
        result
    }

    /// Appends the claim and before-image of a validated, conflict-free
    /// range to the transaction's undo records.
    fn log_before_image(&mut self, id: u64, ri: usize, offset: usize, len: usize) {
        let rec = UndoRecord {
            txn_id: id,
            region: ri as u32,
            offset: offset as u64,
            len: len as u64,
        };
        let total = rec.encoded_len();
        let payload = self.regions[ri][offset..offset + len].to_vec();
        let txn = self.conc.txns.get_mut(&id).expect("claim holder open");
        let at = txn.undo.len();
        txn.undo.resize(at + total, 0);
        rec.encode_into(&mut txn.undo, at, &payload);
        txn.declared.push((ri, offset, len));
        self.cfg.mem_cost.charge_memcpy(&self.clock, total);
        self.stats.add_local_copy(len);
        self.stats.set_ranges += 1;
        self.emit(TraceEvent::SetRange {
            id,
            region: ri as u32,
            offset,
            len,
        });
    }

    /// The other open transaction holding a claim overlapping
    /// `[start, start+len)` of region `ri`, if any.
    fn peek_conflict(&self, ri: usize, start: usize, len: usize, id: u64) -> Option<u64> {
        let end = start + len;
        let map = self.conc.claims.get(ri)?;
        // Claims are disjoint, so both starts and ends are sorted: walk
        // backwards from the last claim starting before `end` and stop at
        // the first that ends at or before `start`.
        for (_, &(e, owner)) in map.range(..end).rev() {
            if e <= start {
                break;
            }
            if owner != id {
                return Some(owner);
            }
        }
        None
    }

    /// Claims `[start, start+len)` of region `ri` for transaction `id`,
    /// merging with its own adjacent or overlapping claims. Returns the
    /// holder's id if another open transaction's claim overlaps.
    fn claim_range(&mut self, ri: usize, start: usize, len: usize, id: u64) -> Result<(), u64> {
        if let Some(holder) = self.peek_conflict(ri, start, len, id) {
            return Err(holder);
        }
        let mut new_s = start;
        let mut new_e = start + len;
        let map = &mut self.conc.claims[ri];
        let merge: Vec<usize> = map
            .range(..=new_e)
            .rev()
            .take_while(|&(_, &(e, _))| e >= new_s)
            .filter(|&(_, &(_, owner))| owner == id)
            .map(|(&s, _)| s)
            .collect();
        for s in merge {
            let (e, _) = map.remove(&s).expect("claim listed");
            new_s = new_s.min(s);
            new_e = new_e.max(e);
        }
        map.insert(new_s, (new_e, id));
        Ok(())
    }

    /// Drops every claim transaction `id` holds, in every region.
    fn release_claims(&mut self, id: u64) {
        for map in &mut self.conc.claims {
            map.retain(|_, &mut (_, owner)| owner != id);
        }
    }

    /// Records the group-commit latency histograms from a timer captured
    /// at `commit_group` entry (`None` when metrics are not installed).
    fn record_group_latency(
        &self,
        timer: Option<(perseas_simtime::SimInstant, std::time::Instant)>,
    ) {
        if let (Some(m), Some((sim0, wall0))) = (self.metrics.as_ref(), timer) {
            m.record_group_commit(self.clock.now().duration_since(sim0), wall0.elapsed());
        }
    }

    /// Applies a successful (or in-doubt) group commit locally: slots,
    /// watermark, transaction resolution, claims, stats, and events.
    #[allow(clippy::too_many_arguments)]
    fn finish_group(
        &mut self,
        ids: &[u64],
        nonempty: &[u64],
        free: &[usize],
        new_w: u64,
        ranges: usize,
        bytes: usize,
        undo_bytes: usize,
    ) {
        for (id, &slot) in nonempty.iter().zip(free) {
            self.conc.slot_ids[slot] = *id;
        }
        for id in ids {
            if nonempty.contains(id) {
                self.conc.committed_above.insert(*id);
            } else {
                self.conc.resolved_above.insert(*id);
            }
        }
        if new_w > self.last_committed {
            self.last_committed = new_w;
        }
        let w = self.last_committed;
        self.conc.committed_above.retain(|&x| x > w);
        self.conc.resolved_above.retain(|&x| x > w);
        for id in ids {
            let txn = self.conc.txns.remove(id).expect("member open");
            if self.cfg.mvcc && !txn.undo.is_empty() {
                let mut records = Vec::new();
                let mut off = 0;
                while off < txn.undo.len() {
                    let (rec, payload) = UndoRecord::decode_at(&txn.undo, off)
                        .expect("local undo log is never torn");
                    off += rec.encoded_len();
                    records.push((
                        rec.region as usize,
                        rec.offset as usize,
                        txn.undo[payload].to_vec(),
                    ));
                }
                self.capture_version(*id, records);
            }
            let tr = coalesce(&txn.declared);
            let tb = tr.iter().map(|&(_, _, l)| l).sum();
            self.emit(TraceEvent::TxnCommitted {
                id: *id,
                ranges: tr.len(),
                bytes: tb,
            });
            self.release_claims(*id);
            if self.conc.legacy_token == Some(*id) {
                self.conc.legacy_token = None;
            }
        }
        self.stats.commits += ids.len() as u64;
        if !nonempty.is_empty() {
            self.stats.group_commits += 1;
            self.emit(TraceEvent::GroupCommit {
                txns: ids.to_vec(),
                ranges,
                bytes,
                undo_bytes,
            });
        }
        let (healthy, total) = (self.healthy_mirror_count(), self.mirrors.len());
        if healthy < total {
            self.emit(TraceEvent::DegradedCommit {
                id: *ids.last().expect("nonempty group"),
                healthy,
                mirrors: total,
            });
        }
        self.maybe_reset_arena();
    }

    /// Rewrites the records in `[start, start+len)` of the undo arena
    /// with transaction id 0 and pushes the range back to every healthy
    /// mirror, so recovery skips them even if they are the newest thing
    /// in the log. A torn tombstone push is safe either way: the mirror
    /// that missed it is fenced, and rolling the still-live records back
    /// restores before-images the data restore already re-published.
    fn tombstone_extent(&mut self, start: usize, len: usize) -> Result<(), TxnError> {
        let end = start + len;
        let mut off = start;
        while off < end {
            let Some((rec, payload)) = UndoRecord::decode_at(&self.undo_shadow, off) else {
                break;
            };
            let total = rec.encoded_len();
            let bytes = self.undo_shadow[payload].to_vec();
            let dead = UndoRecord { txn_id: 0, ..rec };
            dead.encode_into(&mut self.undo_shadow, off, &bytes);
            off += total;
        }
        self.cfg.mem_cost.charge_memcpy(&self.clock, len);
        let mut any_failed = false;
        for mi in 0..self.mirrors.len() {
            if !self.mirrors[mi].is_healthy() {
                continue;
            }
            self.fault_step()?;
            let m = &mut self.mirrors[mi];
            let undo = m.undo;
            match push_range(
                &mut m.backend,
                undo,
                &self.undo_shadow,
                start,
                len,
                self.cfg.aligned_memcpy,
            ) {
                Ok(()) => self.stats.add_remote_write(len),
                Err(e) if e.is_unavailable() => {
                    self.mark_down(mi, &e);
                    any_failed = true;
                }
                Err(e) => return Err(unavailable(e)),
            }
        }
        self.fence_failed(any_failed)?;
        // The tombstones must be confirmed before the abort completes:
        // recovery must never replay records the caller believes dead.
        self.flush_mirrors()
    }

    /// Resets the undo arena once no open transaction has records staged
    /// in it. Stale bytes above the header are harmless — they belong to
    /// committed, tombstoned, or rolled-back transactions — but resetting
    /// keeps the arena (and the undo fan-out) small.
    fn maybe_reset_arena(&mut self) {
        if self.conc.txns.values().any(|t| t.extent.is_some()) {
            return;
        }
        self.conc.undo_hw = GROUP_HEADER_SIZE;
        self.undo_off = GROUP_HEADER_SIZE;
        if self.undo_shadow.len() >= GROUP_HEADER_SIZE {
            self.undo_shadow[..GROUP_HEADER_SIZE].copy_from_slice(&encode_group_header(0));
        }
    }

    fn ensure_concurrent(&self) -> Result<(), TxnError> {
        if self.cfg.concurrent {
            Ok(())
        } else {
            Err(TxnError::Unavailable(
                "concurrent engine is off; enable it with PerseasConfig::with_concurrent".into(),
            ))
        }
    }
}

/// The error for claim or write attempts on a prepared (frozen)
/// transaction.
fn frozen(id: u64) -> TxnError {
    TxnError::Unavailable(format!(
        "transaction {id} is prepared and frozen; commit or abort it"
    ))
}
