//! Library configuration.

use perseas_rnram::BackoffPolicy;
use perseas_simtime::MemCostModel;

use crate::layout::META_TAG;

/// Configuration of a [`crate::Perseas`] instance.
///
/// The defaults reproduce the paper's testbed: 133 MHz Pentium memory
/// costs, up to 64 database segments, and a 64 KB initial mirrored undo
/// log that grows on demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerseasConfig {
    /// Cost model for local memory copies.
    pub mem_cost: MemCostModel,
    /// Maximum number of database regions (fixes the size of the remote
    /// metadata segment's region table).
    pub max_regions: usize,
    /// Initial capacity of the mirrored undo log in bytes; it doubles on
    /// demand.
    pub initial_undo_capacity: usize,
    /// Tag under which the metadata segment is exported, used by
    /// [`crate::Perseas::recover`] to find it again (the paper's
    /// `sci_connect_segment`).
    pub meta_tag: u64,
    /// Use the optimised `sci_memcpy` (widen copies of 32+ bytes to whole
    /// 64-byte aligned chunks, Section 4). Disable only for the ablation
    /// benchmark.
    pub aligned_memcpy: bool,
    /// Commit through the batched, vectored pipeline: undo pushes are
    /// deferred to commit time and each mirror then receives exactly one
    /// vectored write for the undo log, one for the coalesced data
    /// ranges, and one for the commit record — with the mirrors written
    /// in parallel (scoped threads on TCP, max-latency charging on the
    /// shared simulated clock). `false` reproduces the paper's original
    /// per-range protocol, where every `set_range` and every coalesced
    /// range is its own remote write. Crash-point counting follows the
    /// writes: on the batched path one vectored write is one crash point.
    pub batched_commit: bool,
    /// Minimum number of `Healthy` mirrors a commit must reach. When a
    /// mirror fails mid-operation it is fenced (marked `Down`, epoch
    /// bumped on the survivors) and the transaction commits in degraded
    /// mode as long as this many mirrors remain; below the quorum the
    /// operation fails `Unavailable`. The paper's availability claim
    /// (data survives any single workstation crash) corresponds to the
    /// default of 1.
    pub commit_quorum: usize,
    /// Epoch admission floor for `recover` and `ReadReplica::attach`: a
    /// mirror whose metadata carries an epoch below this value was
    /// fenced out of the set after missing commits and is refused with
    /// [`perseas_txn::TxnError::FencedMirror`]. The default of 0 admits
    /// every mirror, including pre-epoch images.
    pub min_epoch: u64,
    /// How many times `ReadReplica::refresh` restarts its copy when the
    /// mirror commits concurrently, before giving up with
    /// [`perseas_txn::TxnError::SnapshotContention`].
    pub snapshot_retries: usize,
    /// Pacing for reconnect probes against `Down` mirrors
    /// ([`crate::Perseas::probe_down_mirrors`]): exponential backoff
    /// with deterministic jitter, charged to the simulated clock for sim
    /// backends and to the wall clock for TCP.
    pub probe_backoff: BackoffPolicy,
    /// Run the concurrent transaction engine: `begin_concurrent` hands
    /// out tokens for many simultaneously open transactions, a byte-range
    /// conflict table serializes overlapping `set_range` claims
    /// (first-claimer-wins, [`perseas_txn::TxnError::Conflict`] for the
    /// loser), and non-conflicting transactions commit as a group through
    /// the batched pipeline with per-transaction commit records. Implies
    /// the batched commit path. Off by default: the legacy single-slot
    /// engine stays byte-for-byte identical to the paper's protocol.
    pub concurrent: bool,
    /// Number of 8-byte commit-table slots appended to the metadata
    /// segment when `concurrent` is on. Bounds how many transactions may
    /// be committed above the watermark while older transactions are
    /// still open; a full table fails the commit `Unavailable` until the
    /// watermark advances.
    pub commit_slots: usize,
    /// Which shard of a [`crate::ShardedPerseas`] database this instance
    /// is. Meaningful only when `shard_count > 0`; set by
    /// [`PerseasConfig::with_shard`].
    pub shard_index: u16,
    /// Total shard count of the sharded database this instance belongs
    /// to. Zero (the default) means unsharded: no intent or decision
    /// tables are laid out and the image carries no shard flag.
    pub shard_count: u16,
    /// Number of 32-byte intent slots in a sharded metadata segment.
    /// Bounds how many cross-shard transactions may simultaneously hold a
    /// prepared part on one shard.
    pub intent_slots: usize,
    /// Number of 16-byte decision slots in a sharded metadata segment.
    /// Bounds how many cross-shard decisions may be in flight on one home
    /// shard between the decision write and the end of its commit
    /// fan-out.
    pub decision_slots: usize,
    /// Commit through the REDO-only log-structured path: `set_range`
    /// keeps its before-image **local** (aborts stay cheap) and commit
    /// appends CRC-framed after-images to a segmented remote redo log
    /// instead of shipping undo copies — write-heavy workloads stop
    /// paying undo bytes on the hot path. The flushed commit record
    /// remains the durability point. Recovery replays the committed log
    /// suffix past the last snapshot ([`crate::Perseas::redo_snapshot`])
    /// onto the snapshotted region images; restart time scales with the
    /// live tail, not total history. Off by default: the undo protocol
    /// stays byte-identical to the paper's.
    pub redo: bool,
    /// Size in bytes of each redo-log segment (fixed; records never
    /// straddle a segment boundary). Meaningful only when `redo` is on.
    pub redo_segment_bytes: usize,
    /// Number of redo-directory slots — the maximum number of live
    /// (not-yet-compacted) log segments. When every slot's segment is
    /// full and uncompacted, commits fail `Unavailable` until
    /// [`crate::Perseas::redo_snapshot`] retires segments.
    pub redo_segments: usize,
    /// Keep an in-memory version store of committed before-images so
    /// [`crate::Perseas::begin_snapshot`] can serve claim-free snapshot
    /// reads at a pinned commit watermark. Off by default: with the store
    /// disabled the engine's behaviour (and its virtual-time cost) is
    /// byte-identical to the paper's protocol.
    pub mvcc: bool,
    /// Byte budget of the version store's retained before-images. When a
    /// new committed version would push the store past this budget, the
    /// oldest versions are evicted whole — snapshots pinned below the new
    /// floor then fail typed with
    /// [`perseas_txn::TxnError::SnapshotTooOld`].
    pub version_bytes: usize,
    /// Maximum number of committed versions (one per transaction) the
    /// version store retains, evicted oldest-first like the byte budget.
    pub version_entries: usize,
}

impl PerseasConfig {
    /// The default configuration (see type-level docs).
    pub fn new() -> Self {
        PerseasConfig {
            mem_cost: MemCostModel::pentium_133(),
            max_regions: 64,
            initial_undo_capacity: 64 << 10,
            meta_tag: META_TAG,
            aligned_memcpy: true,
            batched_commit: false,
            commit_quorum: 1,
            min_epoch: 0,
            snapshot_retries: 8,
            probe_backoff: BackoffPolicy::default(),
            concurrent: false,
            commit_slots: 64,
            shard_index: 0,
            shard_count: 0,
            intent_slots: 16,
            decision_slots: 16,
            redo: false,
            redo_segment_bytes: 64 << 10,
            redo_segments: 8,
            mvcc: false,
            version_bytes: 1 << 20,
            version_entries: 4096,
        }
    }

    /// Sets the local memory cost model.
    pub fn with_mem_cost(mut self, mem_cost: MemCostModel) -> Self {
        self.mem_cost = mem_cost;
        self
    }

    /// Sets the maximum region count.
    ///
    /// # Panics
    ///
    /// Panics if `max_regions` is zero.
    pub fn with_max_regions(mut self, max_regions: usize) -> Self {
        assert!(max_regions > 0, "max_regions must be positive");
        self.max_regions = max_regions;
        self
    }

    /// Sets the initial undo-log capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_initial_undo_capacity(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "undo capacity must be positive");
        self.initial_undo_capacity = bytes;
        self
    }

    /// Sets the metadata tag (distinct databases sharing one mirror node
    /// need distinct tags).
    pub fn with_meta_tag(mut self, tag: u64) -> Self {
        self.meta_tag = tag;
        self
    }

    /// Enables or disables the aligned-chunk `sci_memcpy` optimisation
    /// (ablation only; leave on for faithful behaviour).
    pub fn with_aligned_memcpy(mut self, aligned: bool) -> Self {
        self.aligned_memcpy = aligned;
        self
    }

    /// Enables or disables the batched, vectored commit pipeline (see the
    /// [`batched_commit`](PerseasConfig::batched_commit) field). Off by
    /// default for faithfulness to the paper's per-range protocol.
    pub fn with_batched_commit(mut self, batched: bool) -> Self {
        self.batched_commit = batched;
        self
    }

    /// Sets the minimum healthy-mirror count for degraded commits. A
    /// quorum equal to the mirror count disables degraded mode entirely
    /// (any mirror failure fails the commit).
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is zero.
    pub fn with_commit_quorum(mut self, quorum: usize) -> Self {
        assert!(quorum > 0, "commit quorum must be positive");
        self.commit_quorum = quorum;
        self
    }

    /// Sets the epoch admission floor for recovery and replica attach.
    pub fn with_min_epoch(mut self, epoch: u64) -> Self {
        self.min_epoch = epoch;
        self
    }

    /// Sets the snapshot retry budget for `ReadReplica::refresh`.
    ///
    /// # Panics
    ///
    /// Panics if `retries` is zero.
    pub fn with_snapshot_retries(mut self, retries: usize) -> Self {
        assert!(retries > 0, "at least one snapshot attempt is required");
        self.snapshot_retries = retries;
        self
    }

    /// Sets the pacing policy for down-mirror reconnect probes.
    pub fn with_probe_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.probe_backoff = policy;
        self
    }

    /// Enables the concurrent transaction engine (see the
    /// [`concurrent`](PerseasConfig::concurrent) field). Also turns on
    /// the batched commit pipeline, which group commits are built on.
    pub fn with_concurrent(mut self, concurrent: bool) -> Self {
        self.concurrent = concurrent;
        if concurrent {
            self.batched_commit = true;
        }
        self
    }

    /// Sets the commit-table slot count used when `concurrent` is on.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_commit_slots(mut self, slots: usize) -> Self {
        assert!(slots > 0, "commit_slots must be positive");
        self.commit_slots = slots;
        self
    }

    /// Marks this instance as shard `index` of a `count`-shard
    /// [`crate::ShardedPerseas`] database. Implies the concurrent engine
    /// (cross-shard commits are built on `prepare_t`), and lays out the
    /// intent and decision tables in the metadata segment.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, `index` is out of range, or
    /// `commit_slots` is odd (the decision table must start on a 16-byte
    /// line).
    pub fn with_shard(mut self, index: u16, count: u16) -> Self {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        assert!(
            self.commit_slots.is_multiple_of(2),
            "sharded layouts need an even commit_slots"
        );
        self.shard_index = index;
        self.shard_count = count;
        self.with_concurrent(true)
    }

    /// Sets the intent- and decision-slot counts used when the instance
    /// is sharded.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn with_coordination_slots(mut self, intent: usize, decision: usize) -> Self {
        assert!(intent > 0, "intent_slots must be positive");
        assert!(decision > 0, "decision_slots must be positive");
        self.intent_slots = intent;
        self.decision_slots = decision;
        self
    }

    /// Enables the REDO-only commit path (see the
    /// [`redo`](PerseasConfig::redo) field). Orthogonal to the
    /// concurrent engine and sharding: group commits append one
    /// coalesced batch, and each shard keeps its own log.
    pub fn with_redo(mut self, redo: bool) -> Self {
        self.redo = redo;
        self
    }

    /// Sets the redo log's segment size and directory slot count.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is zero or not a multiple of 16 (log
    /// writes must stay line-aligned for packet atomicity), or if
    /// `segments` is zero.
    pub fn with_redo_log(mut self, segment_bytes: usize, segments: usize) -> Self {
        assert!(
            segment_bytes > 0 && segment_bytes.is_multiple_of(16),
            "redo_segment_bytes must be a positive multiple of 16"
        );
        assert!(segments > 0, "redo_segments must be positive");
        self.redo_segment_bytes = segment_bytes;
        self.redo_segments = segments;
        self
    }

    /// Enables the in-memory version store so snapshot reads can be
    /// served (see the [`mvcc`](PerseasConfig::mvcc) field).
    pub fn with_mvcc(mut self, mvcc: bool) -> Self {
        self.mvcc = mvcc;
        self
    }

    /// Sets the version store's retention budgets: at most `bytes` of
    /// before-images across at most `entries` committed versions.
    ///
    /// # Panics
    ///
    /// Panics if either budget is zero.
    pub fn with_version_budget(mut self, bytes: usize, entries: usize) -> Self {
        assert!(bytes > 0, "version_bytes must be positive");
        assert!(entries > 0, "version_entries must be positive");
        self.version_bytes = bytes;
        self.version_entries = entries;
        self
    }
}

impl Default for PerseasConfig {
    fn default() -> Self {
        PerseasConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = PerseasConfig::new()
            .with_max_regions(8)
            .with_initial_undo_capacity(1024)
            .with_meta_tag(7)
            .with_mem_cost(MemCostModel::free())
            .with_batched_commit(true);
        assert_eq!(c.max_regions, 8);
        assert_eq!(c.initial_undo_capacity, 1024);
        assert_eq!(c.meta_tag, 7);
        assert_eq!(c.mem_cost, MemCostModel::free());
        assert!(c.batched_commit);
    }

    #[test]
    fn batched_commit_defaults_off() {
        assert!(!PerseasConfig::new().batched_commit);
    }

    #[test]
    fn failover_defaults() {
        let c = PerseasConfig::new();
        assert_eq!(c.commit_quorum, 1, "paper: survive any single crash");
        assert_eq!(c.min_epoch, 0, "admit pre-epoch images");
        assert_eq!(c.snapshot_retries, 8);
        assert_eq!(c.probe_backoff, BackoffPolicy::default());
    }

    #[test]
    fn failover_builders_chain() {
        let c = PerseasConfig::new()
            .with_commit_quorum(2)
            .with_min_epoch(5)
            .with_snapshot_retries(3)
            .with_probe_backoff(BackoffPolicy::from_millis(2, 8));
        assert_eq!(c.commit_quorum, 2);
        assert_eq!(c.min_epoch, 5);
        assert_eq!(c.snapshot_retries, 3);
        assert_eq!(c.probe_backoff, BackoffPolicy::from_millis(2, 8));
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn zero_quorum_rejected() {
        let _ = PerseasConfig::new().with_commit_quorum(0);
    }

    #[test]
    #[should_panic(expected = "snapshot")]
    fn zero_snapshot_retries_rejected() {
        let _ = PerseasConfig::new().with_snapshot_retries(0);
    }

    #[test]
    #[should_panic(expected = "max_regions")]
    fn zero_regions_rejected() {
        let _ = PerseasConfig::new().with_max_regions(0);
    }

    #[test]
    #[should_panic(expected = "undo capacity")]
    fn zero_undo_rejected() {
        let _ = PerseasConfig::new().with_initial_undo_capacity(0);
    }

    #[test]
    fn default_is_new() {
        assert_eq!(PerseasConfig::default(), PerseasConfig::new());
    }

    #[test]
    fn concurrent_defaults_off_and_implies_batched() {
        let c = PerseasConfig::new();
        assert!(!c.concurrent);
        assert_eq!(c.commit_slots, 64);
        let c = PerseasConfig::new()
            .with_concurrent(true)
            .with_commit_slots(8);
        assert!(c.concurrent);
        assert!(c.batched_commit, "group commits ride the batched pipeline");
        assert_eq!(c.commit_slots, 8);
    }

    #[test]
    #[should_panic(expected = "commit_slots")]
    fn zero_commit_slots_rejected() {
        let _ = PerseasConfig::new().with_commit_slots(0);
    }

    #[test]
    fn mvcc_defaults_off_with_bounded_budgets() {
        let c = PerseasConfig::new();
        assert!(!c.mvcc, "the version store must cost nothing by default");
        assert_eq!(c.version_bytes, 1 << 20);
        assert_eq!(c.version_entries, 4096);
        let c = PerseasConfig::new()
            .with_mvcc(true)
            .with_version_budget(512, 4);
        assert!(c.mvcc);
        assert_eq!(c.version_bytes, 512);
        assert_eq!(c.version_entries, 4);
    }

    #[test]
    fn redo_defaults_off_with_segmented_log() {
        let c = PerseasConfig::new();
        assert!(!c.redo, "the undo protocol is the faithful default");
        assert_eq!(c.redo_segment_bytes, 64 << 10);
        assert_eq!(c.redo_segments, 8);
        let c = PerseasConfig::new().with_redo(true).with_redo_log(4096, 4);
        assert!(c.redo);
        assert_eq!(c.redo_segment_bytes, 4096);
        assert_eq!(c.redo_segments, 4);
        // Redo composes with the concurrent engine without disturbing it.
        let c = PerseasConfig::new().with_concurrent(true).with_redo(true);
        assert!(c.concurrent && c.redo && c.batched_commit);
    }

    #[test]
    #[should_panic(expected = "redo_segment_bytes")]
    fn unaligned_redo_segment_rejected() {
        let _ = PerseasConfig::new().with_redo_log(100, 4);
    }

    #[test]
    #[should_panic(expected = "redo_segments")]
    fn zero_redo_segments_rejected() {
        let _ = PerseasConfig::new().with_redo_log(4096, 0);
    }

    #[test]
    #[should_panic(expected = "version_bytes")]
    fn zero_version_bytes_rejected() {
        let _ = PerseasConfig::new().with_version_budget(0, 4);
    }

    #[test]
    #[should_panic(expected = "version_entries")]
    fn zero_version_entries_rejected() {
        let _ = PerseasConfig::new().with_version_budget(512, 0);
    }
}
