//! Structured JSONL tracing: adapts the [`TraceEvent`] stream onto a
//! [`JsonlSink`].
//!
//! Every line carries the sink's monotonic `seq`, a `kind`, and the
//! event's identifying fields (`txn`, `mirror`, `epoch`, byte counts).
//! Transaction-resolution events additionally carry a wall-clock
//! `duration_us` measured from the matching `txn_begin`, so a trace can
//! be analysed for latency without replaying it.

use std::collections::HashMap;
use std::time::Instant;

use perseas_obs::{Json, JsonlSink};

use crate::trace::{TraceEvent, Tracer};

/// A [`Tracer`] writing one JSON object per [`TraceEvent`].
///
/// ```
/// use perseas_core::{JsonlTracer, Perseas, PerseasConfig, TransactionalMemory};
/// use perseas_obs::JsonlSink;
/// use perseas_rnram::SimRemote;
///
/// # fn main() -> Result<(), perseas_txn::TxnError> {
/// let sink = JsonlSink::in_memory();
/// let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default())?;
/// db.set_tracer(Box::new(JsonlTracer::new(sink.clone())));
/// let r = db.malloc(64)?;
/// db.init_remote_db()?;
/// db.transaction(|t| t.update(r, 0, &[7; 8]))?;
/// assert!(sink.lines().iter().any(|l| l.contains("\"kind\":\"txn_committed\"")));
/// # Ok(())
/// # }
/// ```
pub struct JsonlTracer {
    sink: JsonlSink,
    /// Wall-clock begin instants of open transactions, for `duration_us`
    /// on the matching resolution event.
    begun: HashMap<u64, Instant>,
}

impl JsonlTracer {
    /// Wraps a sink. The sink may be shared (cloned) with other writers;
    /// sequence numbers stay totally ordered across all of them.
    pub fn new(sink: JsonlSink) -> JsonlTracer {
        JsonlTracer {
            sink,
            begun: HashMap::new(),
        }
    }

    fn duration_of(&mut self, id: u64) -> Option<Json> {
        self.begun
            .remove(&id)
            .map(|t0| Json::UInt(t0.elapsed().as_micros().min(u64::MAX as u128) as u64))
    }
}

impl Tracer for JsonlTracer {
    fn event(&mut self, event: &TraceEvent) {
        let (kind, mut fields): (&str, Vec<(&str, Json)>) = match event {
            TraceEvent::TxnBegin { id } => {
                self.begun.insert(*id, Instant::now());
                ("txn_begin", vec![("txn", Json::UInt(*id))])
            }
            TraceEvent::SetRange {
                id,
                region,
                offset,
                len,
            } => (
                "set_range",
                vec![
                    ("txn", Json::UInt(*id)),
                    ("region", Json::UInt(*region as u64)),
                    ("offset", Json::UInt(*offset as u64)),
                    ("len", Json::UInt(*len as u64)),
                ],
            ),
            TraceEvent::UndoGrown { new_capacity } => (
                "undo_grown",
                vec![("new_capacity", Json::UInt(*new_capacity as u64))],
            ),
            TraceEvent::CommitBatch {
                id,
                mirrors,
                ranges,
                bytes,
                undo_bytes,
            } => (
                "commit_batch",
                vec![
                    ("txn", Json::UInt(*id)),
                    ("mirrors", Json::UInt(*mirrors as u64)),
                    ("ranges", Json::UInt(*ranges as u64)),
                    ("bytes", Json::UInt(*bytes as u64)),
                    ("undo_bytes", Json::UInt(*undo_bytes as u64)),
                ],
            ),
            TraceEvent::TxnCommitted { id, ranges, bytes } => (
                "txn_committed",
                vec![
                    ("txn", Json::UInt(*id)),
                    ("ranges", Json::UInt(*ranges as u64)),
                    ("bytes", Json::UInt(*bytes as u64)),
                ],
            ),
            TraceEvent::TxnAborted { id } => ("txn_aborted", vec![("txn", Json::UInt(*id))]),
            TraceEvent::MirrorAdded { index } => {
                ("mirror_added", vec![("mirror", Json::UInt(*index as u64))])
            }
            TraceEvent::MirrorRemoved { index } => (
                "mirror_removed",
                vec![("mirror", Json::UInt(*index as u64))],
            ),
            TraceEvent::MirrorDown { index, error } => (
                "mirror_down",
                vec![
                    ("mirror", Json::UInt(*index as u64)),
                    ("error", Json::str(error.clone())),
                ],
            ),
            TraceEvent::MirrorRejoined { index, epoch } => (
                "mirror_rejoined",
                vec![
                    ("mirror", Json::UInt(*index as u64)),
                    ("epoch", Json::UInt(*epoch)),
                ],
            ),
            TraceEvent::EpochBump { epoch } => ("epoch_bump", vec![("epoch", Json::UInt(*epoch))]),
            TraceEvent::DegradedCommit {
                id,
                healthy,
                mirrors,
            } => (
                "degraded_commit",
                vec![
                    ("txn", Json::UInt(*id)),
                    ("healthy", Json::UInt(*healthy as u64)),
                    ("mirrors", Json::UInt(*mirrors as u64)),
                ],
            ),
            TraceEvent::TxnConflict {
                id,
                holder,
                region,
                offset,
                len,
            } => (
                "txn_conflict",
                vec![
                    ("txn", Json::UInt(*id)),
                    ("holder", Json::UInt(*holder)),
                    ("region", Json::UInt(*region as u64)),
                    ("offset", Json::UInt(*offset as u64)),
                    ("len", Json::UInt(*len as u64)),
                ],
            ),
            TraceEvent::GroupCommit {
                txns,
                ranges,
                bytes,
                undo_bytes,
            } => (
                "group_commit",
                vec![
                    (
                        "txns",
                        Json::Array(txns.iter().map(|&id| Json::UInt(id)).collect()),
                    ),
                    ("ranges", Json::UInt(*ranges as u64)),
                    ("bytes", Json::UInt(*bytes as u64)),
                    ("undo_bytes", Json::UInt(*undo_bytes as u64)),
                ],
            ),
            TraceEvent::Flush { posted, bytes } => (
                "flush",
                vec![
                    ("posted", Json::UInt(*posted as u64)),
                    ("bytes", Json::UInt(*bytes as u64)),
                ],
            ),
            TraceEvent::Crashed => {
                self.begun.clear();
                ("crashed", vec![])
            }
            TraceEvent::CrossShardPrepared { global, shard, txn } => (
                "cross_shard_prepared",
                vec![
                    ("global", Json::UInt(*global)),
                    ("shard", Json::UInt(*shard as u64)),
                    ("txn", Json::UInt(*txn)),
                ],
            ),
            TraceEvent::CrossShardDecision {
                global,
                home,
                shards,
            } => (
                "cross_shard_decision",
                vec![
                    ("global", Json::UInt(*global)),
                    ("home", Json::UInt(*home as u64)),
                    ("shards", Json::UInt(*shards as u64)),
                ],
            ),
            TraceEvent::CrossShardCommitted { global, shards } => (
                "cross_shard_committed",
                vec![
                    ("global", Json::UInt(*global)),
                    ("shards", Json::UInt(*shards as u64)),
                ],
            ),
            TraceEvent::CrossShardResolved {
                global,
                shard,
                committed,
            } => (
                "cross_shard_resolved",
                vec![
                    ("global", Json::UInt(*global)),
                    ("shard", Json::UInt(*shard as u64)),
                    ("committed", Json::Bool(*committed)),
                ],
            ),
            TraceEvent::SnapshotBegin { id, read_seq, open } => (
                "snapshot_begin",
                vec![
                    ("snapshot", Json::UInt(*id)),
                    ("read_seq", Json::UInt(*read_seq)),
                    ("open", Json::UInt(*open as u64)),
                ],
            ),
            TraceEvent::SnapshotEnd { id, open } => (
                "snapshot_end",
                vec![
                    ("snapshot", Json::UInt(*id)),
                    ("open", Json::UInt(*open as u64)),
                ],
            ),
            TraceEvent::SnapshotTooOld {
                id,
                read_seq,
                floor_seq,
            } => (
                "snapshot_too_old",
                vec![
                    ("snapshot", Json::UInt(*id)),
                    ("read_seq", Json::UInt(*read_seq)),
                    ("floor_seq", Json::UInt(*floor_seq)),
                ],
            ),
            TraceEvent::VersionCaptured {
                seq,
                txn,
                bytes,
                versions,
            } => (
                "version_captured",
                vec![
                    ("seq", Json::UInt(*seq)),
                    ("txn", Json::UInt(*txn)),
                    ("store_bytes", Json::UInt(*bytes as u64)),
                    ("store_versions", Json::UInt(*versions as u64)),
                ],
            ),
            TraceEvent::VersionEvicted {
                versions,
                bytes,
                floor_seq,
                store_bytes,
            } => (
                "version_evicted",
                vec![
                    ("versions", Json::UInt(*versions as u64)),
                    ("bytes", Json::UInt(*bytes as u64)),
                    ("floor_seq", Json::UInt(*floor_seq)),
                    ("store_bytes", Json::UInt(*store_bytes as u64)),
                ],
            ),
            TraceEvent::RedoAppend {
                records,
                bytes,
                tail,
                live_bytes,
            } => (
                "redo_append",
                vec![
                    ("records", Json::UInt(*records as u64)),
                    ("bytes", Json::UInt(*bytes as u64)),
                    ("tail", Json::UInt(*tail)),
                    ("live_bytes", Json::UInt(*live_bytes)),
                ],
            ),
            TraceEvent::RedoSegmentOpened { seq, slot, live } => (
                "redo_segment_opened",
                vec![
                    ("seq", Json::UInt(*seq)),
                    ("slot", Json::UInt(*slot as u64)),
                    ("live", Json::UInt(*live as u64)),
                ],
            ),
            TraceEvent::RedoSnapshot { tail, bytes } => (
                "redo_snapshot",
                vec![
                    ("tail", Json::UInt(*tail)),
                    ("bytes", Json::UInt(*bytes as u64)),
                ],
            ),
            TraceEvent::RedoCompacted {
                segments,
                freed_bytes,
                live,
            } => (
                "redo_compacted",
                vec![
                    ("segments", Json::UInt(*segments as u64)),
                    ("freed_bytes", Json::UInt(*freed_bytes as u64)),
                    ("live", Json::UInt(*live as u64)),
                ],
            ),
        };
        match event {
            TraceEvent::TxnCommitted { id, .. } | TraceEvent::TxnAborted { id } => {
                if let Some(d) = self.duration_of(*id) {
                    fields.push(("duration_us", d));
                }
            }
            _ => {}
        }
        self.sink.emit(kind, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_become_jsonl_with_durations() {
        let sink = JsonlSink::in_memory();
        let mut tracer = JsonlTracer::new(sink.clone());
        tracer.event(&TraceEvent::TxnBegin { id: 9 });
        tracer.event(&TraceEvent::SetRange {
            id: 9,
            region: 0,
            offset: 16,
            len: 8,
        });
        tracer.event(&TraceEvent::TxnCommitted {
            id: 9,
            ranges: 1,
            bytes: 8,
        });
        tracer.event(&TraceEvent::TxnAborted { id: 10 });
        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        let committed = Json::parse(&lines[2]).unwrap();
        assert_eq!(
            committed.get("kind").unwrap().as_str(),
            Some("txn_committed")
        );
        assert_eq!(committed.get("txn").unwrap().as_f64(), Some(9.0));
        assert!(committed.get("duration_us").is_some(), "begin was tracked");
        // An abort with no tracked begin has no duration.
        let aborted = Json::parse(&lines[3]).unwrap();
        assert!(aborted.get("duration_us").is_none());
        // Sequence numbers are the line index.
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("seq").unwrap().as_f64(), Some(i as f64));
        }
    }

    #[test]
    fn group_commit_carries_member_ids() {
        let sink = JsonlSink::in_memory();
        let mut tracer = JsonlTracer::new(sink.clone());
        tracer.event(&TraceEvent::GroupCommit {
            txns: vec![3, 4, 5],
            ranges: 2,
            bytes: 64,
            undo_bytes: 96,
        });
        let v = Json::parse(&sink.lines()[0]).unwrap();
        let ids = v.get("txns").unwrap().as_array().unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0].as_f64(), Some(3.0));
    }
}
