//! Protocol event tracing — production observability for the library.
//!
//! Operators of a replicated store need to see what the commit path is
//! doing (how many ranges per transaction, how often the undo log grows,
//! when mirrors are reconfigured). A [`Tracer`] installed with
//! [`Perseas::set_tracer`](crate::Perseas::set_tracer) receives a
//! [`TraceEvent`] at each protocol milestone; the default is no tracer and
//! zero overhead beyond a branch.

use std::sync::{Arc, Mutex};

/// One protocol milestone.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A transaction opened.
    TxnBegin {
        /// Transaction id.
        id: u64,
    },
    /// A range was declared and its before-image pushed to the mirrors.
    SetRange {
        /// Transaction id.
        id: u64,
        /// Region index.
        region: u32,
        /// Range start.
        offset: usize,
        /// Range length.
        len: usize,
    },
    /// The mirrored undo log grew.
    UndoGrown {
        /// New capacity in bytes.
        new_capacity: usize,
    },
    /// The batched commit pipeline dispatched one vectored write per
    /// mirror for the undo log and one for the coalesced data ranges
    /// (emitted before the commit record is published; only on the
    /// batched path, see
    /// [`PerseasConfig::with_batched_commit`](crate::PerseasConfig::with_batched_commit)).
    CommitBatch {
        /// Transaction id.
        id: u64,
        /// Mirrors written.
        mirrors: usize,
        /// Physical ranges in the data-update vectored write (after
        /// coalescing and alignment widening).
        ranges: usize,
        /// Bytes of the data-update vectored write, per mirror.
        bytes: usize,
        /// Bytes of the undo-log vectored write, per mirror.
        undo_bytes: usize,
    },
    /// A transaction committed durably.
    TxnCommitted {
        /// Transaction id.
        id: u64,
        /// Coalesced ranges propagated.
        ranges: usize,
        /// Payload bytes propagated.
        bytes: usize,
    },
    /// A transaction aborted (local-only).
    TxnAborted {
        /// Transaction id.
        id: u64,
    },
    /// A mirror was added at the given index.
    MirrorAdded {
        /// Index of the new mirror.
        index: usize,
    },
    /// A mirror was removed from the given index.
    MirrorRemoved {
        /// Index the mirror occupied.
        index: usize,
    },
    /// A remote operation against a mirror failed with a transport-level
    /// error: the mirror was marked `Down` and fenced out of the set.
    MirrorDown {
        /// Index of the failed mirror.
        index: usize,
        /// The transport failure that condemned it.
        error: String,
    },
    /// A `Down` or `Suspect` mirror was resynced and promoted back to
    /// `Healthy` at the current epoch.
    MirrorRejoined {
        /// Index of the restored mirror.
        index: usize,
        /// Epoch at which it rejoined.
        epoch: u64,
    },
    /// The mirror-set epoch advanced (a membership change: fence, add,
    /// rejoin, or removal) and was written to every healthy mirror.
    EpochBump {
        /// The new epoch.
        epoch: u64,
    },
    /// A transaction committed durably while one or more mirrors were
    /// down — redundancy is reduced until they rejoin.
    DegradedCommit {
        /// Transaction id.
        id: u64,
        /// Healthy mirrors the commit reached.
        healthy: usize,
        /// Total mirrors in the set.
        mirrors: usize,
    },
    /// A `set_range` claim lost to an overlapping claim held by another
    /// open transaction (concurrent engine only).
    TxnConflict {
        /// Transaction whose claim was rejected.
        id: u64,
        /// Transaction holding the overlapping claim.
        holder: u64,
        /// Region of the contested range.
        region: u32,
        /// Start of the rejected claim.
        offset: usize,
        /// Length of the rejected claim.
        len: usize,
    },
    /// Several transactions committed together through one batched
    /// fan-out (concurrent engine only; emitted once per group, after the
    /// per-transaction `TxnCommitted` events).
    GroupCommit {
        /// Ids of the transactions in the group, ascending.
        txns: Vec<u64>,
        /// Physical ranges in the shared data-update vectored write.
        ranges: usize,
        /// Bytes of the shared data-update vectored write, per mirror.
        bytes: usize,
        /// Bytes of the shared undo-log vectored write, per mirror.
        undo_bytes: usize,
    },
    /// An ack barrier at a durability point confirmed previously posted
    /// remote writes (emitted only when at least one operation was
    /// actually outstanding, so inline-acknowledging backends — the
    /// simulated SCI mapping, the synchronous TCP client — never see it
    /// and their event sequences are unchanged).
    Flush {
        /// Posted operations the barrier confirmed, summed over mirrors.
        posted: usize,
        /// Payload bytes those operations carried.
        bytes: usize,
    },
    /// The instance crashed (fault injection or explicit).
    Crashed,
    /// A cross-shard transaction froze its part on one shard: undo
    /// records and data are durable, and an intent slot names the home
    /// shard holding the decision (sharded databases only).
    CrossShardPrepared {
        /// Global cross-shard transaction id.
        global: u64,
        /// Shard the part was prepared on.
        shard: u16,
        /// The part's local transaction id on that shard.
        txn: u64,
    },
    /// The packet-atomic decision record of a cross-shard transaction was
    /// flushed to its home shard — the transaction is now committed,
    /// whatever happens to the fan-out.
    CrossShardDecision {
        /// Global cross-shard transaction id.
        global: u64,
        /// Home shard holding the decision record.
        home: u16,
        /// Number of participant shards.
        shards: usize,
    },
    /// The record-only commit fan-out of a cross-shard transaction
    /// completed on every participant shard.
    CrossShardCommitted {
        /// Global cross-shard transaction id.
        global: u64,
        /// Number of participant shards.
        shards: usize,
    },
    /// Recovery resolved an in-doubt prepared part by consulting the home
    /// shard's decision table.
    CrossShardResolved {
        /// Global cross-shard transaction id.
        global: u64,
        /// Shard whose part was resolved.
        shard: u16,
        /// `true` if the decision record existed (part kept), `false` if
        /// it was absent (part rolled back — presumed abort).
        committed: bool,
    },
    /// A read snapshot opened, pinned at the current commit watermark
    /// (MVCC only, see
    /// [`PerseasConfig::with_mvcc`](crate::PerseasConfig::with_mvcc)).
    SnapshotBegin {
        /// Snapshot id.
        id: u64,
        /// Commit watermark the snapshot pinned.
        read_seq: u64,
        /// Snapshots open after this one, including it.
        open: usize,
    },
    /// A read snapshot closed; the version store may evict past it.
    SnapshotEnd {
        /// Snapshot id.
        id: u64,
        /// Snapshots still open.
        open: usize,
    },
    /// A snapshot read was refused because its versions were evicted (or
    /// a crash cleared the store) — raised typed, never served torn.
    SnapshotTooOld {
        /// Snapshot id.
        id: u64,
        /// Commit watermark the snapshot pinned.
        read_seq: u64,
        /// Oldest watermark the store can still reconstruct.
        floor_seq: u64,
    },
    /// A committed transaction's before-images were retained in the
    /// version store.
    VersionCaptured {
        /// Commit sequence assigned to the version.
        seq: u64,
        /// Committing transaction's id.
        txn: u64,
        /// Store payload bytes after the capture.
        bytes: usize,
        /// Versions retained after the capture.
        versions: usize,
    },
    /// The version store evicted versions (pruned past closed snapshots,
    /// or pushed past open ones by budget pressure).
    VersionEvicted {
        /// Versions removed.
        versions: usize,
        /// Payload bytes removed.
        bytes: usize,
        /// The new reconstruction floor.
        floor_seq: u64,
        /// Store payload bytes remaining.
        store_bytes: usize,
    },
    /// A commit (or abort tombstone) appended records to the segmented
    /// redo log on every healthy mirror (redo mode only, see
    /// [`PerseasConfig::with_redo`](crate::PerseasConfig::with_redo)).
    RedoAppend {
        /// Records in the appended batch (after-images and tombstones).
        records: usize,
        /// Encoded bytes appended, per mirror (headers + payloads).
        bytes: usize,
        /// Absolute log byte position of the new tail.
        tail: u64,
        /// Log bytes above the compaction floor after this append.
        live_bytes: u64,
    },
    /// An append reached a fresh log segment: one was allocated on every
    /// healthy mirror and published in the log directory.
    RedoSegmentOpened {
        /// The segment's log sequence number.
        seq: u64,
        /// Directory slot it occupies.
        slot: usize,
        /// Live log segments after opening it.
        live: usize,
    },
    /// A consistent region image was streamed to every healthy mirror
    /// and the snapshot position advanced to the tail: recovery now
    /// replays only records appended after this point.
    RedoSnapshot {
        /// Log position the snapshot covers (the tail at capture).
        tail: u64,
        /// Region bytes streamed, per mirror.
        bytes: usize,
    },
    /// Fully-snapshotted log segments were retired: their directory
    /// entries zeroed, their remote memory freed.
    RedoCompacted {
        /// Segments retired.
        segments: usize,
        /// Remote bytes freed, per mirror.
        freed_bytes: usize,
        /// Live log segments remaining.
        live: usize,
    },
}

/// A sink for [`TraceEvent`]s.
pub trait Tracer: Send {
    /// Receives one event, in protocol order.
    fn event(&mut self, event: &TraceEvent);
}

impl<F: FnMut(&TraceEvent) + Send> Tracer for F {
    fn event(&mut self, event: &TraceEvent) {
        self(event)
    }
}

/// A tracer that records every event into a shared vector — handy in
/// tests and debugging sessions.
///
/// # Examples
///
/// ```
/// use perseas_core::{Perseas, PerseasConfig, RecordingTracer, TraceEvent};
/// use perseas_rnram::SimRemote;
///
/// # fn main() -> Result<(), perseas_txn::TxnError> {
/// let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default())?;
/// let r = db.malloc(16)?;
/// db.init_remote_db()?;
///
/// let tracer = RecordingTracer::new();
/// db.set_tracer(Box::new(tracer.clone()));
/// db.transaction(|tx| tx.update(r, 0, &[1; 4]))?;
///
/// let events = tracer.events();
/// assert!(matches!(events[0], TraceEvent::TxnBegin { id: 1 }));
/// assert!(matches!(events.last(), Some(TraceEvent::TxnCommitted { .. })));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecordingTracer {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl RecordingTracer {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        RecordingTracer::default()
    }

    /// A snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Discards recorded events.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl Tracer for RecordingTracer {
    fn event(&mut self, event: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, Perseas, PerseasConfig};
    use perseas_rnram::SimRemote;

    fn traced() -> (Perseas<SimRemote>, perseas_txn::RegionId, RecordingTracer) {
        let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        let r = db.malloc(64).unwrap();
        db.init_remote_db().unwrap();
        let tracer = RecordingTracer::new();
        db.set_tracer(Box::new(tracer.clone()));
        (db, r, tracer)
    }

    #[test]
    fn commit_emits_begin_ranges_commit() {
        let (mut db, r, tracer) = traced();
        db.begin_transaction().unwrap();
        db.set_range(r, 0, 8).unwrap();
        db.set_range(r, 8, 8).unwrap();
        db.write(r, 0, &[1; 16]).unwrap();
        db.commit_transaction().unwrap();

        let events = tracer.events();
        assert_eq!(events[0], TraceEvent::TxnBegin { id: 1 });
        assert_eq!(
            events[1],
            TraceEvent::SetRange {
                id: 1,
                region: 0,
                offset: 0,
                len: 8
            }
        );
        assert_eq!(
            *events.last().unwrap(),
            TraceEvent::TxnCommitted {
                id: 1,
                ranges: 1, // coalesced 0..8 + 8..16
                bytes: 16
            }
        );
    }

    #[test]
    fn abort_and_crash_are_traced() {
        let (mut db, r, tracer) = traced();
        db.begin_transaction().unwrap();
        db.set_range(r, 0, 4).unwrap();
        db.abort_transaction().unwrap();
        db.set_fault_plan(FaultPlan::crash_after(0));
        db.begin_transaction().unwrap();
        let _ = db.set_range(r, 0, 4);
        let events = tracer.events();
        assert!(events.contains(&TraceEvent::TxnAborted { id: 1 }));
        assert_eq!(*events.last().unwrap(), TraceEvent::Crashed);
    }

    #[test]
    fn undo_growth_and_mirror_changes_are_traced() {
        let cfg = PerseasConfig::default().with_initial_undo_capacity(64);
        let mut db = Perseas::init(vec![SimRemote::new("m")], cfg).unwrap();
        let r = db.malloc(1024).unwrap();
        db.init_remote_db().unwrap();
        let tracer = RecordingTracer::new();
        db.set_tracer(Box::new(tracer.clone()));

        db.begin_transaction().unwrap();
        db.set_range(r, 0, 512).unwrap();
        db.write(r, 0, &[2; 512]).unwrap();
        db.commit_transaction().unwrap();
        db.add_mirror(SimRemote::new("m2")).unwrap();
        db.remove_mirror(1).unwrap();

        let events = tracer.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::UndoGrown { new_capacity } if *new_capacity >= 548)));
        assert!(events.contains(&TraceEvent::MirrorAdded { index: 1 }));
        assert!(events.contains(&TraceEvent::MirrorRemoved { index: 1 }));
    }

    #[test]
    fn closures_are_tracers() {
        let (mut db, r, _) = traced();
        let count = Arc::new(Mutex::new(0usize));
        let c2 = count.clone();
        db.set_tracer(Box::new(move |_: &TraceEvent| {
            *c2.lock().unwrap() += 1;
        }));
        db.transaction(|tx| tx.update(r, 0, &[1; 4])).unwrap();
        assert!(*count.lock().unwrap() >= 3); // begin + set_range + commit
    }
}
