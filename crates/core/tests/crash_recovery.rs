//! Crash and recovery tests: the heart of the paper's reliability claims.
//!
//! The primary is crashed at every protocol step (and, separately, with
//! packet-granularity torn writes); recovery from the surviving mirror must
//! always produce either the pre-transaction or the post-transaction
//! database — never anything in between — and every transaction whose
//! commit record reached the mirror must survive.

use perseas_core::{FaultPlan, Perseas, PerseasConfig, RegionId, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

/// A fresh backend handle onto `node`, as a recovering workstation would
/// open.
fn reopen(node: &NodeMemory) -> SimRemote {
    SimRemote::with_parts(SimClock::new(), node.clone(), SciParams::dolphin_1998())
}

/// Builds a published database with one 256-byte region initialised to a
/// known pattern, returning (db, region, mirror node).
fn setup() -> (Perseas<SimRemote>, RegionId, NodeMemory) {
    let backend = SimRemote::new("mirror");
    let node = backend.node().clone();
    let mut db = Perseas::init(vec![backend], PerseasConfig::default()).unwrap();
    let r = db.malloc(256).unwrap();
    let init: Vec<u8> = (0..256).map(|i| i as u8).collect();
    db.write(r, 0, &init).unwrap();
    db.init_remote_db().unwrap();
    (db, r, node)
}

/// Runs the canonical two-range transaction against `db`.
fn run_txn(db: &mut Perseas<SimRemote>, r: RegionId) -> Result<(), TxnError> {
    db.begin_transaction()?;
    db.set_range(r, 0, 32)?;
    db.write(r, 0, &[0xAA; 32])?;
    db.set_range(r, 100, 50)?;
    db.write(r, 100, &[0xBB; 50])?;
    db.commit_transaction()
}

fn pre_image() -> Vec<u8> {
    (0..256).map(|i| i as u8).collect()
}

fn post_image() -> Vec<u8> {
    let mut v = pre_image();
    v[0..32].fill(0xAA);
    v[100..150].fill(0xBB);
    v
}

#[test]
fn recovery_without_crash_reproduces_database() {
    let (mut db, r, node) = setup();
    run_txn(&mut db, r).unwrap();
    let (db2, report) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    assert_eq!(db2.region_snapshot(r).unwrap(), post_image());
    assert_eq!(report.rolled_back_records, 0);
    assert_eq!(report.last_committed, 1);
    assert_eq!(report.regions, 1);
    assert_eq!(report.bytes_recovered, 256);
}

#[test]
fn crash_before_commit_record_loses_transaction_atomically() {
    // Crash after the data propagation but before the commit record: the
    // transaction must vanish entirely.
    let (mut db, r, node) = setup();
    // Count the steps of a full transaction first.
    run_txn(&mut db, r).unwrap();
    // New database, crash one step before the end.
    let (mut db, r2, node2) = setup();
    assert_eq!(r, r2);
    db.set_fault_plan(FaultPlan::crash_after(3)); // 2 set_ranges + 1 data write
    let err = run_txn(&mut db, r).unwrap_err();
    assert_eq!(err, TxnError::Crashed);
    assert!(db.is_crashed());
    drop(node);

    let (db2, report) = Perseas::recover(reopen(&node2), PerseasConfig::default()).unwrap();
    assert_eq!(db2.region_snapshot(r).unwrap(), pre_image());
    assert!(report.rolled_back_records > 0);
    assert_eq!(report.rolled_back_txn, Some(1));
}

#[test]
fn exhaustive_crash_point_sweep_preserves_atomicity() {
    // Determine the total number of protocol steps of the canonical
    // transaction.
    let (mut db, r, _) = setup();
    db.set_fault_plan(FaultPlan::none());
    run_txn(&mut db, r).unwrap();
    let total_steps = db.steps_taken();
    assert!(total_steps >= 5, "expected >= 5 steps, got {total_steps}");

    for crash_at in 0..total_steps {
        let (mut db, r, node) = setup();
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let result = run_txn(&mut db, r);
        assert_eq!(result.unwrap_err(), TxnError::Crashed, "step {crash_at}");

        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default())
            .unwrap_or_else(|e| panic!("recovery failed at step {crash_at}: {e}"));
        let got = db2.region_snapshot(r).unwrap();
        // The commit record is the final step, so every crash in this
        // sweep must recover the pre-transaction image.
        assert_eq!(
            got,
            pre_image(),
            "crash at step {crash_at} exposed partial state"
        );
    }

    // Crashing after the final step means the transaction committed.
    let (mut db, r, node) = setup();
    db.set_fault_plan(FaultPlan::crash_after(total_steps));
    run_txn(&mut db, r).unwrap();
    db.crash();
    let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    assert_eq!(db2.region_snapshot(r).unwrap(), post_image());
}

#[test]
fn torn_remote_write_is_rolled_back() {
    // Cut the SCI link mid-burst at every packet count: the mirror sees a
    // realistic torn prefix; recovery must still restore the pre-image of
    // whatever the transaction touched.
    for cut_after in 0..24 {
        let backend = SimRemote::new("mirror");
        let node = backend.node().clone();
        let link = backend.link().clone();
        let mut db = Perseas::init(vec![backend], PerseasConfig::default()).unwrap();
        let r = db.malloc(256).unwrap();
        let init = pre_image();
        db.write(r, 0, &init).unwrap();
        db.init_remote_db().unwrap();

        link.cut_after_packets(cut_after);
        let result = run_txn(&mut db, r);
        link.heal();
        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
        let got = db2.region_snapshot(r).unwrap();
        if result.is_ok() {
            assert_eq!(got, post_image(), "cut {cut_after}: committed txn lost");
        } else {
            assert_eq!(got, pre_image(), "cut {cut_after}: partial state leaked");
        }
    }
}

#[test]
fn committed_prefix_survives_crash_during_later_transaction() {
    let (mut db, r, node) = setup();
    // Commit three transactions.
    for i in 0..3u8 {
        db.begin_transaction().unwrap();
        db.set_range(r, i as usize * 10, 10).unwrap();
        db.write(r, i as usize * 10, &[0xC0 + i; 10]).unwrap();
        db.commit_transaction().unwrap();
    }
    let committed = db.region_snapshot(r).unwrap();

    // Crash inside the fourth.
    db.set_fault_plan(FaultPlan::crash_after(0));
    db.begin_transaction().unwrap();
    db.set_range(r, 200, 20).unwrap_err(); // crashes at the remote push
    assert!(db.is_crashed());

    let (db2, report) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    assert_eq!(db2.region_snapshot(r).unwrap(), committed);
    assert_eq!(report.last_committed, 3);
}

#[test]
fn recovered_instance_keeps_committing() {
    let (mut db, r, node) = setup();
    run_txn(&mut db, r).unwrap();
    db.crash();

    let (mut db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    db2.begin_transaction().unwrap();
    db2.set_range(r, 200, 8).unwrap();
    db2.write(r, 200, &[0xEE; 8]).unwrap();
    db2.commit_transaction().unwrap();
    assert_eq!(db2.last_committed(), 2);

    // And a second crash/recovery still sees both transactions.
    db2.crash();
    let (db3, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    let got = db3.region_snapshot(r).unwrap();
    let mut want = post_image();
    want[200..208].fill(0xEE);
    assert_eq!(got, want);
}

#[test]
fn crash_right_after_abort_is_harmless() {
    // The paper's abort is local-only; stale records on the mirror must be
    // ignored (or harmlessly re-applied) by recovery.
    let (mut db, r, node) = setup();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 64).unwrap();
    db.write(r, 0, &[0xDD; 64]).unwrap();
    db.abort_transaction().unwrap();
    db.crash();

    let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    assert_eq!(db2.region_snapshot(r).unwrap(), pre_image());
}

#[test]
fn abort_then_commit_then_crash_keeps_committed_data() {
    let (mut db, r, node) = setup();
    // Abort a transaction touching range A.
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 32).unwrap();
    db.write(r, 0, &[1; 32]).unwrap();
    db.abort_transaction().unwrap();
    // Commit a transaction touching range B.
    db.begin_transaction().unwrap();
    db.set_range(r, 64, 32).unwrap();
    db.write(r, 64, &[2; 32]).unwrap();
    db.commit_transaction().unwrap();
    db.crash();

    let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    let mut want = pre_image();
    want[64..96].fill(2);
    assert_eq!(db2.region_snapshot(r).unwrap(), want);
}

#[test]
fn crash_during_undo_growth_recovers_cleanly() {
    let cfg = PerseasConfig::default().with_initial_undo_capacity(64);
    let backend = SimRemote::new("mirror");
    let node = backend.node().clone();
    let mut db = Perseas::init(vec![backend], cfg).unwrap();
    let r = db.malloc(1024).unwrap();
    db.init_remote_db().unwrap();

    // Commit one transaction, then crash at each step of a transaction
    // whose undo log must grow.
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[3; 8]).unwrap();
    db.commit_transaction().unwrap();
    let committed = db.region_snapshot(r).unwrap();

    for crash_at in 0..8 {
        let reopened = reopen(&node);
        let (mut db, _) = Perseas::recover(reopened, cfg).unwrap();
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        db.begin_transaction().unwrap();
        let res = db
            .set_range(r, 0, 512) // forces growth past 64 bytes
            .and_then(|_| db.write(r, 0, &[4; 512]))
            .and_then(|_| db.commit_transaction());
        let (db2, _) = Perseas::recover(reopen(&node), cfg).unwrap();
        let got = db2.region_snapshot(r).unwrap();
        if res.is_ok() {
            let mut want = committed.clone();
            want[..512].fill(4);
            assert_eq!(got, want, "crash_at={crash_at}");
            break;
        } else {
            assert_eq!(got, committed, "crash_at={crash_at}");
        }
    }
}

#[test]
fn recovery_fails_cleanly_on_blank_node() {
    let node = NodeMemory::new("blank");
    let err = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)));
}

#[test]
fn recovery_fails_cleanly_on_unpublished_database() {
    let backend = SimRemote::new("mirror");
    let node = backend.node().clone();
    let mut db = Perseas::init(vec![backend], PerseasConfig::default()).unwrap();
    let _ = db.malloc(64).unwrap();
    // No init_remote_db: the metadata segment exists but holds zeros.
    let err = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)));
}

#[test]
fn two_mirrors_recover_best_prefers_newest() {
    let a = SimRemote::new("a");
    let b = SimRemote::new("b");
    let (node_a, node_b) = (a.node().clone(), b.node().clone());
    let link_b = b.link().clone();
    let mut db = Perseas::init(vec![a, b], PerseasConfig::default()).unwrap();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();

    // First transaction reaches both mirrors.
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[1; 8]).unwrap();
    db.commit_transaction().unwrap();

    // Cut mirror b, so the second transaction only lands on a.
    link_b.cut_after_packets(u64::MAX);
    db.begin_transaction().unwrap();
    db.set_range(r, 8, 8).unwrap();
    db.write(r, 8, &[2; 8]).unwrap();
    // b is wired after a in the mirror list, so a received everything
    // before the commit attempt fails on b.
    let _ = db.commit_transaction();
    db.crash();
    link_b.heal();

    let clock = SimClock::new();
    let (db2, report) = Perseas::recover_best(
        vec![reopen(&node_a), reopen(&node_b)],
        PerseasConfig::default(),
        clock,
    )
    .unwrap();
    // Mirror a carries commit record 2; it must win.
    assert!(report.last_committed >= 1);
    assert_eq!(db2.mirror_count(), 2);
    let snap = db2.region_snapshot(r).unwrap();
    assert_eq!(&snap[..8], &[1; 8]);
}

#[test]
fn availability_rebuild_on_third_node() {
    // The paper: "the database may be reconstructed quickly in any
    // workstation of the network".
    let (mut db, r, node) = setup();
    run_txn(&mut db, r).unwrap();
    db.crash();

    // A brand-new workstation recovers the database...
    let (mut db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    // ...and re-establishes redundancy on a third node.
    let third = SimRemote::new("third");
    let third_node = third.node().clone();
    db2.add_mirror(third).unwrap();
    assert_eq!(db2.mirror_count(), 2);

    // Now even if the original mirror dies, the data lives on the third.
    node.crash();
    db2.crash();
    let (db3, _) = Perseas::recover(reopen(&third_node), PerseasConfig::default()).unwrap();
    assert_eq!(db3.region_snapshot(r).unwrap(), post_image());
}

#[test]
fn stale_records_of_aborted_overlapping_txn_never_replay() {
    // Regression test: an aborted transaction with overlapping set_ranges
    // leaves undo records whose before-images contain its own uncommitted
    // mid-transaction values. If a *newer* in-flight transaction writes
    // fewer undo bytes and then crashes, the stale tail sits right behind
    // the new records — and must NOT be replayed by recovery.
    let (mut db, r, node) = setup();

    // Transaction 1: overlapping ranges, aborted. The second record's
    // before-image of byte 168 is the uncommitted 0xAA.
    db.begin_transaction().unwrap();
    db.set_range(r, 168, 60).unwrap();
    db.write(r, 168, &[0xAA; 60]).unwrap();
    db.set_range(r, 148, 21).unwrap(); // overlaps byte 168
    db.abort_transaction().unwrap();

    // Transaction 2: small, crashes mid-commit, leaving its (short)
    // records at the head of the undo log and txn 1's stale tail behind.
    db.set_fault_plan(FaultPlan::crash_after(1));
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 4).unwrap();
    let _ = db
        .write(r, 0, &[0xBB; 4])
        .and_then(|_| db.commit_transaction());
    assert!(db.is_crashed());

    let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    assert_eq!(
        db2.region_snapshot(r).unwrap(),
        pre_image(),
        "a stale undo record of the aborted transaction leaked into recovery"
    );
}

#[test]
fn batched_ranges_crash_sweep() {
    // The batched declaration path must preserve atomicity at every
    // crash point, exactly like the per-range path.
    let run = |db: &mut Perseas<SimRemote>, r: RegionId| -> Result<(), TxnError> {
        db.begin_transaction()?;
        db.set_ranges(&[(r, 0, 32), (r, 100, 50)])?;
        db.write(r, 0, &[0xAA; 32])?;
        db.write(r, 100, &[0xBB; 50])?;
        db.commit_transaction()
    };
    let (mut db, r, _) = setup();
    run(&mut db, r).unwrap();
    let total = db.steps_taken();

    for crash_at in 0..=total {
        let (mut db, r, node) = setup();
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = run(&mut db, r);
        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
        let got = db2.region_snapshot(r).unwrap();
        if res.is_ok() {
            assert_eq!(got, post_image(), "crash_at={crash_at}");
        } else {
            assert_eq!(got, pre_image(), "crash_at={crash_at}");
        }
    }
}

#[test]
fn recovery_never_panics_on_corrupted_mirrors() {
    use perseas_simtime::det_rng;
    // Scribble random garbage over random remote segments; recovery must
    // either succeed (corruption missed the metadata invariants) or fail
    // with a clean error — never panic, never loop.
    let mut rng = det_rng(0xC0FFEE);
    for round in 0..60 {
        let (mut db, r, node) = setup();
        run_txn(&mut db, r).unwrap();
        db.crash();

        let segments = node.list_segments().unwrap();
        let n_corruptions = 1 + rng.gen_index(4);
        for _ in 0..n_corruptions {
            let seg = segments[rng.gen_index(segments.len())];
            if seg.len == 0 {
                continue;
            }
            let off = rng.gen_index(seg.len);
            let len = (1 + rng.gen_index(64)).min(seg.len - off);
            let mut junk = vec![0u8; len];
            rng.fill_bytes(&mut junk);
            node.write(seg.id, off, &junk).unwrap();
        }

        match Perseas::recover(reopen(&node), PerseasConfig::default()) {
            Ok((db2, _)) => {
                // Whatever survived must still be readable.
                let _ = db2.region_snapshot(r);
            }
            Err(e) => {
                assert!(matches!(e, TxnError::Unavailable(_)), "round {round}: {e}");
            }
        }
    }
}
