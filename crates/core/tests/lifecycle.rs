//! Behavioural tests of the PERSEAS API lifecycle, mirroring Section 3 of
//! the paper.

use perseas_core::{Perseas, PerseasConfig, RegionId, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

fn fresh() -> Perseas<SimRemote> {
    Perseas::init(vec![SimRemote::new("mirror")], PerseasConfig::default()).unwrap()
}

fn published(region_len: usize) -> (Perseas<SimRemote>, RegionId) {
    let mut db = fresh();
    let r = db.malloc(region_len).unwrap();
    db.init_remote_db().unwrap();
    (db, r)
}

#[test]
fn init_requires_a_mirror() {
    let err = Perseas::<SimRemote>::init(vec![], PerseasConfig::default()).unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)));
}

#[test]
fn full_commit_roundtrip() {
    let (mut db, r) = published(64);
    db.begin_transaction().unwrap();
    db.set_range(r, 8, 8).unwrap();
    db.write(r, 8, &[7; 8]).unwrap();
    db.commit_transaction().unwrap();
    let mut buf = [0u8; 64];
    db.read(r, 0, &mut buf).unwrap();
    assert_eq!(&buf[8..16], &[7; 8]);
    assert_eq!(&buf[..8], &[0; 8]);
    assert_eq!(db.last_committed(), 1);
    assert_eq!(db.stats().commits, 1);
}

#[test]
fn abort_restores_before_image() {
    let (mut db, r) = published(32);
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 16).unwrap();
    db.write(r, 0, &[9; 16]).unwrap();
    db.abort_transaction().unwrap();
    assert_eq!(db.region_snapshot(r).unwrap(), vec![0; 32]);
    assert_eq!(db.stats().aborts, 1);
    // An abort performs zero remote writes beyond those of set_range.
    let remote_before = db.stats().remote_writes;
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 4).unwrap();
    let after_set = db.stats().remote_writes;
    db.write(r, 0, &[1; 4]).unwrap();
    db.abort_transaction().unwrap();
    assert_eq!(db.stats().remote_writes, after_set);
    assert!(after_set > remote_before);
}

#[test]
fn overlapping_set_ranges_abort_to_oldest_image() {
    let (mut db, r) = published(16);
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap(); // before-image: zeros
    db.write(r, 0, &[1; 8]).unwrap();
    db.set_range(r, 4, 8).unwrap(); // before-image: [1,1,1,1,0,0,0,0]
    db.write(r, 4, &[2; 8]).unwrap();
    db.abort_transaction().unwrap();
    assert_eq!(db.region_snapshot(r).unwrap(), vec![0; 16]);
}

#[test]
fn writes_must_be_declared() {
    let (mut db, r) = published(32);
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    let err = db.write(r, 4, &[0; 8]).unwrap_err();
    assert_eq!(
        err,
        TxnError::RangeNotDeclared {
            region: r,
            offset: 8
        }
    );
    // Two adjacent declarations jointly cover a spanning write.
    db.set_range(r, 8, 8).unwrap();
    db.write(r, 4, &[3; 8]).unwrap();
    db.commit_transaction().unwrap();
}

#[test]
fn state_machine_errors() {
    let mut db = fresh();
    let r = db.malloc(8).unwrap();

    assert_eq!(
        db.begin_transaction().unwrap_err(),
        TxnError::BadPublishState
    );
    db.init_remote_db().unwrap();
    assert_eq!(db.init_remote_db().unwrap_err(), TxnError::BadPublishState);
    assert_eq!(db.malloc(8).unwrap_err(), TxnError::BadPublishState);
    assert_eq!(
        db.commit_transaction().unwrap_err(),
        TxnError::NoActiveTransaction
    );
    assert_eq!(
        db.abort_transaction().unwrap_err(),
        TxnError::NoActiveTransaction
    );
    assert_eq!(
        db.set_range(r, 0, 4).unwrap_err(),
        TxnError::NoActiveTransaction
    );
    assert_eq!(
        db.write(r, 0, &[1]).unwrap_err(),
        TxnError::NoActiveTransaction
    );

    db.begin_transaction().unwrap();
    assert_eq!(
        db.begin_transaction().unwrap_err(),
        TxnError::TransactionAlreadyActive
    );
}

#[test]
fn bounds_and_unknown_regions() {
    let (mut db, r) = published(8);
    let ghost = RegionId::from_raw(42);
    assert_eq!(
        db.region_len(ghost).unwrap_err(),
        TxnError::UnknownRegion(ghost)
    );
    db.begin_transaction().unwrap();
    assert!(matches!(
        db.set_range(r, 6, 4).unwrap_err(),
        TxnError::OutOfBounds { .. }
    ));
    assert!(matches!(
        db.set_range(ghost, 0, 1).unwrap_err(),
        TxnError::UnknownRegion(_)
    ));
    let mut buf = [0u8; 9];
    assert!(matches!(
        db.read(r, 0, &mut buf).unwrap_err(),
        TxnError::OutOfBounds { .. }
    ));
}

#[test]
fn empty_set_range_is_noop() {
    let (mut db, r) = published(8);
    db.begin_transaction().unwrap();
    db.set_range(r, 4, 0).unwrap();
    assert_eq!(db.stats().set_ranges, 0);
    db.commit_transaction().unwrap();
    // An empty transaction commits without remote traffic.
    assert_eq!(db.last_committed(), 0);
}

#[test]
fn small_transaction_is_three_protocol_copies() {
    // Figure 3: (1) before-image -> local undo log, (2) local undo ->
    // remote undo (remote write), (3) local db -> remote db (remote
    // write). Plus one 8-byte commit record. Zero disk accesses.
    let (mut db, r) = published(64);
    let before = db.stats();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 4).unwrap();
    db.write(r, 0, &[1; 4]).unwrap();
    db.commit_transaction().unwrap();
    let d = db.stats().since(&before);
    assert_eq!(d.local_copies, 1);
    assert_eq!(d.remote_writes, 3); // undo append + data + commit record
    assert_eq!(d.disk_sync_writes + d.disk_async_writes, 0);
}

#[test]
fn small_transaction_latency_is_under_10_microseconds() {
    // The paper: "for very small transactions, the latency that PERSEAS
    // imposes is less than 8 us", i.e. > 125 000 transactions/second.
    let clock = SimClock::new();
    let mirror = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("mirror"),
        SciParams::dolphin_1998(),
    );
    let mut db =
        Perseas::init_with_clock(vec![mirror], PerseasConfig::default(), clock.clone()).unwrap();
    let r = db.malloc(1 << 20).unwrap();
    db.init_remote_db().unwrap();

    let sw = clock.stopwatch();
    db.begin_transaction().unwrap();
    db.set_range(r, 4096, 4).unwrap();
    db.write(r, 4096, &[1; 4]).unwrap();
    db.commit_transaction().unwrap();
    let elapsed = sw.elapsed();
    assert!(
        elapsed.as_micros_f64() < 10.0,
        "small txn took {elapsed}, expected < 10us"
    );
}

#[test]
fn undo_log_grows_on_demand() {
    let cfg = PerseasConfig::default().with_initial_undo_capacity(128);
    let mut db = Perseas::init(vec![SimRemote::new("m")], cfg).unwrap();
    let r = db.malloc(4096).unwrap();
    db.init_remote_db().unwrap();
    db.begin_transaction().unwrap();
    // Far larger than the 128-byte initial undo log.
    db.set_range(r, 0, 2048).unwrap();
    db.write(r, 0, &[5; 2048]).unwrap();
    db.set_range(r, 2048, 1024).unwrap();
    db.write(r, 2048, &[6; 1024]).unwrap();
    db.commit_transaction().unwrap();
    let snap = db.region_snapshot(r).unwrap();
    assert!(snap[..2048].iter().all(|&b| b == 5));
    assert!(snap[2048..3072].iter().all(|&b| b == 6));

    // And abort still restores correctly after growth.
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 4096).unwrap();
    db.write(r, 0, &[9; 4096]).unwrap();
    db.abort_transaction().unwrap();
    let snap2 = db.region_snapshot(r).unwrap();
    assert_eq!(&snap2[..2048], &snap[..2048]);
}

#[test]
fn multiple_regions_commit_together() {
    let mut db = fresh();
    let a = db.malloc(16).unwrap();
    let b = db.malloc(16).unwrap();
    db.init_remote_db().unwrap();
    db.begin_transaction().unwrap();
    db.set_range(a, 0, 4).unwrap();
    db.set_range(b, 8, 4).unwrap();
    db.write(a, 0, &[1; 4]).unwrap();
    db.write(b, 8, &[2; 4]).unwrap();
    db.commit_transaction().unwrap();
    assert_eq!(&db.region_snapshot(a).unwrap()[..4], &[1; 4]);
    assert_eq!(&db.region_snapshot(b).unwrap()[8..12], &[2; 4]);
}

#[test]
fn region_table_capacity_is_enforced() {
    let cfg = PerseasConfig::default().with_max_regions(2);
    let mut db = Perseas::init(vec![SimRemote::new("m")], cfg).unwrap();
    db.malloc(8).unwrap();
    db.malloc(8).unwrap();
    assert!(matches!(
        db.malloc(8).unwrap_err(),
        TxnError::Unavailable(_)
    ));
}

#[test]
fn mirror_bytes_match_local_after_commits() {
    let (mut db, r) = published(512);
    for i in 0..20u8 {
        db.begin_transaction().unwrap();
        let off = (i as usize * 17) % 400;
        db.set_range(r, off, 64).unwrap();
        db.write(r, off, &[i; 64]).unwrap();
        db.commit_transaction().unwrap();
    }
    let local = db.region_snapshot(r).unwrap();
    // Recover from the surviving mirror node into a second instance (as a
    // new workstation would) and compare byte-for-byte.
    let node: NodeMemory = db.mirror_backend(0).unwrap().node().clone();
    let backend = SimRemote::with_parts(SimClock::new(), node, SciParams::dolphin_1998());
    let (db2, _) = Perseas::recover(backend, PerseasConfig::default()).unwrap();
    assert_eq!(db2.region_snapshot(r).unwrap(), local);
}

#[test]
fn batched_set_ranges_is_equivalent_but_cheaper() {
    // Semantics: identical to per-range declarations.
    let (mut db, r) = published(256);
    db.begin_transaction().unwrap();
    db.set_ranges(&[(r, 0, 8), (r, 64, 8), (r, 128, 8)])
        .unwrap();
    db.write(r, 0, &[1; 8]).unwrap();
    db.write(r, 64, &[2; 8]).unwrap();
    db.write(r, 128, &[3; 8]).unwrap();
    db.abort_transaction().unwrap();
    assert_eq!(db.region_snapshot(r).unwrap(), vec![0; 256]);

    db.begin_transaction().unwrap();
    db.set_ranges(&[(r, 0, 8), (r, 64, 8)]).unwrap();
    db.write(r, 0, &[4; 8]).unwrap();
    db.write(r, 64, &[5; 8]).unwrap();
    db.commit_transaction().unwrap();
    let snap = db.region_snapshot(r).unwrap();
    assert_eq!(&snap[..8], &[4; 8]);
    assert_eq!(&snap[64..72], &[5; 8]);

    // Cost: one remote undo write per mirror for the whole batch.
    let before = db.stats();
    db.begin_transaction().unwrap();
    db.set_ranges(&[(r, 0, 4), (r, 32, 4), (r, 96, 4), (r, 200, 4)])
        .unwrap();
    let batched = db.stats().since(&before).remote_writes;
    db.abort_transaction().unwrap();
    assert_eq!(batched, 1, "4 ranges should need 1 undo burst");

    let before = db.stats();
    db.begin_transaction().unwrap();
    for off in [0usize, 32, 96, 200] {
        db.set_range(r, off, 4).unwrap();
    }
    let unbatched = db.stats().since(&before).remote_writes;
    db.abort_transaction().unwrap();
    assert_eq!(unbatched, 4);
}

#[test]
fn batched_set_ranges_validates_all_or_nothing() {
    let (mut db, r) = published(64);
    db.begin_transaction().unwrap();
    let err = db
        .set_ranges(&[(r, 0, 8), (r, 60, 8)]) // second is out of bounds
        .unwrap_err();
    assert!(matches!(err, TxnError::OutOfBounds { .. }));
    // Nothing was declared: writes to the first range are rejected too.
    assert!(matches!(
        db.write(r, 0, &[1; 8]).unwrap_err(),
        TxnError::RangeNotDeclared { .. }
    ));
}
