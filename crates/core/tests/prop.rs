//! Property-based tests: PERSEAS against a reference model.
//!
//! The model is a plain `Vec<u8>` updated only on commit. After any random
//! sequence of transactions (with commits, aborts, overlapping ranges, and
//! an optionally injected crash at a random protocol step), the PERSEAS
//! database — recovered from its mirror when crashed — must equal the
//! model exactly.

use proptest::prelude::*;

use perseas_core::{FaultPlan, Perseas, PerseasConfig, RegionId};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

const REGION_LEN: usize = 512;

#[derive(Debug, Clone)]
struct Op {
    ranges: Vec<(usize, usize, u8)>, // offset, len, fill byte
    commit: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        prop::collection::vec(
            (0usize..REGION_LEN, 1usize..64, any::<u8>()).prop_map(|(off, len, b)| {
                let len = len.min(REGION_LEN - off).max(1);
                (off, len, b)
            }),
            1..5,
        ),
        any::<bool>(),
    )
        .prop_map(|(ranges, commit)| Op { ranges, commit })
}

fn reopen(node: &NodeMemory) -> SimRemote {
    SimRemote::with_parts(SimClock::new(), node.clone(), SciParams::dolphin_1998())
}

fn build() -> (Perseas<SimRemote>, RegionId, NodeMemory) {
    let cfg = PerseasConfig::default().with_initial_undo_capacity(256);
    let backend = SimRemote::new("mirror");
    let node = backend.node().clone();
    let mut db = Perseas::init(vec![backend], cfg).unwrap();
    let r = db.malloc(REGION_LEN).unwrap();
    db.init_remote_db().unwrap();
    (db, r, node)
}

/// Applies one transaction to both the system under test and the model.
fn apply(db: &mut Perseas<SimRemote>, r: RegionId, model: &mut [u8], op: &Op) {
    db.begin_transaction().unwrap();
    let mut staged = model.to_vec();
    for &(off, len, b) in &op.ranges {
        db.set_range(r, off, len).unwrap();
        db.write(r, off, &vec![b; len]).unwrap();
        staged[off..off + len].fill(b);
    }
    if op.commit {
        db.commit_transaction().unwrap();
        model.copy_from_slice(&staged);
    } else {
        db.abort_transaction().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without crashes, PERSEAS equals the model after any history, and
    /// so does the database recovered from its mirror.
    #[test]
    fn matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..20)) {
        let (mut db, r, node) = build();
        let mut model = vec![0u8; REGION_LEN];
        for op in &ops {
            apply(&mut db, r, &mut model, op);
        }
        prop_assert_eq!(db.region_snapshot(r).unwrap(), model.clone());

        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
        prop_assert_eq!(db2.region_snapshot(r).unwrap(), model);
    }

    /// With a crash injected at an arbitrary protocol step of the final
    /// transaction, recovery yields the model either before or after that
    /// transaction — nothing else. Durability must agree with whether the
    /// transaction reported success.
    #[test]
    fn crash_atomicity(
        ops in prop::collection::vec(op_strategy(), 0..8),
        last in op_strategy(),
        crash_step in 0u64..40,
    ) {
        let (mut db, r, node) = build();
        let mut model = vec![0u8; REGION_LEN];
        for op in &ops {
            apply(&mut db, r, &mut model, op);
        }

        let before = model.clone();
        let mut after = model.clone();
        for &(off, len, b) in &last.ranges {
            after[off..off + len].fill(b);
        }

        db.set_fault_plan(FaultPlan::crash_after(crash_step));
        let mut outcome = Ok(());
        (|| -> Result<(), perseas_core::TxnError> {
            db.begin_transaction()?;
            for &(off, len, b) in &last.ranges {
                db.set_range(r, off, len)?;
                db.write(r, off, &vec![b; len])?;
            }
            db.commit_transaction()
        })()
        .map_err(|e| outcome = Err(e))
        .ok();

        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
        let got = db2.region_snapshot(r).unwrap();
        if outcome.is_ok() {
            // The transaction reported success: it must be durable.
            prop_assert_eq!(got, after);
        } else {
            // Crashed: all-or-nothing.
            prop_assert!(
                got == before || got == after,
                "recovered state is neither pre- nor post-transaction"
            );
        }
    }

    /// Aborted transactions never leak into the recovered image, no matter
    /// how the history interleaves commits and aborts.
    #[test]
    fn aborts_are_invisible_after_recovery(
        ops in prop::collection::vec(op_strategy(), 1..12),
    ) {
        let (mut db, r, node) = build();
        let mut model = vec![0u8; REGION_LEN];
        for op in &ops {
            apply(&mut db, r, &mut model, op);
        }
        db.crash();
        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
        prop_assert_eq!(db2.region_snapshot(r).unwrap(), model);
    }
}
