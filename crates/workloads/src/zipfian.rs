//! Skewed key-choice generators for contention studies.
//!
//! Conflict-table claims make PERSEAS readers abort exactly when key
//! choice is *skewed*: a uniform workload over 10 000 accounts rarely
//! collides, while a zipfian one hammers a handful of hot keys. The
//! snapshot-read scenario suite drives both generators against MVCC
//! snapshots (which must never abort) and against legacy claimed reads
//! (which must abort under skew) to prove the difference.
//!
//! Both generators use only integer arithmetic — fixed-point cumulative
//! weights and permille probabilities — so a seeded sample stream is
//! byte-identical on every platform, which the sim-determinism CI gate
//! relies on.

use perseas_simtime::DetRng;

/// Fixed-point scale for the zipfian weight table (32 fractional bits).
const FP: u64 = 1 << 32;

/// A classic zipfian (s = 1) distribution over ranks `0..n`: rank `r` is
/// drawn proportionally to `1 / (r + 1)`. Rank 0 is the hottest key.
///
/// # Examples
///
/// ```
/// use perseas_simtime::det_rng;
/// use perseas_workloads::Zipfian;
///
/// let z = Zipfian::new(100);
/// let mut rng = det_rng(7);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    /// Cumulative fixed-point weights; `cum[r]` is the total weight of
    /// ranks `0..=r`.
    cum: Vec<u64>,
}

impl Zipfian {
    /// Builds the cumulative weight table for `n` keys.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Zipfian {
        assert!(n > 0, "zipfian needs at least one key");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0u64;
        for r in 0..n as u64 {
            total += FP / (r + 1);
            cum.push(total);
        }
        Zipfian { cum }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether the distribution has no keys (never: `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draws one rank in `0..n`, hottest-first.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let total = *self.cum.last().expect("non-empty table");
        let x = rng.gen_range(total);
        self.cum.partition_point(|&c| c <= x)
    }
}

/// A hotspot distribution: a fixed fraction of accesses lands uniformly
/// on a small leading set of hot keys, the rest uniformly on the cold
/// remainder — the standard "90% of traffic to 10% of data" shape, with
/// both fractions in permille for integer determinism.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    n: usize,
    hot_keys: usize,
    access_permille: u64,
}

impl Hotspot {
    /// `keys_permille` of the `n` keys (at least one) receive
    /// `access_permille` of the accesses.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or either permille exceeds 1000.
    pub fn new(n: usize, keys_permille: u64, access_permille: u64) -> Hotspot {
        assert!(n > 0, "hotspot needs at least one key");
        assert!(keys_permille <= 1000, "permille out of range");
        assert!(access_permille <= 1000, "permille out of range");
        let hot_keys = ((n as u64 * keys_permille) / 1000).max(1).min(n as u64) as usize;
        Hotspot {
            n,
            hot_keys,
            access_permille,
        }
    }

    /// The classic 90/10 hotspot.
    pub fn ninety_ten(n: usize) -> Hotspot {
        Hotspot::new(n, 100, 900)
    }

    /// Size of the hot set.
    pub fn hot_keys(&self) -> usize {
        self.hot_keys
    }

    /// Draws one key in `0..n`; the hot set is the leading keys.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        if rng.gen_range(1000) < self.access_permille {
            rng.gen_index(self.hot_keys)
        } else if self.hot_keys < self.n {
            self.hot_keys + rng.gen_index(self.n - self.hot_keys)
        } else {
            rng.gen_index(self.n)
        }
    }
}

/// A read/write mix in permille (950 = the classic 95/5 read-mostly
/// split), integer-deterministic like the key generators.
#[derive(Debug, Clone, Copy)]
pub struct ReadMix {
    read_permille: u64,
}

impl ReadMix {
    /// # Panics
    ///
    /// Panics if `read_permille` exceeds 1000.
    pub fn new(read_permille: u64) -> ReadMix {
        assert!(read_permille <= 1000, "permille out of range");
        ReadMix { read_permille }
    }

    /// Draws whether the next operation is a read.
    pub fn is_read(&self, rng: &mut DetRng) -> bool {
        rng.gen_range(1000) < self.read_permille
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perseas_simtime::det_rng;

    #[test]
    fn zipfian_prefers_low_ranks() {
        let z = Zipfian::new(50);
        let mut rng = det_rng(1);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1], "rank 0 is the hottest");
        assert!(counts[1] > counts[10]);
        assert!(counts[0] > 20_000 / 10, "rank 0 draws >10% under s=1");
    }

    #[test]
    fn zipfian_stays_in_bounds_and_is_deterministic() {
        let z = Zipfian::new(7);
        let draw = |seed| {
            let mut rng = det_rng(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(9);
        assert!(a.iter().all(|&r| r < 7));
        assert_eq!(a, draw(9), "same seed, same stream");
        assert_ne!(a, draw(10), "different seed, different stream");
    }

    #[test]
    fn single_key_zipfian_always_draws_it() {
        let z = Zipfian::new(1);
        let mut rng = det_rng(3);
        assert!((0..10).all(|_| z.sample(&mut rng) == 0));
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let h = Hotspot::ninety_ten(1000);
        assert_eq!(h.hot_keys(), 100);
        let mut rng = det_rng(5);
        let hot = (0..10_000)
            .filter(|_| h.sample(&mut rng) < h.hot_keys())
            .count();
        // ~90% of draws land on the hot 10%; allow generous slack.
        assert!((8_500..=9_500).contains(&hot), "hot draws: {hot}");
    }

    #[test]
    fn hotspot_with_everything_hot_is_uniform() {
        let h = Hotspot::new(4, 1000, 1000);
        let mut rng = det_rng(6);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[h.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn read_mix_hits_its_ratio() {
        let m = ReadMix::new(950);
        let mut rng = det_rng(8);
        let reads = (0..10_000).filter(|_| m.is_read(&mut rng)).count();
        assert!((9_300..=9_700).contains(&reads), "reads: {reads}");
    }
}
