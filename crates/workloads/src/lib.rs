//! The paper's benchmark workloads (Section 5), runnable against any
//! [`TransactionalMemory`] — PERSEAS or any baseline — so that Table 1 and
//! Figure 6 regenerate from the same code paths.
//!
//! The three workloads follow Lowell & Chen's Rio/Vista benchmark suite,
//! which the paper states it uses verbatim:
//!
//! * [`Synthetic`] — each transaction modifies one random range of a fixed
//!   size; sweeping the size from 4 bytes to 1 MB yields Figure 6;
//! * [`DebitCredit`] — TPC-B-like banking: update an account, its teller
//!   and branch balances, and append a history record;
//! * [`OrderEntry`] — TPC-C-like new-order transactions of a wholesale
//!   supplier: allocate an order id, decrement stock for 5–15 items,
//!   insert the order and its order lines;
//! * [`FileSys`] — a journaling file system's metadata engine
//!   (create/append/rename/unlink over inode and directory tables), the
//!   third domain the paper's introduction motivates.
//!
//! Every workload carries built-in consistency checks (balance
//! conservation, order/stock invariants) so correctness bugs in a system
//! under test surface as check failures, not silently wrong throughput.
//!
//! # Examples
//!
//! ```
//! use perseas_simtime::SimClock;
//! use perseas_baselines::VistaSystem;
//! use perseas_workloads::{run_workload, DebitCredit, Workload};
//!
//! # fn main() -> Result<(), perseas_txn::TxnError> {
//! let mut tm = VistaSystem::new(SimClock::new());
//! let mut wl = DebitCredit::small();
//! wl.setup(&mut tm)?;
//! let report = run_workload(&mut tm, &mut wl, 100)?;
//! assert_eq!(report.txns, 100);
//! wl.check(&tm).expect("balances conserved");
//! # Ok(())
//! # }
//! ```

mod debitcredit;
mod driver;
mod filesys;
mod orderentry;
mod synthetic;
mod zipfian;

pub use debitcredit::{DebitCredit, DebitCreditScale};
pub use driver::{run_workload, RunReport};
pub use filesys::{FileSys, FileSysScale};
pub use orderentry::{OrderEntry, OrderEntryScale};
pub use synthetic::Synthetic;
pub use zipfian::{Hotspot, ReadMix, Zipfian};

use perseas_txn::{TransactionalMemory, TxnError};

/// A benchmark workload drivable against any transactional memory.
pub trait Workload {
    /// Short name ("synthetic", "debit-credit", "order-entry").
    fn name(&self) -> &'static str;

    /// Allocates and initialises the database (before `publish`), then
    /// publishes it.
    ///
    /// # Errors
    ///
    /// Propagates system errors.
    fn setup(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError>;

    /// Runs one transaction.
    ///
    /// # Errors
    ///
    /// Propagates system errors.
    fn run_txn(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError>;

    /// Verifies workload-level invariants against the current database
    /// contents.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    fn check(&self, tm: &dyn TransactionalMemory) -> Result<(), String>;
}
