//! A file-system metadata workload — the third domain the paper's
//! introduction motivates ("CAD environments, file systems and
//! databases").
//!
//! Models a journaling file system's metadata engine: an inode table and
//! a directory-entry table inside recoverable memory. Each transaction is
//! one of *create*, *write-append* (bump an inode's size and mtime),
//! *rename*, or *unlink* — multi-record updates whose invariants
//! (directory entries reference live inodes; link counts match entries;
//! used-inode accounting) make torn updates instantly visible.

use perseas_simtime::{det_rng, DetRng};
use perseas_txn::{RegionId, TransactionalMemory, TxnError};

use crate::Workload;

const INODE_SIZE: usize = 32; // flags u32, links u32, size u64, mtime u64, pad
const DENT_SIZE: usize = 24; // used u32, pad u32, inode u64, name_hash u64
const SUPER_SIZE: usize = 32; // used_inodes u64, used_dents u64, ops u64, pad

const F_USED: u32 = 1;

/// Scaling parameters of the file-system workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileSysScale {
    /// Inode table capacity.
    pub inodes: usize,
    /// Directory-entry table capacity.
    pub dentries: usize,
}

impl FileSysScale {
    /// A small working set comparable to the paper's other databases.
    pub fn paper() -> Self {
        FileSysScale {
            inodes: 4_096,
            dentries: 8_192,
        }
    }

    /// A tiny configuration for fast tests.
    pub fn tiny() -> Self {
        FileSysScale {
            inodes: 32,
            dentries: 64,
        }
    }
}

/// The file-system metadata workload.
#[derive(Debug)]
pub struct FileSys {
    scale: FileSysScale,
    rng: DetRng,
    superblock: Option<RegionId>,
    inodes: Option<RegionId>,
    dentries: Option<RegionId>,
    /// Local shadow: which dentry slots are used and which inode each
    /// references (drives operation choice; the durable truth lives in the
    /// transactional memory and is cross-checked by `check`).
    live_dents: Vec<Option<usize>>,
    txns: u64,
}

impl FileSys {
    /// Creates the workload at the given scale with a deterministic seed.
    pub fn new(scale: FileSysScale, seed: u64) -> Self {
        FileSys {
            scale,
            rng: det_rng(seed),
            superblock: None,
            inodes: None,
            dentries: None,
            live_dents: vec![None; scale.dentries],
            txns: 0,
        }
    }

    /// The paper-scale configuration.
    pub fn paper() -> Self {
        FileSys::new(FileSysScale::paper(), 0xF11E)
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        FileSys::new(FileSysScale::tiny(), 0xF11E)
    }

    /// Transactions executed so far.
    pub fn txns(&self) -> u64 {
        self.txns
    }

    /// Attaches to an existing (e.g. recovered) database for auditing:
    /// region handles are supplied instead of allocated, and only
    /// [`Workload::check`] is meaningful on the result.
    pub fn attach(
        scale: FileSysScale,
        superblock: RegionId,
        inodes: RegionId,
        dentries: RegionId,
    ) -> Self {
        let mut fs = FileSys::new(scale, 0);
        fs.superblock = Some(superblock);
        fs.inodes = Some(inodes);
        fs.dentries = Some(dentries);
        fs
    }

    fn read_u32(
        tm: &dyn TransactionalMemory,
        region: RegionId,
        off: usize,
    ) -> Result<u32, TxnError> {
        let mut b = [0u8; 4];
        tm.read(region, off, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(
        tm: &dyn TransactionalMemory,
        region: RegionId,
        off: usize,
    ) -> Result<u64, TxnError> {
        let mut b = [0u8; 8];
        tm.read(region, off, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn bump_super(
        &self,
        tm: &mut dyn TransactionalMemory,
        d_inodes: i64,
        d_dents: i64,
    ) -> Result<(), TxnError> {
        let sb = self.superblock.expect("setup() not called");
        tm.set_range(sb, 0, 24)?;
        let inodes = Self::read_u64(tm, sb, 0)?;
        let dents = Self::read_u64(tm, sb, 8)?;
        let ops = Self::read_u64(tm, sb, 16)?;
        tm.write(sb, 0, &(inodes.wrapping_add_signed(d_inodes)).to_le_bytes())?;
        tm.write(sb, 8, &(dents.wrapping_add_signed(d_dents)).to_le_bytes())?;
        tm.write(sb, 16, &(ops + 1).to_le_bytes())
    }

    fn find_free_inode(&self, tm: &dyn TransactionalMemory) -> Result<Option<usize>, TxnError> {
        let inodes = self.inodes.expect("setup() not called");
        for i in 0..self.scale.inodes {
            if Self::read_u32(tm, inodes, i * INODE_SIZE)? & F_USED == 0 {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// Creates a file: allocate an inode, fill a dentry, bump the
    /// superblock.
    fn op_create(&mut self, tm: &mut dyn TransactionalMemory, slot: usize) -> Result<(), TxnError> {
        let Some(ino) = self.find_free_inode(tm)? else {
            return Ok(()); // table full; skip
        };
        let inodes = self.inodes.expect("setup");
        let dents = self.dentries.expect("setup");

        tm.begin_transaction()?;
        tm.set_range(inodes, ino * INODE_SIZE, INODE_SIZE)?;
        let mut inode = [0u8; INODE_SIZE];
        inode[0..4].copy_from_slice(&F_USED.to_le_bytes());
        inode[4..8].copy_from_slice(&1u32.to_le_bytes()); // links
        inode[16..24].copy_from_slice(&self.txns.to_le_bytes()); // mtime
        tm.write(inodes, ino * INODE_SIZE, &inode)?;

        tm.set_range(dents, slot * DENT_SIZE, DENT_SIZE)?;
        let mut dent = [0u8; DENT_SIZE];
        dent[0..4].copy_from_slice(&1u32.to_le_bytes());
        dent[8..16].copy_from_slice(&(ino as u64).to_le_bytes());
        dent[16..24].copy_from_slice(&self.rng.next_u64().to_le_bytes());
        tm.write(dents, slot * DENT_SIZE, &dent)?;

        self.bump_super(tm, 1, 1)?;
        tm.commit_transaction()?;
        self.live_dents[slot] = Some(ino);
        Ok(())
    }

    /// Appends to a file: grow size, touch mtime.
    fn op_append(
        &mut self,
        tm: &mut dyn TransactionalMemory,
        slot: usize,
        ino: usize,
    ) -> Result<(), TxnError> {
        let _ = slot;
        let inodes = self.inodes.expect("setup");
        let off = ino * INODE_SIZE;
        tm.begin_transaction()?;
        tm.set_range(inodes, off + 8, 16)?;
        let size = Self::read_u64(tm, inodes, off + 8)?;
        tm.write(inodes, off + 8, &(size + 4_096).to_le_bytes())?;
        tm.write(inodes, off + 16, &self.txns.to_le_bytes())?;
        self.bump_super(tm, 0, 0)?;
        tm.commit_transaction()
    }

    /// Renames: move the dentry to a free slot atomically.
    fn op_rename(
        &mut self,
        tm: &mut dyn TransactionalMemory,
        from: usize,
        ino: usize,
    ) -> Result<(), TxnError> {
        let Some(to) = (0..self.scale.dentries).find(|&s| self.live_dents[s].is_none()) else {
            return Ok(());
        };
        let dents = self.dentries.expect("setup");
        tm.begin_transaction()?;
        tm.set_range(dents, from * DENT_SIZE, DENT_SIZE)?;
        tm.set_range(dents, to * DENT_SIZE, DENT_SIZE)?;
        let mut dent = vec![0u8; DENT_SIZE];
        tm.read(dents, from * DENT_SIZE, &mut dent)?;
        dent[16..24].copy_from_slice(&self.rng.next_u64().to_le_bytes()); // new name
        tm.write(dents, to * DENT_SIZE, &dent)?;
        tm.write(dents, from * DENT_SIZE, &[0u8; DENT_SIZE])?;
        self.bump_super(tm, 0, 0)?;
        tm.commit_transaction()?;
        self.live_dents[to] = Some(ino);
        self.live_dents[from] = None;
        Ok(())
    }

    /// Unlinks: clear the dentry, drop the link count, free the inode
    /// when it reaches zero.
    fn op_unlink(
        &mut self,
        tm: &mut dyn TransactionalMemory,
        slot: usize,
        ino: usize,
    ) -> Result<(), TxnError> {
        let inodes = self.inodes.expect("setup");
        let dents = self.dentries.expect("setup");
        tm.begin_transaction()?;
        tm.set_range(dents, slot * DENT_SIZE, DENT_SIZE)?;
        tm.write(dents, slot * DENT_SIZE, &[0u8; DENT_SIZE])?;

        let off = ino * INODE_SIZE;
        tm.set_range(inodes, off, 8)?;
        let links = Self::read_u32(tm, inodes, off + 4)?;
        if links <= 1 {
            tm.write(inodes, off, &0u32.to_le_bytes())?; // clear F_USED
            tm.write(inodes, off + 4, &0u32.to_le_bytes())?;
            self.bump_super(tm, -1, -1)?;
        } else {
            tm.write(inodes, off + 4, &(links - 1).to_le_bytes())?;
            self.bump_super(tm, 0, -1)?;
        }
        tm.commit_transaction()?;
        self.live_dents[slot] = None;
        Ok(())
    }
}

impl Workload for FileSys {
    fn name(&self) -> &'static str {
        "filesys"
    }

    fn setup(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError> {
        self.superblock = Some(tm.alloc_region(SUPER_SIZE)?);
        self.inodes = Some(tm.alloc_region(self.scale.inodes * INODE_SIZE)?);
        self.dentries = Some(tm.alloc_region(self.scale.dentries * DENT_SIZE)?);
        tm.publish()
    }

    fn run_txn(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError> {
        let live: Vec<(usize, usize)> = self
            .live_dents
            .iter()
            .enumerate()
            .filter_map(|(s, i)| i.map(|ino| (s, ino)))
            .collect();
        let choice = self.rng.gen_range(100);
        if live.is_empty() || choice < 35 {
            let free = (0..self.scale.dentries).find(|&s| self.live_dents[s].is_none());
            if let Some(slot) = free {
                self.op_create(tm, slot)?;
            } else {
                let &(slot, ino) = &live[self.rng.gen_index(live.len())];
                self.op_unlink(tm, slot, ino)?;
            }
        } else {
            let &(slot, ino) = &live[self.rng.gen_index(live.len())];
            match choice {
                35..=69 => self.op_append(tm, slot, ino)?,
                70..=84 => self.op_rename(tm, slot, ino)?,
                _ => self.op_unlink(tm, slot, ino)?,
            }
        }
        self.txns += 1;
        Ok(())
    }

    fn check(&self, tm: &dyn TransactionalMemory) -> Result<(), String> {
        let sb = self.superblock.ok_or("setup() not called")?;
        let inodes = self.inodes.ok_or("setup() not called")?;
        let dents = self.dentries.ok_or("setup() not called")?;

        // Count used inodes and live dentries from the durable state.
        let mut used_inodes = 0u64;
        let mut link_total = vec![0u32; self.scale.inodes];
        for i in 0..self.scale.inodes {
            let flags = Self::read_u32(tm, inodes, i * INODE_SIZE).map_err(|e| e.to_string())?;
            if flags & F_USED != 0 {
                used_inodes += 1;
            }
        }
        let mut used_dents = 0u64;
        for s in 0..self.scale.dentries {
            let used = Self::read_u32(tm, dents, s * DENT_SIZE).map_err(|e| e.to_string())?;
            if used == 0 {
                continue;
            }
            used_dents += 1;
            let ino =
                Self::read_u64(tm, dents, s * DENT_SIZE + 8).map_err(|e| e.to_string())? as usize;
            if ino >= self.scale.inodes {
                return Err(format!("dentry {s} references bad inode {ino}"));
            }
            let flags = Self::read_u32(tm, inodes, ino * INODE_SIZE).map_err(|e| e.to_string())?;
            if flags & F_USED == 0 {
                return Err(format!("dentry {s} references free inode {ino} (dangling)"));
            }
            link_total[ino] += 1;
        }

        // Link counts must match directory references.
        for (i, total) in link_total.iter().enumerate().take(self.scale.inodes) {
            let flags = Self::read_u32(tm, inodes, i * INODE_SIZE).map_err(|e| e.to_string())?;
            let links =
                Self::read_u32(tm, inodes, i * INODE_SIZE + 4).map_err(|e| e.to_string())?;
            if flags & F_USED != 0 && links != *total {
                return Err(format!(
                    "inode {i}: link count {links} but {total} directory entries"
                ));
            }
        }

        // Superblock accounting must agree.
        let sb_inodes = Self::read_u64(tm, sb, 0).map_err(|e| e.to_string())?;
        let sb_dents = Self::read_u64(tm, sb, 8).map_err(|e| e.to_string())?;
        if sb_inodes != used_inodes || sb_dents != used_dents {
            return Err(format!(
                "superblock says {sb_inodes} inodes / {sb_dents} dentries, found {used_inodes} / {used_dents}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use perseas_baselines::VistaSystem;
    use perseas_simtime::SimClock;

    #[test]
    fn invariants_hold_after_churn() {
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = FileSys::small();
        wl.setup(&mut tm).unwrap();
        run_workload(&mut tm, &mut wl, 1_000).unwrap();
        wl.check(&tm).unwrap();
        assert_eq!(wl.txns(), 1_000);
    }

    #[test]
    fn tables_fill_and_drain_without_error() {
        // A tiny scale forces the full/empty edge paths (create into a
        // full table falls back to unlink, etc.).
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = FileSys::new(
            FileSysScale {
                inodes: 4,
                dentries: 4,
            },
            7,
        );
        wl.setup(&mut tm).unwrap();
        run_workload(&mut tm, &mut wl, 500).unwrap();
        wl.check(&tm).unwrap();
    }

    #[test]
    fn check_catches_dangling_dentries() {
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = FileSys::small();
        wl.setup(&mut tm).unwrap();
        run_workload(&mut tm, &mut wl, 50).unwrap();
        // Forge a dentry pointing at a free inode.
        let dents = wl.dentries.unwrap();
        let free_slot = (0..wl.scale.dentries)
            .find(|&s| wl.live_dents[s].is_none())
            .unwrap();
        tm.begin_transaction().unwrap();
        tm.set_range(dents, free_slot * DENT_SIZE, DENT_SIZE)
            .unwrap();
        let mut dent = [0u8; DENT_SIZE];
        dent[0..4].copy_from_slice(&1u32.to_le_bytes());
        dent[8..16].copy_from_slice(&(wl.scale.inodes as u64 - 1).to_le_bytes());
        tm.write(dents, free_slot * DENT_SIZE, &dent).unwrap();
        tm.commit_transaction().unwrap();
        assert!(wl.check(&tm).is_err());
    }
}
