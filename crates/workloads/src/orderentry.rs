//! The order-entry workload: "follows TPC-C and models the activities of
//! a wholesale supplier" (paper, Section 5).
//!
//! Database: warehouses, districts (10 per warehouse), an item/stock table
//! per warehouse, and wrapping order/order-line files. A new-order
//! transaction allocates the district's next order id, decrements stock
//! for 5–15 random items (restocking by 91 when quantity drops below 10,
//! as TPC-C prescribes), and inserts the order with one order line per
//! item — a medium-size transaction touching many ranges.

use perseas_simtime::{det_rng, DetRng};
use perseas_txn::{RegionId, TransactionalMemory, TxnError};

use crate::Workload;

const DISTRICT_RECORD: usize = 32; // next_o_id u64 + order_count u64 + pad
const STOCK_RECORD: usize = 16; // quantity i64 + ytd u64
const ORDER_RECORD: usize = 32; // o_id, district, item_count, txn
const ORDER_LINE_RECORD: usize = 24; // o_id, item, qty

/// Scaling parameters of the order-entry database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderEntryScale {
    /// Number of warehouses.
    pub warehouses: usize,
    /// Districts per warehouse (TPC-C: 10).
    pub districts_per_warehouse: usize,
    /// Items in the catalogue (and stock rows per warehouse).
    pub items: usize,
    /// Slots in the wrapping order file.
    pub order_slots: usize,
    /// Slots in the wrapping order-line file.
    pub order_line_slots: usize,
}

impl OrderEntryScale {
    /// A main-memory scale comparable to the paper's databases:
    /// 2 warehouses × 10 districts, 1 000 items.
    pub fn paper() -> Self {
        OrderEntryScale {
            warehouses: 2,
            districts_per_warehouse: 10,
            items: 1_000,
            order_slots: 4_096,
            order_line_slots: 16_384,
        }
    }

    /// A tiny database for fast tests.
    pub fn tiny() -> Self {
        OrderEntryScale {
            warehouses: 1,
            districts_per_warehouse: 2,
            items: 32,
            order_slots: 64,
            order_line_slots: 256,
        }
    }

    /// Total district count.
    pub fn districts(&self) -> usize {
        self.warehouses * self.districts_per_warehouse
    }
}

/// The order-entry (TPC-C-like new-order) workload.
#[derive(Debug)]
pub struct OrderEntry {
    scale: OrderEntryScale,
    rng: DetRng,
    districts: Option<RegionId>,
    stock: Option<RegionId>,
    orders: Option<RegionId>,
    order_lines: Option<RegionId>,
    next_order_slot: usize,
    next_line_slot: usize,
    txns: u64,
    /// Units ordered per item, for the stock invariant.
    ordered_units: Vec<i64>,
    initial_quantity: i64,
}

impl OrderEntry {
    /// Creates the workload at the given scale with a deterministic seed.
    pub fn new(scale: OrderEntryScale, seed: u64) -> Self {
        OrderEntry {
            scale,
            rng: det_rng(seed),
            districts: None,
            stock: None,
            orders: None,
            order_lines: None,
            next_order_slot: 0,
            next_line_slot: 0,
            txns: 0,
            ordered_units: vec![0; scale.items * scale.warehouses],
            initial_quantity: 50,
        }
    }

    /// The paper-scale configuration.
    pub fn paper() -> Self {
        OrderEntry::new(OrderEntryScale::paper(), 0x0BDE)
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        OrderEntry::new(OrderEntryScale::tiny(), 0xDEED)
    }

    /// Transactions executed so far.
    pub fn txns(&self) -> u64 {
        self.txns
    }

    fn read_i64(
        tm: &dyn TransactionalMemory,
        region: RegionId,
        offset: usize,
    ) -> Result<i64, TxnError> {
        let mut buf = [0u8; 8];
        tm.read(region, offset, &mut buf)?;
        Ok(i64::from_le_bytes(buf))
    }
}

impl Workload for OrderEntry {
    fn name(&self) -> &'static str {
        "order-entry"
    }

    fn setup(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError> {
        let districts = tm.alloc_region(self.scale.districts() * DISTRICT_RECORD)?;
        let stock = tm.alloc_region(self.scale.warehouses * self.scale.items * STOCK_RECORD)?;
        let orders = tm.alloc_region(self.scale.order_slots * ORDER_RECORD)?;
        let order_lines = tm.alloc_region(self.scale.order_line_slots * ORDER_LINE_RECORD)?;

        // Initial stock quantity for every item in every warehouse.
        for row in 0..self.scale.warehouses * self.scale.items {
            tm.write(
                stock,
                row * STOCK_RECORD,
                &self.initial_quantity.to_le_bytes(),
            )?;
        }
        tm.publish()?;
        self.districts = Some(districts);
        self.stock = Some(stock);
        self.orders = Some(orders);
        self.order_lines = Some(order_lines);
        Ok(())
    }

    fn run_txn(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError> {
        let districts = self.districts.expect("setup() not called");
        let stock = self.stock.expect("setup() not called");
        let orders = self.orders.expect("setup() not called");
        let order_lines = self.order_lines.expect("setup() not called");

        let warehouse = self.rng.gen_index(self.scale.warehouses);
        let district = self.rng.gen_index(self.scale.districts());
        let item_count = 5 + self.rng.gen_index(11); // 5..=15
        let items: Vec<(usize, i64)> = (0..item_count)
            .map(|_| {
                (
                    self.rng.gen_index(self.scale.items),
                    1 + self.rng.gen_range(10) as i64,
                )
            })
            .collect();

        let d_off = district * DISTRICT_RECORD;
        let o_slot = self.next_order_slot % self.scale.order_slots;

        tm.begin_transaction()?;

        // Allocate the order id from the district.
        tm.set_range(districts, d_off, 16)?;
        let o_id = Self::read_i64(tm, districts, d_off)? + 1;
        let count = Self::read_i64(tm, districts, d_off + 8)? + 1;
        tm.write(districts, d_off, &o_id.to_le_bytes())?;
        tm.write(districts, d_off + 8, &count.to_le_bytes())?;

        // Decrement stock, restocking as TPC-C does.
        for &(item, qty) in &items {
            let row = warehouse * self.scale.items + item;
            let s_off = row * STOCK_RECORD;
            tm.set_range(stock, s_off, STOCK_RECORD)?;
            let mut quantity = Self::read_i64(tm, stock, s_off)? - qty;
            if quantity < 10 {
                quantity += 91;
            }
            let ytd = Self::read_i64(tm, stock, s_off + 8)? + qty;
            tm.write(stock, s_off, &quantity.to_le_bytes())?;
            tm.write(stock, s_off + 8, &ytd.to_le_bytes())?;
        }

        // Insert the order record.
        let or_off = o_slot * ORDER_RECORD;
        tm.set_range(orders, or_off, ORDER_RECORD)?;
        let mut order = [0u8; ORDER_RECORD];
        order[0..8].copy_from_slice(&o_id.to_le_bytes());
        order[8..16].copy_from_slice(&(district as u64).to_le_bytes());
        order[16..24].copy_from_slice(&(items.len() as u64).to_le_bytes());
        order[24..32].copy_from_slice(&(self.txns + 1).to_le_bytes());
        tm.write(orders, or_off, &order)?;

        // Insert one order line per item.
        for &(item, qty) in &items {
            let l_slot = self.next_line_slot % self.scale.order_line_slots;
            let ol_off = l_slot * ORDER_LINE_RECORD;
            tm.set_range(order_lines, ol_off, ORDER_LINE_RECORD)?;
            let mut line = [0u8; ORDER_LINE_RECORD];
            line[0..8].copy_from_slice(&o_id.to_le_bytes());
            line[8..16].copy_from_slice(&(item as u64).to_le_bytes());
            line[16..24].copy_from_slice(&qty.to_le_bytes());
            tm.write(order_lines, ol_off, &line)?;
            self.next_line_slot += 1;
        }

        tm.commit_transaction()?;
        self.next_order_slot += 1;
        self.txns += 1;
        for &(item, qty) in &items {
            self.ordered_units[warehouse * self.scale.items + item] += qty;
        }
        Ok(())
    }

    fn check(&self, tm: &dyn TransactionalMemory) -> Result<(), String> {
        let districts = self.districts.ok_or("setup() not called")?;
        let stock = self.stock.ok_or("setup() not called")?;

        // Orders allocated across districts must equal transactions run.
        let mut total_orders = 0i64;
        for d in 0..self.scale.districts() {
            total_orders += Self::read_i64(tm, districts, d * DISTRICT_RECORD + 8)
                .map_err(|e| e.to_string())?;
        }
        if total_orders != self.txns as i64 {
            return Err(format!(
                "order count {total_orders} != transactions {}",
                self.txns
            ));
        }

        // Stock ledger: year-to-date sales must match ordered units, and
        // quantity must reconcile with restocks.
        for row in 0..self.scale.warehouses * self.scale.items {
            let s_off = row * STOCK_RECORD;
            let quantity = Self::read_i64(tm, stock, s_off).map_err(|e| e.to_string())?;
            let ytd = Self::read_i64(tm, stock, s_off + 8).map_err(|e| e.to_string())?;
            if ytd != self.ordered_units[row] {
                return Err(format!(
                    "stock row {row}: ytd {ytd} != ordered {}",
                    self.ordered_units[row]
                ));
            }
            // quantity = initial - ytd + 91 * restocks, with 10 <= q < 101
            // after any restock; reconstruct restocks and validate range.
            let deficit = self.initial_quantity - ytd - quantity;
            if deficit % 91 != 0 {
                return Err(format!(
                    "stock row {row}: quantity {quantity} irreconcilable with ytd {ytd}"
                ));
            }
            if quantity < 10 - 15 || quantity > self.initial_quantity + 91 {
                return Err(format!("stock row {row}: quantity {quantity} out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use perseas_baselines::VistaSystem;
    use perseas_simtime::SimClock;

    #[test]
    fn invariants_hold_after_many_orders() {
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = OrderEntry::small();
        wl.setup(&mut tm).unwrap();
        run_workload(&mut tm, &mut wl, 300).unwrap();
        wl.check(&tm).unwrap();
        assert_eq!(wl.txns(), 300);
    }

    #[test]
    fn order_entry_transactions_cost_more_than_debit_credit() {
        use crate::DebitCredit;
        let clock_oe = SimClock::new();
        let mut tm = VistaSystem::new(clock_oe.clone());
        let mut wl = OrderEntry::small();
        wl.setup(&mut tm).unwrap();
        let oe = run_workload(&mut tm, &mut wl, 100).unwrap();

        let clock_dc = SimClock::new();
        let mut tm = VistaSystem::new(clock_dc.clone());
        let mut wl = DebitCredit::small();
        wl.setup(&mut tm).unwrap();
        let dc = run_workload(&mut tm, &mut wl, 100).unwrap();

        assert!(oe.latency() > dc.latency());
    }

    #[test]
    fn check_detects_missing_orders() {
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = OrderEntry::small();
        wl.setup(&mut tm).unwrap();
        run_workload(&mut tm, &mut wl, 5).unwrap();
        // Tamper with a district's order count.
        let districts = wl.districts.unwrap();
        tm.begin_transaction().unwrap();
        tm.set_range(districts, 8, 8).unwrap();
        tm.write(districts, 8, &0i64.to_le_bytes()).unwrap();
        tm.commit_transaction().unwrap();
        assert!(wl.check(&tm).is_err());
    }
}
