//! The debit-credit workload: "processes banking transactions very
//! similar to the TPC-B" (paper, Section 5).
//!
//! Database: branches, tellers (10 per branch), accounts, and a wrapping
//! history file. A transaction picks a teller (thus its branch) and an
//! account, applies a random delta to all three balances, and appends a
//! history record — four small writes, the classic small-transaction
//! stress test.

use perseas_simtime::{det_rng, DetRng};
use perseas_txn::{RegionId, TransactionalMemory, TxnError};

use crate::Workload;

/// Record sizes follow TPC-B: 100-byte account/teller/branch records, a
/// 50-byte history record. Balances are little-endian `i64`s at offset 0.
const RECORD: usize = 100;
const HISTORY_RECORD: usize = 50;

/// Scaling parameters of the debit-credit database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DebitCreditScale {
    /// Number of branches.
    pub branches: usize,
    /// Tellers per branch.
    pub tellers_per_branch: usize,
    /// Accounts (total).
    pub accounts: usize,
    /// Slots in the wrapping history file.
    pub history_slots: usize,
}

impl DebitCreditScale {
    /// TPC-B's ratios at 1/10 scale: 1 branch, 10 tellers, 10 000
    /// accounts — a few-MB main-memory database like the paper's.
    pub fn paper() -> Self {
        DebitCreditScale {
            branches: 1,
            tellers_per_branch: 10,
            accounts: 10_000,
            history_slots: 4_096,
        }
    }

    /// A tiny database for fast tests.
    pub fn tiny() -> Self {
        DebitCreditScale {
            branches: 2,
            tellers_per_branch: 3,
            accounts: 64,
            history_slots: 32,
        }
    }

    /// Total teller count.
    pub fn tellers(&self) -> usize {
        self.branches * self.tellers_per_branch
    }
}

/// The debit-credit (TPC-B-like) workload.
#[derive(Debug)]
pub struct DebitCredit {
    scale: DebitCreditScale,
    rng: DetRng,
    accounts: Option<RegionId>,
    tellers: Option<RegionId>,
    branches: Option<RegionId>,
    history: Option<RegionId>,
    next_history: usize,
    txns: u64,
    expected_total_delta: i64,
}

impl DebitCredit {
    /// Creates the workload at the given scale with a deterministic seed.
    pub fn new(scale: DebitCreditScale, seed: u64) -> Self {
        DebitCredit {
            scale,
            rng: det_rng(seed),
            accounts: None,
            tellers: None,
            branches: None,
            history: None,
            next_history: 0,
            txns: 0,
            expected_total_delta: 0,
        }
    }

    /// The paper-scale configuration.
    pub fn paper() -> Self {
        DebitCredit::new(DebitCreditScale::paper(), 0xB0B5)
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        DebitCredit::new(DebitCreditScale::tiny(), 0xB0B5)
    }

    /// Transactions executed so far.
    pub fn txns(&self) -> u64 {
        self.txns
    }

    fn read_i64(
        tm: &dyn TransactionalMemory,
        region: RegionId,
        offset: usize,
    ) -> Result<i64, TxnError> {
        let mut buf = [0u8; 8];
        tm.read(region, offset, &mut buf)?;
        Ok(i64::from_le_bytes(buf))
    }

    fn sum_balances(
        tm: &dyn TransactionalMemory,
        region: RegionId,
        count: usize,
        stride: usize,
    ) -> Result<i64, String> {
        let mut total = 0i64;
        for i in 0..count {
            total += Self::read_i64(tm, region, i * stride).map_err(|e| e.to_string())?;
        }
        Ok(total)
    }
}

impl Workload for DebitCredit {
    fn name(&self) -> &'static str {
        "debit-credit"
    }

    fn setup(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError> {
        self.accounts = Some(tm.alloc_region(self.scale.accounts * RECORD)?);
        self.tellers = Some(tm.alloc_region(self.scale.tellers() * RECORD)?);
        self.branches = Some(tm.alloc_region(self.scale.branches * RECORD)?);
        self.history = Some(tm.alloc_region(self.scale.history_slots * HISTORY_RECORD)?);
        // All balances start at zero (regions are zero-filled).
        tm.publish()
    }

    fn run_txn(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError> {
        let accounts = self.accounts.expect("setup() not called");
        let tellers = self.tellers.expect("setup() not called");
        let branches = self.branches.expect("setup() not called");
        let history = self.history.expect("setup() not called");

        let teller = self.rng.gen_index(self.scale.tellers());
        let branch = teller / self.scale.tellers_per_branch;
        let account = self.rng.gen_index(self.scale.accounts);
        let delta = self.rng.gen_range(1_999) as i64 - 999; // [-999, +999]

        let a_off = account * RECORD;
        let t_off = teller * RECORD;
        let b_off = branch * RECORD;
        let h_off = (self.next_history % self.scale.history_slots) * HISTORY_RECORD;

        tm.begin_transaction()?;
        tm.set_range(accounts, a_off, 8)?;
        tm.set_range(tellers, t_off, 8)?;
        tm.set_range(branches, b_off, 8)?;
        tm.set_range(history, h_off, HISTORY_RECORD)?;

        let a = Self::read_i64(tm, accounts, a_off)?;
        tm.write(accounts, a_off, &(a + delta).to_le_bytes())?;
        let t = Self::read_i64(tm, tellers, t_off)?;
        tm.write(tellers, t_off, &(t + delta).to_le_bytes())?;
        let b = Self::read_i64(tm, branches, b_off)?;
        tm.write(branches, b_off, &(b + delta).to_le_bytes())?;

        let mut hist = [0u8; HISTORY_RECORD];
        hist[0..8].copy_from_slice(&delta.to_le_bytes());
        hist[8..16].copy_from_slice(&(account as u64).to_le_bytes());
        hist[16..24].copy_from_slice(&(teller as u64).to_le_bytes());
        hist[24..32].copy_from_slice(&(self.txns + 1).to_le_bytes());
        tm.write(history, h_off, &hist)?;

        tm.commit_transaction()?;
        self.next_history += 1;
        self.txns += 1;
        self.expected_total_delta += delta;
        Ok(())
    }

    fn check(&self, tm: &dyn TransactionalMemory) -> Result<(), String> {
        let accounts = self.accounts.ok_or("setup() not called")?;
        let tellers = self.tellers.ok_or("setup() not called")?;
        let branches = self.branches.ok_or("setup() not called")?;

        let a = Self::sum_balances(tm, accounts, self.scale.accounts, RECORD)?;
        let t = Self::sum_balances(tm, tellers, self.scale.tellers(), RECORD)?;
        let b = Self::sum_balances(tm, branches, self.scale.branches, RECORD)?;
        if a != t || t != b {
            return Err(format!(
                "balance conservation violated: accounts={a} tellers={t} branches={b}"
            ));
        }
        if a != self.expected_total_delta {
            return Err(format!(
                "total balance {a} does not match applied deltas {}",
                self.expected_total_delta
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use perseas_baselines::VistaSystem;
    use perseas_simtime::SimClock;

    #[test]
    fn balances_are_conserved() {
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = DebitCredit::small();
        wl.setup(&mut tm).unwrap();
        run_workload(&mut tm, &mut wl, 500).unwrap();
        wl.check(&tm).unwrap();
        assert_eq!(wl.txns(), 500);
    }

    #[test]
    fn history_wraps_without_error() {
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = DebitCredit::new(DebitCreditScale::tiny(), 9);
        wl.setup(&mut tm).unwrap();
        // More transactions than history slots.
        run_workload(&mut tm, &mut wl, 100).unwrap();
        wl.check(&tm).unwrap();
    }

    #[test]
    fn check_detects_corruption() {
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = DebitCredit::small();
        wl.setup(&mut tm).unwrap();
        run_workload(&mut tm, &mut wl, 10).unwrap();
        // Corrupt an account balance outside any transaction mechanism.
        let accounts = wl.accounts.unwrap();
        tm.begin_transaction().unwrap();
        tm.set_range(accounts, 0, 8).unwrap();
        tm.write(accounts, 0, &123_456i64.to_le_bytes()).unwrap();
        tm.commit_transaction().unwrap();
        assert!(wl.check(&tm).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut tm = VistaSystem::new(SimClock::new());
            let mut wl = DebitCredit::new(DebitCreditScale::tiny(), 42);
            wl.setup(&mut tm).unwrap();
            run_workload(&mut tm, &mut wl, 50).unwrap();
            wl.expected_total_delta
        };
        assert_eq!(run(), run());
    }
}
