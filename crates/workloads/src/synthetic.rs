//! The synthetic size-sweep benchmark behind Figure 6.
//!
//! "A benchmark that measures the transaction overhead as a function of
//! the transaction size. Each transaction modifies a random location of
//! the database. We vary the amount of data changed by each transaction
//! from 4 bytes to 1 Mbyte."

use perseas_simtime::{det_rng, DetRng};
use perseas_txn::{RegionId, TransactionalMemory, TxnError};

use crate::Workload;

/// The synthetic workload: every transaction writes `txn_size` bytes at a
/// random offset of a `db_size`-byte database.
#[derive(Debug)]
pub struct Synthetic {
    db_size: usize,
    txn_size: usize,
    region: Option<RegionId>,
    rng: DetRng,
    fill: u8,
}

impl Synthetic {
    /// Creates a sweep point. The paper's database is "smaller than main
    /// memory"; 8 MB is representative and comfortably holds the 1 MB
    /// largest transaction.
    ///
    /// # Panics
    ///
    /// Panics if `txn_size` is zero or exceeds `db_size`.
    pub fn new(db_size: usize, txn_size: usize, seed: u64) -> Self {
        assert!(txn_size > 0, "transaction size must be positive");
        assert!(txn_size <= db_size, "transaction larger than database");
        Synthetic {
            db_size,
            txn_size,
            region: None,
            rng: det_rng(seed),
            fill: 0,
        }
    }

    /// The default Figure 6 configuration for a given transaction size.
    pub fn figure6(txn_size: usize) -> Self {
        Synthetic::new(8 << 20, txn_size, 0x5EED + txn_size as u64)
    }

    /// Transaction size in bytes.
    pub fn txn_size(&self) -> usize {
        self.txn_size
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        "synthetic"
    }

    fn setup(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError> {
        let region = tm.alloc_region(self.db_size)?;
        tm.publish()?;
        self.region = Some(region);
        Ok(())
    }

    fn run_txn(&mut self, tm: &mut dyn TransactionalMemory) -> Result<(), TxnError> {
        let region = self.region.expect("setup() not called");
        let offset = self.rng.gen_index(self.db_size - self.txn_size + 1);
        self.fill = self.fill.wrapping_add(1);
        tm.begin_transaction()?;
        tm.set_range(region, offset, self.txn_size)?;
        tm.write(region, offset, &vec![self.fill; self.txn_size])?;
        tm.commit_transaction()
    }

    fn check(&self, tm: &dyn TransactionalMemory) -> Result<(), String> {
        // No aggregate invariant beyond readability of the whole region.
        let region = self.region.ok_or("setup() not called")?;
        let len = tm.region_len(region).map_err(|e| e.to_string())?;
        if len != self.db_size {
            return Err(format!("region shrank: {len} != {}", self.db_size));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use perseas_baselines::VistaSystem;
    use perseas_simtime::SimClock;

    #[test]
    fn runs_and_checks() {
        let mut tm = VistaSystem::new(SimClock::new());
        let mut wl = Synthetic::new(1 << 16, 128, 1);
        wl.setup(&mut tm).unwrap();
        let report = run_workload(&mut tm, &mut wl, 50).unwrap();
        assert_eq!(report.txns, 50);
        assert!(!report.elapsed.is_zero());
        wl.check(&tm).unwrap();
    }

    #[test]
    fn larger_transactions_cost_more() {
        let time_for = |size: usize| {
            let mut tm = VistaSystem::new(SimClock::new());
            let mut wl = Synthetic::new(1 << 20, size, 2);
            wl.setup(&mut tm).unwrap();
            run_workload(&mut tm, &mut wl, 20).unwrap().elapsed
        };
        assert!(time_for(64 << 10) > time_for(64));
    }

    #[test]
    #[should_panic(expected = "transaction larger")]
    fn oversized_txn_rejected() {
        let _ = Synthetic::new(16, 32, 0);
    }

    #[test]
    fn deterministic_offsets() {
        let mut a = Synthetic::new(1 << 16, 16, 7);
        let mut b = Synthetic::new(1 << 16, 16, 7);
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
    }
}
