//! The workload driver: runs transactions and measures virtual time.

use perseas_simtime::SimDuration;
use perseas_txn::{TransactionalMemory, TxnError};

use crate::Workload;

/// The result of driving a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Transactions executed.
    pub txns: u64,
    /// Virtual time consumed.
    pub elapsed: SimDuration,
}

impl RunReport {
    /// Throughput in transactions per second of virtual time.
    pub fn tps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.txns as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean latency per transaction.
    pub fn latency(&self) -> SimDuration {
        if self.txns == 0 {
            return SimDuration::ZERO;
        }
        self.elapsed / self.txns
    }
}

/// Runs `n` transactions of `workload` against `tm`, measuring the virtual
/// time they consume. The workload must already be
/// [set up](crate::Workload::setup).
///
/// # Errors
///
/// Propagates the first transaction error.
pub fn run_workload(
    tm: &mut dyn TransactionalMemory,
    workload: &mut dyn Workload,
    n: u64,
) -> Result<RunReport, TxnError> {
    let sw = tm.clock().stopwatch();
    for _ in 0..n {
        workload.run_txn(tm)?;
    }
    Ok(RunReport {
        txns: n,
        elapsed: sw.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let r = RunReport {
            txns: 1000,
            elapsed: SimDuration::from_millis(100),
        };
        assert!((r.tps() - 10_000.0).abs() < 1e-6);
        assert_eq!(r.latency(), SimDuration::from_micros(100));
    }

    #[test]
    fn zero_guards() {
        let r = RunReport {
            txns: 0,
            elapsed: SimDuration::ZERO,
        };
        assert!(r.tps().is_infinite());
        assert_eq!(r.latency(), SimDuration::ZERO);
    }
}
