//! Virtual time primitives: [`SimDuration`] and [`SimInstant`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of virtual time with nanosecond resolution.
///
/// Mirrors the shape of [`std::time::Duration`] but is a plain `u64` of
/// nanoseconds so it can be stored in atomics and serialized losslessly.
///
/// # Examples
///
/// ```
/// use perseas_simtime::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// assert_eq!(d.as_micros_f64(), 2.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us} us");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s} s");
        SimDuration((s * 1_000_000_000.0).round() as u64)
    }

    /// Returns the duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; returns [`SimDuration::ZERO`] on underflow.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; returns `None` on overflow.
    pub const fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("virtual duration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual duration underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("virtual duration overflow in mul"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A point in virtual time, measured from the clock's origin.
///
/// # Examples
///
/// ```
/// use perseas_simtime::{SimDuration, SimInstant};
///
/// let t = SimInstant::ORIGIN + SimDuration::from_micros(10);
/// assert_eq!(t.duration_since(SimInstant::ORIGIN).as_micros(), 10);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The clock origin (t = 0).
    pub const ORIGIN: SimInstant = SimInstant(0);

    /// Creates an instant `ns` nanoseconds after the origin.
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The amount of virtual time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("instant ordering violated"),
        )
    }

    /// Like [`SimInstant::duration_since`], but saturates to zero instead of
    /// panicking.
    pub const fn saturating_duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(
            self.0
                .checked_add(rhs.as_nanos())
                .expect("virtual instant overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn fractional_micros_round() {
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
        assert_eq!(SimDuration::from_micros_f64(0.0004).as_nanos(), 0);
        assert_eq!(SimDuration::from_micros_f64(0.0006).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_fractional_panics() {
        let _ = SimDuration::from_micros_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_micros(3);
        let b = SimDuration::from_micros(1);
        assert_eq!((a - b).as_micros(), 2);
        assert_eq!((a + b).as_micros(), 4);
        assert_eq!((a * 3).as_micros(), 9);
        assert_eq!((a / 3).as_nanos(), 1_000);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }

    #[test]
    fn instant_math() {
        let t0 = SimInstant::ORIGIN;
        let t1 = t0 + SimDuration::from_millis(2);
        assert_eq!(t1 - t0, SimDuration::from_millis(2));
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(2_500).to_string(), "2.500us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimInstant::from_nanos(2_500).to_string(), "t+2.500us");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
