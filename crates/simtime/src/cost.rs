//! Calibrated cost model for local memory operations.

use serde::{Deserialize, Serialize};

use crate::{SimClock, SimDuration};

/// Cost model for local main-memory copies on the paper's testbed
/// (133 MHz Pentium, EDO DRAM, PCI 2.0).
///
/// The model is affine: a fixed per-call overhead (function call, loop setup,
/// cache effects) plus a per-byte cost derived from sustained copy bandwidth.
/// [`MemCostModel::pentium_133`] is calibrated so that the three local copies
/// of a small PERSEAS transaction cost well under a microsecond, consistent
/// with the paper's sub-8 µs small-transaction latency where the two SCI
/// remote writes dominate.
///
/// # Examples
///
/// ```
/// use perseas_simtime::MemCostModel;
///
/// let m = MemCostModel::pentium_133();
/// assert!(m.memcpy_cost(64) < m.memcpy_cost(4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemCostModel {
    /// Fixed overhead charged for every copy call, in nanoseconds.
    per_call_ns: u64,
    /// Sustained copy bandwidth in bytes per microsecond (= MB/s).
    bytes_per_us: u64,
}

impl MemCostModel {
    /// Creates a model from a fixed per-call overhead and a sustained copy
    /// bandwidth in bytes per microsecond (numerically equal to MB/s).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_us` is zero.
    pub fn new(per_call_ns: u64, bytes_per_us: u64) -> Self {
        assert!(bytes_per_us > 0, "bandwidth must be non-zero");
        MemCostModel {
            per_call_ns,
            bytes_per_us,
        }
    }

    /// The paper's testbed: a 133 MHz Pentium copying at roughly 60 MB/s
    /// with ~80 ns of per-call overhead.
    pub fn pentium_133() -> Self {
        MemCostModel::new(80, 60)
    }

    /// An infinitely fast memory (useful to isolate network or disk cost in
    /// ablation experiments: copies cost zero time).
    pub fn free() -> Self {
        MemCostModel {
            per_call_ns: 0,
            bytes_per_us: u64::MAX,
        }
    }

    /// The virtual cost of copying `len` bytes within local memory.
    pub fn memcpy_cost(&self, len: usize) -> SimDuration {
        if self.bytes_per_us == u64::MAX {
            return SimDuration::ZERO;
        }
        let transfer_ns = (len as u64)
            .checked_mul(1_000)
            .expect("memcpy length overflow")
            / self.bytes_per_us;
        SimDuration::from_nanos(self.per_call_ns + transfer_ns)
    }

    /// Charges the cost of a `len`-byte copy to `clock`.
    pub fn charge_memcpy(&self, clock: &SimClock, len: usize) {
        clock.advance(self.memcpy_cost(len));
    }

    /// Per-call overhead in nanoseconds.
    pub fn per_call_ns(&self) -> u64 {
        self.per_call_ns
    }

    /// Sustained bandwidth in bytes per microsecond.
    pub fn bytes_per_us(&self) -> u64 {
        self.bytes_per_us
    }
}

impl Default for MemCostModel {
    fn default() -> Self {
        MemCostModel::pentium_133()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_affine_in_length() {
        let m = MemCostModel::new(100, 50);
        assert_eq!(m.memcpy_cost(0).as_nanos(), 100);
        // 50 bytes/us => 20 ns per byte.
        assert_eq!(m.memcpy_cost(50).as_nanos(), 100 + 1_000);
        assert_eq!(m.memcpy_cost(100).as_nanos(), 100 + 2_000);
    }

    #[test]
    fn pentium_small_copy_is_submicrosecond() {
        let m = MemCostModel::pentium_133();
        assert!(m.memcpy_cost(128).as_nanos() < 3_000);
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = MemCostModel::free();
        assert_eq!(m.memcpy_cost(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn charge_advances_clock() {
        let m = MemCostModel::new(10, 1);
        let clock = SimClock::new();
        m.charge_memcpy(&clock, 1);
        assert_eq!(clock.now().as_nanos(), 10 + 1_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = MemCostModel::new(0, 0);
    }
}
