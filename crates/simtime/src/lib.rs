//! Deterministic virtual time for the PERSEAS reproduction.
//!
//! Every performance experiment in the paper is driven by hardware latencies
//! (SCI packet times, memory-copy bandwidth, disk seeks) that no longer exist
//! on modern machines. This crate provides a **virtual clock** on which those
//! latencies are charged explicitly, making every figure in the paper
//! deterministic and reproducible on any host.
//!
//! The core types are:
//!
//! * [`SimDuration`] / [`SimInstant`] — nanosecond-resolution virtual time.
//! * [`SimClock`] — a shareable, thread-safe monotonic clock.
//! * [`MemCostModel`] — a calibrated model for the cost of local memory
//!   copies on the paper's 133 MHz Pentium testbed.
//!
//! # Examples
//!
//! ```
//! use perseas_simtime::{SimClock, SimDuration};
//!
//! let clock = SimClock::new();
//! let t0 = clock.now();
//! clock.advance(SimDuration::from_micros(8));
//! assert_eq!(clock.now().duration_since(t0), SimDuration::from_micros(8));
//! ```

mod clock;
mod cost;
mod hist;
mod rng;
mod time;

pub use clock::{SimClock, Stopwatch};
pub use cost::MemCostModel;
pub use hist::Histogram;
pub use rng::{det_rng, DetRng};
pub use time::{SimDuration, SimInstant};
