//! The shareable virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{SimDuration, SimInstant};

/// A monotonic, thread-safe virtual clock.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock, so a
/// primary node, its SCI adapter, and a simulated disk can all charge time to
/// one shared timeline.
///
/// # Examples
///
/// ```
/// use perseas_simtime::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let handle = clock.clone();
/// handle.advance(SimDuration::from_micros(3));
/// assert_eq!(clock.now().as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a new clock at the origin (t = 0).
    pub fn new() -> Self {
        SimClock {
            ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let prev = self.ns.fetch_add(d.as_nanos(), Ordering::SeqCst);
        SimInstant::from_nanos(
            prev.checked_add(d.as_nanos())
                .expect("virtual clock overflow"),
        )
    }

    /// Moves the clock forward to `t` if `t` is in the future; otherwise
    /// leaves it unchanged. Returns the (possibly unchanged) current time.
    ///
    /// This is the primitive used to model waiting for an asynchronous
    /// completion (e.g. a disk write already in flight).
    pub fn advance_to(&self, t: SimInstant) -> SimInstant {
        let target = t.as_nanos();
        let mut cur = self.ns.load(Ordering::SeqCst);
        while cur < target {
            match self
                .ns
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimInstant::from_nanos(cur)
    }

    /// Sets the clock back to `t` if `t` is in the past; otherwise leaves
    /// it unchanged. Returns the (possibly unchanged) current time.
    ///
    /// This deliberately breaks the clock's monotonicity and exists for
    /// exactly one pattern: modelling *concurrent* operations on a shared
    /// timeline. The caller snapshots `now()`, runs each operation (which
    /// charges its own latency), rewinds to the snapshot between
    /// operations, and finally [`SimClock::advance_to`] the maximum
    /// observed end time — charging the overlap as `max` instead of `sum`.
    /// Any other use will corrupt measurements.
    pub fn rewind_to(&self, t: SimInstant) -> SimInstant {
        let target = t.as_nanos();
        let mut cur = self.ns.load(Ordering::SeqCst);
        while cur > target {
            match self
                .ns
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimInstant::from_nanos(cur)
    }

    /// Starts a [`Stopwatch`] at the current time.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch {
            clock: self.clone(),
            start: self.now(),
        }
    }

    /// Returns `true` if `other` refers to the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.ns, &other.ns)
    }
}

/// Measures elapsed virtual time from a fixed starting instant.
///
/// # Examples
///
/// ```
/// use perseas_simtime::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let sw = clock.stopwatch();
/// clock.advance(SimDuration::from_millis(5));
/// assert_eq!(sw.elapsed().as_millis(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Stopwatch {
    clock: SimClock,
    start: SimInstant,
}

impl Stopwatch {
    /// Virtual time elapsed since this stopwatch was started.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now().saturating_duration_since(self.start)
    }

    /// The instant at which this stopwatch was started.
    pub fn started_at(&self) -> SimInstant {
        self.start
    }

    /// Restarts the stopwatch at the current time, returning the elapsed
    /// duration up to the restart.
    pub fn lap(&mut self) -> SimDuration {
        let e = self.elapsed();
        self.start = self.clock.now();
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let d = c.clone();
        c.advance(SimDuration::from_nanos(42));
        assert_eq!(d.now().as_nanos(), 42);
        assert!(c.same_clock(&d));
        assert!(!c.same_clock(&SimClock::new()));
    }

    #[test]
    fn advance_returns_new_time() {
        let c = SimClock::new();
        let t = c.advance(SimDuration::from_micros(7));
        assert_eq!(t.as_nanos(), 7_000);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = SimClock::new();
        c.advance(SimDuration::from_nanos(100));
        c.advance_to(SimInstant::from_nanos(50));
        assert_eq!(c.now().as_nanos(), 100);
        c.advance_to(SimInstant::from_nanos(150));
        assert_eq!(c.now().as_nanos(), 150);
    }

    #[test]
    fn rewind_to_only_moves_backward() {
        let c = SimClock::new();
        c.advance(SimDuration::from_nanos(100));
        c.rewind_to(SimInstant::from_nanos(150));
        assert_eq!(c.now().as_nanos(), 100);
        c.rewind_to(SimInstant::from_nanos(40));
        assert_eq!(c.now().as_nanos(), 40);
    }

    #[test]
    fn rewind_advance_models_parallel_completion() {
        // The max-not-sum pattern: two 100ns and 250ns operations running
        // concurrently finish 250ns after they start.
        let c = SimClock::new();
        c.advance(SimDuration::from_nanos(1_000));
        let t0 = c.now();
        let mut t_end = t0;
        for cost in [100u64, 250] {
            c.rewind_to(t0);
            c.advance(SimDuration::from_nanos(cost));
            t_end = t_end.max(c.now());
        }
        c.advance_to(t_end);
        assert_eq!(c.now().as_nanos(), 1_250);
    }

    #[test]
    fn stopwatch_laps() {
        let c = SimClock::new();
        let mut sw = c.stopwatch();
        c.advance(SimDuration::from_nanos(10));
        assert_eq!(sw.lap().as_nanos(), 10);
        c.advance(SimDuration::from_nanos(5));
        assert_eq!(sw.elapsed().as_nanos(), 5);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = SimClock::new();
        let mut joins = Vec::new();
        for _ in 0..8 {
            let h = c.clone();
            joins.push(thread::spawn(move || {
                for _ in 0..1_000 {
                    h.advance(SimDuration::from_nanos(1));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.now().as_nanos(), 8_000);
    }
}
