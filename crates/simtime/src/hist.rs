//! A log-scale latency histogram for virtual-time measurements.

use crate::SimDuration;

/// Number of power-of-two buckets (covers 1 ns .. ~18 s and beyond).
const BUCKETS: usize = 64;

/// A histogram of durations in power-of-two nanosecond buckets, for
/// percentile reporting of transaction latencies.
///
/// # Examples
///
/// ```
/// use perseas_simtime::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for us in [1u64, 2, 3, 4, 100] {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) <= h.percentile(99.0));
/// assert_eq!(h.max(), SimDuration::from_micros(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample ([`SimDuration::ZERO`] when empty).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Sum of all recorded samples, in nanoseconds.
    pub fn total_ns(&self) -> u128 {
        self.total_ns
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.total_ns / self.count as u128) as u64)
    }

    /// The `p`-th percentile (0–100), resolved to bucket granularity
    /// (upper bound of the containing power-of-two bucket, clamped to the
    /// observed maximum).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return SimDuration::from_nanos(upper.clamp(self.min_ns, self.max_ns));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        for us in 1..=100u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), SimDuration::from_micros(1));
        assert_eq!(h.max(), SimDuration::from_micros(100));
        let mean = h.mean().as_micros_f64();
        assert!((mean - 50.5).abs() < 1.0, "{mean}");
    }

    #[test]
    fn percentiles_are_monotone_and_bucketed() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(SimDuration::from_micros(5));
        }
        h.record(SimDuration::from_millis(50));
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        let p100 = h.percentile(100.0);
        assert!(p50 <= p99);
        assert!(p99 <= p100);
        // p50 should sit in the ~5 us bucket (upper bound 8.19 us).
        assert!(p50.as_micros() < 10, "{p50}");
        // The single 50 ms outlier defines the tail.
        assert_eq!(p100, SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(SimDuration::from_micros(1));
        let mut b = Histogram::new();
        b.record(SimDuration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_millis(1));
        assert_eq!(a.min(), SimDuration::from_micros(1));
    }

    #[test]
    fn zero_duration_sample_is_representable() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), SimDuration::ZERO);
    }
}
