//! A small, dependency-free deterministic RNG.
//!
//! Workload generators must be reproducible across runs and platforms, so we
//! ship a fixed xoshiro256** implementation rather than depending on a
//! particular version of an external generator.

/// A deterministic xoshiro256** pseudo-random generator.
///
/// Not cryptographically secure; used only to generate reproducible
/// workloads and fault schedules.
///
/// # Examples
///
/// ```
/// use perseas_simtime::det_rng;
///
/// let mut a = det_rng(7);
/// let mut b = det_rng(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

/// Creates a [`DetRng`] seeded from `seed` via SplitMix64.
pub fn det_rng(seed: u64) -> DetRng {
    DetRng::seed_from_u64(seed)
}

impl DetRng {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64 (the standard seeding procedure for xoshiro generators).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's unbiased multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }

    /// Fills `buf` with uniformly distributed bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = det_rng(42);
        let mut b = det_rng(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = det_rng(1);
        let mut b = det_rng(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = det_rng(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(7) < 7);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = det_rng(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn zero_bound_panics() {
        det_rng(0).gen_range(0);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = det_rng(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = det_rng(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = det_rng(8);
        for _ in 0..1_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = det_rng(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
