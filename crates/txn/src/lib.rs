//! The system-neutral transactional-memory interface of the PERSEAS
//! reproduction.
//!
//! The paper compares PERSEAS against RVM, RVM-on-Rio, and Vista. To make
//! that comparison apples-to-apples, every system implements the same
//! [`TransactionalMemory`] trait, modelled directly on the PERSEAS API of
//! Section 3 (`begin_transaction` / `set_range` / `commit_transaction` /
//! `abort_transaction`), which is itself the common denominator of the
//! Lowell & Chen benchmark suite the paper borrows.
//!
//! The crate also defines [`TxnStats`], the copy/IO accounting that powers
//! the paper's Figure 2 vs. Figure 3 comparison (how many memory copies,
//! remote writes, and disk writes one transaction costs on each system).

mod error;
mod stats;
mod traits;

pub use error::TxnError;
pub use stats::TxnStats;
pub use traits::{RegionId, SnapshotToken, TransactionalMemory};
