//! The [`TransactionalMemory`] trait.

use std::fmt;

use serde::{Deserialize, Serialize};

use perseas_simtime::SimClock;

use crate::{TxnError, TxnStats};

/// Handle to a recoverable memory region (one "database segment" in the
/// paper's terms).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RegionId(u32);

impl RegionId {
    /// Builds a region id from its raw representation (used by recovery
    /// code that re-derives handles from durable metadata).
    pub const fn from_raw(raw: u32) -> Self {
        RegionId(raw)
    }

    /// The raw representation.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// Handle to an open read snapshot: a pinned commit watermark that
/// [`TransactionalMemory::read_snapshot`] resolves reads against. Plain
/// copyable data — dropping a token does not close the snapshot; call
/// [`TransactionalMemory::end_snapshot`] so the version store can evict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SnapshotToken {
    id: u64,
    read_seq: u64,
    gen: u64,
}

impl SnapshotToken {
    /// Builds a token from its raw parts (engine-internal; tokens are
    /// normally obtained from `begin_snapshot`).
    pub const fn from_raw(id: u64, read_seq: u64, gen: u64) -> Self {
        SnapshotToken { id, read_seq, gen }
    }

    /// The snapshot's id, unique within one engine generation.
    pub const fn id(self) -> u64 {
        self.id
    }

    /// The commit watermark this snapshot reads at: every commit with a
    /// sequence number ≤ `read_seq` is visible, nothing later is.
    pub const fn read_seq(self) -> u64 {
        self.read_seq
    }

    /// The engine generation (recovery epoch) the token was issued under.
    /// A recovered engine refuses tokens from earlier generations with a
    /// typed [`TxnError::SnapshotTooOld`] rather than serving torn bytes.
    pub const fn generation(self) -> u64 {
        self.gen
    }
}

impl fmt::Display for SnapshotToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot#{}@{}", self.id, self.read_seq)
    }
}

/// A recoverable, transactional main memory: the interface shared by
/// PERSEAS and every baseline.
///
/// The lifecycle mirrors the paper's API:
///
/// 1. [`alloc_region`](TransactionalMemory::alloc_region) one or more
///    regions (`PERSEAS_malloc`) and initialise them with
///    [`write`](TransactionalMemory::write) (allowed outside transactions
///    only before `publish`);
/// 2. [`publish`](TransactionalMemory::publish) the initial image
///    (`PERSEAS_init_remote_db` — or the initial checkpoint of a WAL
///    system);
/// 3. run transactions:
///    [`begin_transaction`](TransactionalMemory::begin_transaction) →
///    [`set_range`](TransactionalMemory::set_range) →
///    [`write`](TransactionalMemory::write) →
///    [`commit_transaction`](TransactionalMemory::commit_transaction) or
///    [`abort_transaction`](TransactionalMemory::abort_transaction).
///
/// Implementations are sequential (one transaction at a time), as in the
/// paper.
pub trait TransactionalMemory {
    /// Short human-readable system name ("perseas", "rvm", ...).
    fn system_name(&self) -> &'static str;

    /// Allocates a zero-filled recoverable region of `len` bytes.
    ///
    /// # Errors
    ///
    /// Fails with [`TxnError::BusyInTransaction`] inside a transaction, or
    /// if the backing store cannot hold the region.
    fn alloc_region(&mut self, len: usize) -> Result<RegionId, TxnError>;

    /// Makes the current contents of all regions the durable initial
    /// image. Must be called exactly once, after initialisation writes and
    /// before the first transaction.
    ///
    /// # Errors
    ///
    /// Fails with [`TxnError::BadPublishState`] on misuse or
    /// [`TxnError::Unavailable`] if the durable store cannot be reached.
    fn publish(&mut self) -> Result<(), TxnError>;

    /// Opens a transaction.
    ///
    /// # Errors
    ///
    /// Fails with [`TxnError::TransactionAlreadyActive`] if one is open,
    /// or [`TxnError::BadPublishState`] before `publish`.
    fn begin_transaction(&mut self) -> Result<(), TxnError>;

    /// Declares that the current transaction may modify
    /// `[offset, offset+len)` of `region`; the before-image is logged.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction, on unknown regions, and on bounds
    /// violations.
    fn set_range(&mut self, region: RegionId, offset: usize, len: usize) -> Result<(), TxnError>;

    /// Writes `data` at `offset` of `region`.
    ///
    /// Outside a transaction this is only legal before `publish`
    /// (initialisation). Inside a transaction the range must be covered by
    /// a prior `set_range`.
    ///
    /// # Errors
    ///
    /// Fails on undeclared ranges, unknown regions, and bounds violations.
    fn write(&mut self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError>;

    /// Reads `buf.len()` bytes at `offset` of `region`.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions and bounds violations.
    fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError>;

    /// Commits the current transaction, making its updates durable.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction or if the durable store is unreachable
    /// (in which case the transaction is *not* durable).
    fn commit_transaction(&mut self) -> Result<(), TxnError>;

    /// Aborts the current transaction, restoring every declared range from
    /// the undo log.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction.
    fn abort_transaction(&mut self) -> Result<(), TxnError>;

    /// `true` while a transaction is open.
    fn in_transaction(&self) -> bool;

    /// The virtual clock this system charges its costs to.
    fn clock(&self) -> &SimClock;

    /// Cumulative operation counters.
    fn stats(&self) -> TxnStats;

    /// Length of a region.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions.
    fn region_len(&self, region: RegionId) -> Result<usize, TxnError>;

    /// Opens a read snapshot pinned at the current commit watermark.
    /// Snapshot reads take no conflict-table claims and never contend
    /// with writers. Systems without multi-version support keep the
    /// default, which refuses with [`TxnError::Unavailable`].
    ///
    /// # Errors
    ///
    /// Fails when the system has no version store (the default), or when
    /// it is disabled by configuration.
    fn begin_snapshot(&mut self) -> Result<SnapshotToken, TxnError> {
        Err(TxnError::Unavailable(
            "snapshot reads are not supported by this system".into(),
        ))
    }

    /// Reads `buf.len()` bytes at `offset` of `region` as of the
    /// snapshot's pinned commit watermark.
    ///
    /// # Errors
    ///
    /// Fails on unknown regions, bounds violations, and with
    /// [`TxnError::SnapshotTooOld`] when the needed versions were
    /// evicted; never with [`TxnError::Conflict`] or
    /// [`TxnError::SnapshotContention`].
    fn read_snapshot(
        &self,
        snap: SnapshotToken,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), TxnError> {
        let _ = (snap, region, offset, buf);
        Err(TxnError::Unavailable(
            "snapshot reads are not supported by this system".into(),
        ))
    }

    /// Closes a snapshot so the version store can evict past it. Closing
    /// an unknown or already-closed token is a no-op.
    fn end_snapshot(&mut self, snap: SnapshotToken) {
        let _ = snap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_id_roundtrip_and_display() {
        let r = RegionId::from_raw(7);
        assert_eq!(r.as_raw(), 7);
        assert_eq!(r.to_string(), "region#7");
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_: &mut dyn TransactionalMemory) {}
    }
}
