//! Copy and I/O accounting.

use serde::{Deserialize, Serialize};

/// Counters describing the work a transactional-memory system performed.
///
/// These powers the paper's protocol comparison: the Write-Ahead Logging
/// protocol of Figure 2 needs three copies *plus synchronous disk I/O* per
/// update, while PERSEAS (Figure 3) needs three memory copies — one local,
/// two remote — and **zero** disk accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// `set_range` calls.
    pub set_ranges: u64,
    /// Local memory-to-memory copies performed.
    pub local_copies: u64,
    /// Bytes moved by local copies.
    pub local_copy_bytes: u64,
    /// Remote write operations (network RAM).
    pub remote_writes: u64,
    /// Bytes pushed to remote memory.
    pub remote_write_bytes: u64,
    /// Synchronous disk writes.
    pub disk_sync_writes: u64,
    /// Asynchronous disk writes.
    pub disk_async_writes: u64,
    /// Bytes written to disk.
    pub disk_write_bytes: u64,
    /// `set_range` claims rejected because another open transaction held
    /// an overlapping range.
    pub conflicts: u64,
    /// Group commits performed (each covers one *or more* transactions
    /// and counts once, however many `commits` it resolves).
    pub group_commits: u64,
}

impl TxnStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        TxnStats::default()
    }

    /// Records a local copy of `bytes` bytes.
    pub fn add_local_copy(&mut self, bytes: usize) {
        self.local_copies += 1;
        self.local_copy_bytes += bytes as u64;
    }

    /// Records a remote write of `bytes` bytes.
    pub fn add_remote_write(&mut self, bytes: usize) {
        self.remote_writes += 1;
        self.remote_write_bytes += bytes as u64;
    }

    /// Records a disk write of `bytes` bytes.
    pub fn add_disk_write(&mut self, bytes: usize, sync: bool) {
        if sync {
            self.disk_sync_writes += 1;
        } else {
            self.disk_async_writes += 1;
        }
        self.disk_write_bytes += bytes as u64;
    }

    /// Difference `self - earlier`, for per-interval measurements.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger counters than `self`.
    pub fn since(&self, earlier: &TxnStats) -> TxnStats {
        TxnStats {
            commits: self.commits - earlier.commits,
            aborts: self.aborts - earlier.aborts,
            set_ranges: self.set_ranges - earlier.set_ranges,
            local_copies: self.local_copies - earlier.local_copies,
            local_copy_bytes: self.local_copy_bytes - earlier.local_copy_bytes,
            remote_writes: self.remote_writes - earlier.remote_writes,
            remote_write_bytes: self.remote_write_bytes - earlier.remote_write_bytes,
            disk_sync_writes: self.disk_sync_writes - earlier.disk_sync_writes,
            disk_async_writes: self.disk_async_writes - earlier.disk_async_writes,
            disk_write_bytes: self.disk_write_bytes - earlier.disk_write_bytes,
            conflicts: self.conflicts - earlier.conflicts,
            group_commits: self.group_commits - earlier.group_commits,
        }
    }

    /// Total copy-ish operations of any kind per committed transaction
    /// (rounded down); 0 if nothing committed.
    pub fn copies_per_commit(&self) -> u64 {
        if self.commits == 0 {
            return 0;
        }
        (self.local_copies + self.remote_writes + self.disk_sync_writes + self.disk_async_writes)
            / self.commits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adders_accumulate() {
        let mut s = TxnStats::new();
        s.add_local_copy(10);
        s.add_local_copy(5);
        s.add_remote_write(64);
        s.add_disk_write(100, true);
        s.add_disk_write(100, false);
        assert_eq!(s.local_copies, 2);
        assert_eq!(s.local_copy_bytes, 15);
        assert_eq!(s.remote_writes, 1);
        assert_eq!(s.disk_sync_writes, 1);
        assert_eq!(s.disk_async_writes, 1);
        assert_eq!(s.disk_write_bytes, 200);
    }

    #[test]
    fn since_subtracts() {
        let mut a = TxnStats::new();
        a.add_local_copy(10);
        let snapshot = a;
        a.add_local_copy(20);
        a.commits = 1;
        let d = a.since(&snapshot);
        assert_eq!(d.local_copies, 1);
        assert_eq!(d.local_copy_bytes, 20);
        assert_eq!(d.commits, 1);
    }

    #[test]
    fn copies_per_commit_guards_zero() {
        let s = TxnStats::new();
        assert_eq!(s.copies_per_commit(), 0);
        let mut s = TxnStats::new();
        s.commits = 2;
        s.local_copies = 2;
        s.remote_writes = 4;
        assert_eq!(s.copies_per_commit(), 3);
    }
}
