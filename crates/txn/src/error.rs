//! The shared transaction error type.

use std::error::Error;
use std::fmt;

use crate::RegionId;

/// Errors reported by any [`crate::TransactionalMemory`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TxnError {
    /// An operation that requires an open transaction was called outside
    /// one.
    NoActiveTransaction,
    /// `begin_transaction` was called while a transaction was already open
    /// (the paper's library is sequential: one transaction at a time).
    TransactionAlreadyActive,
    /// The region handle is unknown.
    UnknownRegion(RegionId),
    /// An access fell outside a region.
    OutOfBounds {
        /// Region being accessed.
        region: RegionId,
        /// Starting offset.
        offset: usize,
        /// Access length.
        len: usize,
        /// Region length.
        region_len: usize,
    },
    /// A transactional write touched bytes never declared via `set_range`,
    /// which would make them unrecoverable on abort.
    RangeNotDeclared {
        /// Region written.
        region: RegionId,
        /// Offset of the undeclared byte.
        offset: usize,
    },
    /// Regions cannot be allocated or published while a transaction is
    /// open.
    BusyInTransaction,
    /// The durable backing store (mirror node, disk, reliable cache) is
    /// unreachable; the message describes the failure.
    Unavailable(String),
    /// The mirror carries a stale mirror-set epoch: it was fenced off
    /// after missing commits and its image must never serve recovery or
    /// a replica snapshot.
    FencedMirror {
        /// Epoch found in the mirror's metadata.
        epoch: u64,
        /// Minimum epoch the caller requires.
        required: u64,
        /// Attempts made before the fence was diagnosed (1 when the very
        /// first look at the mirror found the stale epoch).
        attempts: usize,
    },
    /// A consistent snapshot could not be taken because the mirror kept
    /// committing while it was copied. The mirror is alive — retry later
    /// or raise the retry budget; this is not a transport failure.
    SnapshotContention {
        /// Number of copy attempts that were invalidated.
        attempts: usize,
    },
    /// A snapshot read reached for a committed version that the bounded
    /// version store has already evicted (or the store was cleared by a
    /// crash). The snapshot can never be served consistently again; open
    /// a fresh one. Raised instead of ever returning torn bytes.
    SnapshotTooOld {
        /// Commit watermark the snapshot pinned.
        read_seq: u64,
        /// Oldest commit watermark the version store can still
        /// reconstruct (0 after a crash invalidated every snapshot).
        floor_seq: u64,
    },
    /// The mirror set fell below the commit quorum at the durability
    /// point itself: the commit record already reached every mirror that
    /// is still healthy, so recovery from any survivor replays the
    /// transaction as **committed** — it merely holds fewer than the
    /// configured number of copies. The transaction is applied locally
    /// and counted in `last_committed`; do **not** retry it (a retry
    /// would double-apply). Restore redundancy with `rejoin_mirror`.
    CommitInDoubt {
        /// Id of the under-replicated transaction.
        id: u64,
        /// Healthy mirrors that hold the commit record.
        healthy: usize,
        /// The configured commit quorum that was missed.
        quorum: usize,
    },
    /// A `set_range` overlapped bytes already claimed by another open
    /// transaction. Conflict detection is first-claimer-wins: the holder
    /// keeps its claim, the caller's transaction stays open and may keep
    /// working on other ranges, abort, or retry the claim after the
    /// holder resolves.
    Conflict {
        /// Region of the contested range.
        region: RegionId,
        /// Starting offset of the rejected claim.
        offset: usize,
        /// Length of the rejected claim.
        len: usize,
        /// Id of the transaction holding the overlapping claim.
        holder: u64,
    },
    /// This instance crashed (by injected fault) and only `recover` may be
    /// called on its successors.
    Crashed,
    /// `publish` must be called before the first transaction; or it was
    /// called twice.
    BadPublishState,
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::NoActiveTransaction => write!(f, "no transaction is active"),
            TxnError::TransactionAlreadyActive => {
                write!(f, "a transaction is already active")
            }
            TxnError::UnknownRegion(r) => write!(f, "unknown region {r}"),
            TxnError::OutOfBounds {
                region,
                offset,
                len,
                region_len,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for region {region} of length {region_len}",
                offset + len
            ),
            TxnError::RangeNotDeclared { region, offset } => write!(
                f,
                "write at offset {offset} of region {region} outside every declared set_range"
            ),
            TxnError::BusyInTransaction => {
                write!(f, "operation not allowed while a transaction is open")
            }
            TxnError::Unavailable(m) => write!(f, "durable store unavailable: {m}"),
            TxnError::FencedMirror {
                epoch,
                required,
                attempts,
            } => write!(
                f,
                "mirror is fenced: its epoch {epoch} is older than the required epoch \
                 {required} (diagnosed on attempt {attempts})"
            ),
            TxnError::SnapshotContention { attempts } => write!(
                f,
                "snapshot invalidated by concurrent commits {attempts} times; mirror is alive — retry"
            ),
            TxnError::SnapshotTooOld {
                read_seq,
                floor_seq,
            } => write!(
                f,
                "snapshot at commit watermark {read_seq} is older than the version store's \
                 floor {floor_seq}; open a fresh snapshot"
            ),
            TxnError::CommitInDoubt {
                id,
                healthy,
                quorum,
            } => write!(
                f,
                "transaction {id} committed on {healthy} mirrors, below the quorum of {quorum}; \
                 recovery will replay it — do not retry"
            ),
            TxnError::Conflict {
                region,
                offset,
                len,
                holder,
            } => write!(
                f,
                "range [{offset}, {}) of region {region} is claimed by open transaction {holder}",
                offset + len
            ),
            TxnError::Crashed => write!(f, "instance has crashed; recover from the mirror"),
            TxnError::BadPublishState => {
                write!(
                    f,
                    "publish must be called exactly once, before transactions"
                )
            }
        }
    }
}

impl Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_display() {
        let variants = [
            TxnError::NoActiveTransaction,
            TxnError::TransactionAlreadyActive,
            TxnError::UnknownRegion(RegionId::from_raw(2)),
            TxnError::OutOfBounds {
                region: RegionId::from_raw(1),
                offset: 1,
                len: 2,
                region_len: 2,
            },
            TxnError::RangeNotDeclared {
                region: RegionId::from_raw(1),
                offset: 3,
            },
            TxnError::BusyInTransaction,
            TxnError::Unavailable("link down".into()),
            TxnError::FencedMirror {
                epoch: 1,
                required: 2,
                attempts: 3,
            },
            TxnError::SnapshotContention { attempts: 8 },
            TxnError::SnapshotTooOld {
                read_seq: 4,
                floor_seq: 7,
            },
            TxnError::CommitInDoubt {
                id: 9,
                healthy: 1,
                quorum: 2,
            },
            TxnError::Conflict {
                region: RegionId::from_raw(1),
                offset: 8,
                len: 8,
                holder: 3,
            },
            TxnError::Crashed,
            TxnError::BadPublishState,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TxnError>();
    }
}
