//! Typed record storage over any [`TransactionalMemory`].
//!
//! The paper's API (and every baseline's) moves raw byte ranges. Real
//! applications — the banking and wholesale workloads included — store
//! fixed-size *records*. This crate provides that layer, system-agnostic:
//!
//! * [`FixedRecord`] — a fixed-size, byte-encodable record type
//!   (implemented for the primitive integers and byte arrays; derive
//!   struct impls with [`fixed_record!`]);
//! * [`Table`] — an indexed array of records inside one recoverable
//!   region;
//! * [`RingLog`] — an append-only wrapping log with a durable sequence
//!   counter (the shape of TPC-B's history file).
//!
//! All mutating operations must run inside a transaction and declare
//! their ranges through the normal `set_range` path, so crash recovery
//! and aborts work unchanged.
//!
//! # Examples
//!
//! ```
//! use perseas_core::{Perseas, PerseasConfig};
//! use perseas_rnram::SimRemote;
//! use perseas_store::{fixed_record, Table};
//!
//! fixed_record! {
//!     /// A bank account record.
//!     pub struct Account {
//!         pub balance: i64,
//!         pub flags: u32,
//!     }
//! }
//!
//! # fn main() -> Result<(), perseas_txn::TxnError> {
//! let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default())?;
//! let accounts = Table::<Account>::create(&mut db, 1_000)?;
//! db.init_remote_db()?;
//!
//! db.begin_transaction()?;
//! accounts.update(&mut db, 7, |a| a.balance += 100)?;
//! db.commit_transaction()?;
//!
//! assert_eq!(accounts.get(&db, 7)?.balance, 100);
//! # Ok(())
//! # }
//! ```

mod record;
mod ring;
mod table;

pub use record::FixedRecord;
pub use ring::RingLog;
pub use table::Table;

use perseas_txn::TransactionalMemory;

/// Convenience: total bytes a table of `capacity` records of type `R`
/// occupies.
pub fn table_bytes<R: FixedRecord>(capacity: usize) -> usize {
    capacity * R::SIZE
}

/// Extension helpers shared by the containers.
pub(crate) fn read_exact(
    tm: &dyn TransactionalMemory,
    region: perseas_txn::RegionId,
    offset: usize,
    len: usize,
) -> Result<Vec<u8>, perseas_txn::TxnError> {
    let mut buf = vec![0u8; len];
    tm.read(region, offset, &mut buf)?;
    Ok(buf)
}
