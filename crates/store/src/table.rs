//! An indexed table of fixed-size records inside one recoverable region.

use std::marker::PhantomData;

use perseas_txn::{RegionId, TransactionalMemory, TxnError};

use crate::{read_exact, FixedRecord};

/// A fixed-capacity array of records of type `R`, stored in one region of
/// a transactional memory.
///
/// The table itself is a plain handle (region id + capacity): after a
/// crash it can be reconstructed on the recovered database with
/// [`Table::open`], since region ids are stable across recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table<R> {
    region: RegionId,
    capacity: usize,
    _record: PhantomData<fn() -> R>,
}

impl<R: FixedRecord> Table<R> {
    /// Allocates a region holding `capacity` zero-initialised records.
    /// Must be called before the memory is published.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn create(tm: &mut dyn TransactionalMemory, capacity: usize) -> Result<Self, TxnError> {
        let region = tm.alloc_region(capacity * R::SIZE)?;
        Ok(Table {
            region,
            capacity,
            _record: PhantomData,
        })
    }

    /// Re-attaches to an existing region (e.g. after recovery).
    ///
    /// # Errors
    ///
    /// Fails if the region does not exist or its length is not a whole
    /// number of records.
    pub fn open(tm: &dyn TransactionalMemory, region: RegionId) -> Result<Self, TxnError> {
        let len = tm.region_len(region)?;
        if R::SIZE == 0 || len % R::SIZE != 0 {
            return Err(TxnError::Unavailable(format!(
                "region {region} of {len} bytes does not hold whole {}-byte records",
                R::SIZE
            )));
        }
        Ok(Table {
            region,
            capacity: len / R::SIZE,
            _record: PhantomData,
        })
    }

    /// The underlying region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of record slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn offset_of(&self, index: usize) -> Result<usize, TxnError> {
        if index >= self.capacity {
            return Err(TxnError::OutOfBounds {
                region: self.region,
                offset: index * R::SIZE,
                len: R::SIZE,
                region_len: self.capacity * R::SIZE,
            });
        }
        Ok(index * R::SIZE)
    }

    /// Reads record `index`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range indices or system errors.
    pub fn get(&self, tm: &dyn TransactionalMemory, index: usize) -> Result<R, TxnError> {
        let off = self.offset_of(index)?;
        let buf = read_exact(tm, self.region, off, R::SIZE)?;
        Ok(R::decode(&buf))
    }

    /// Overwrites record `index` inside the current transaction
    /// (declares the range and writes).
    ///
    /// # Errors
    ///
    /// Fails outside a transaction, on out-of-range indices, or on system
    /// errors.
    pub fn put(
        &self,
        tm: &mut dyn TransactionalMemory,
        index: usize,
        record: &R,
    ) -> Result<(), TxnError> {
        let off = self.offset_of(index)?;
        let mut buf = vec![0u8; R::SIZE];
        record.encode(&mut buf);
        tm.set_range(self.region, off, R::SIZE)?;
        tm.write(self.region, off, &buf)
    }

    /// Reads record `index`, applies `f`, and writes it back — the
    /// read-modify-write every OLTP transaction is made of.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction, on out-of-range indices, or on system
    /// errors.
    pub fn update<F>(
        &self,
        tm: &mut dyn TransactionalMemory,
        index: usize,
        f: F,
    ) -> Result<R, TxnError>
    where
        F: FnOnce(&mut R),
    {
        let mut record = self.get(tm, index)?;
        f(&mut record);
        self.put(tm, index, &record)?;
        Ok(record)
    }

    /// Reads the whole table.
    ///
    /// # Errors
    ///
    /// Propagates system errors.
    pub fn read_all(&self, tm: &dyn TransactionalMemory) -> Result<Vec<R>, TxnError> {
        (0..self.capacity).map(|i| self.get(tm, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_record;
    use perseas_baselines::VistaSystem;
    use perseas_core::{Perseas, PerseasConfig};
    use perseas_rnram::SimRemote;
    use perseas_simtime::SimClock;

    fixed_record! {
        struct Counter {
            value: i64,
            bumps: u32,
        }
    }

    fn perseas() -> Perseas<SimRemote> {
        Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap()
    }

    #[test]
    fn create_get_put_update() {
        let mut db = perseas();
        let t = Table::<Counter>::create(&mut db, 8).unwrap();
        db.init_remote_db().unwrap();

        assert_eq!(t.get(&db, 3).unwrap(), Counter::default());

        db.begin_transaction().unwrap();
        t.put(&mut db, 3, &Counter { value: 5, bumps: 1 }).unwrap();
        let after = t
            .update(&mut db, 3, |c| {
                c.value += 10;
                c.bumps += 1;
            })
            .unwrap();
        db.commit_transaction().unwrap();

        assert_eq!(
            after,
            Counter {
                value: 15,
                bumps: 2
            }
        );
        assert_eq!(t.get(&db, 3).unwrap(), after);
    }

    #[test]
    fn abort_rolls_back_table_updates() {
        let mut db = perseas();
        let t = Table::<Counter>::create(&mut db, 4).unwrap();
        db.init_remote_db().unwrap();
        db.begin_transaction().unwrap();
        t.put(&mut db, 0, &Counter { value: 9, bumps: 9 }).unwrap();
        db.abort_transaction().unwrap();
        assert_eq!(t.get(&db, 0).unwrap(), Counter::default());
    }

    #[test]
    fn out_of_range_index_fails() {
        let mut db = perseas();
        let t = Table::<Counter>::create(&mut db, 2).unwrap();
        db.init_remote_db().unwrap();
        assert!(matches!(
            t.get(&db, 2).unwrap_err(),
            TxnError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn open_after_recovery_sees_data() {
        let mut db = perseas();
        let node = db.mirror_backend(0).unwrap().node().clone();
        let t = Table::<Counter>::create(&mut db, 4).unwrap();
        db.init_remote_db().unwrap();
        db.begin_transaction().unwrap();
        t.put(&mut db, 1, &Counter { value: 7, bumps: 3 }).unwrap();
        db.commit_transaction().unwrap();
        db.crash();

        let backend = SimRemote::with_parts(
            SimClock::new(),
            node,
            perseas_sci::SciParams::dolphin_1998(),
        );
        let (db2, _) = Perseas::recover(backend, PerseasConfig::default()).unwrap();
        let reopened = Table::<Counter>::open(&db2, t.region()).unwrap();
        assert_eq!(reopened.capacity(), 4);
        assert_eq!(
            reopened.get(&db2, 1).unwrap(),
            Counter { value: 7, bumps: 3 }
        );
    }

    #[test]
    fn open_rejects_misaligned_region() {
        let mut db = perseas();
        let r = db.malloc(13).unwrap(); // not a multiple of Counter::SIZE
        db.init_remote_db().unwrap();
        assert!(Table::<Counter>::open(&db, r).is_err());
    }

    #[test]
    fn works_on_baselines_too() {
        let mut tm = VistaSystem::new(SimClock::new());
        let t = Table::<Counter>::create(&mut tm, 4).unwrap();
        tm.publish().unwrap();
        tm.begin_transaction().unwrap();
        t.update(&mut tm, 2, |c| c.value = -1).unwrap();
        tm.commit_transaction().unwrap();
        assert_eq!(t.get(&tm, 2).unwrap().value, -1);
    }

    #[test]
    fn read_all_returns_every_slot() {
        let mut db = perseas();
        let t = Table::<Counter>::create(&mut db, 3).unwrap();
        db.init_remote_db().unwrap();
        db.begin_transaction().unwrap();
        for i in 0..3 {
            t.put(
                &mut db,
                i,
                &Counter {
                    value: i as i64,
                    bumps: 0,
                },
            )
            .unwrap();
        }
        db.commit_transaction().unwrap();
        let all = t.read_all(&db).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].value, 2);
    }
}
