//! A wrapping append-only log with a durable sequence counter — the shape
//! of TPC-B's history file.

use std::marker::PhantomData;

use perseas_txn::{RegionId, TransactionalMemory, TxnError};

use crate::{read_exact, FixedRecord};

/// Bytes reserved at the start of the region for the sequence counter.
const HEADER: usize = 16;

/// An append-only log of records of type `R` that wraps after `slots`
/// entries, keeping a durable count of everything ever pushed.
///
/// Layout: a 16-byte header (`pushed: u64`, padding) followed by the
/// slot array. Pushes declare both the slot and the header inside the
/// caller's transaction, so a crash either keeps the record *and* the
/// counter or neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLog<R> {
    region: RegionId,
    slots: usize,
    _record: PhantomData<fn() -> R>,
}

impl<R: FixedRecord> RingLog<R> {
    /// Allocates a region for `slots` records plus the header. Must be
    /// called before the memory is published.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn create(tm: &mut dyn TransactionalMemory, slots: usize) -> Result<Self, TxnError> {
        assert!(slots > 0, "a ring log needs at least one slot");
        let region = tm.alloc_region(HEADER + slots * R::SIZE)?;
        Ok(RingLog {
            region,
            slots,
            _record: PhantomData,
        })
    }

    /// Re-attaches to an existing region (e.g. after recovery).
    ///
    /// # Errors
    ///
    /// Fails if the region does not exist or cannot hold whole records.
    pub fn open(tm: &dyn TransactionalMemory, region: RegionId) -> Result<Self, TxnError> {
        let len = tm.region_len(region)?;
        if len < HEADER || R::SIZE == 0 || !(len - HEADER).is_multiple_of(R::SIZE) {
            return Err(TxnError::Unavailable(format!(
                "region {region} of {len} bytes is not a ring log of {}-byte records",
                R::SIZE
            )));
        }
        Ok(RingLog {
            region,
            slots: (len - HEADER) / R::SIZE,
            _record: PhantomData,
        })
    }

    /// The underlying region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of slots before the log wraps.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Total records ever pushed (monotone; survives crashes with the
    /// enclosing transaction's atomicity).
    ///
    /// # Errors
    ///
    /// Propagates system errors.
    pub fn pushed(&self, tm: &dyn TransactionalMemory) -> Result<u64, TxnError> {
        let buf = read_exact(tm, self.region, 0, 8)?;
        Ok(u64::from_le_bytes(buf.try_into().expect("8 bytes")))
    }

    /// Appends `record` inside the current transaction, returning its
    /// sequence number.
    ///
    /// # Errors
    ///
    /// Fails outside a transaction or on system errors.
    pub fn push(&self, tm: &mut dyn TransactionalMemory, record: &R) -> Result<u64, TxnError> {
        let seq = self.pushed(tm)?;
        let slot = (seq % self.slots as u64) as usize;
        let off = HEADER + slot * R::SIZE;

        let mut buf = vec![0u8; R::SIZE];
        record.encode(&mut buf);
        tm.set_range(self.region, off, R::SIZE)?;
        tm.write(self.region, off, &buf)?;

        tm.set_range(self.region, 0, 8)?;
        tm.write(self.region, 0, &(seq + 1).to_le_bytes())?;
        Ok(seq)
    }

    /// Reads the record with sequence number `seq`, if it is still within
    /// the window of the most recent `slots` pushes.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::OutOfBounds`] for overwritten or future
    /// sequence numbers; propagates system errors.
    pub fn get(&self, tm: &dyn TransactionalMemory, seq: u64) -> Result<R, TxnError> {
        let pushed = self.pushed(tm)?;
        let oldest = pushed.saturating_sub(self.slots as u64);
        if seq >= pushed || seq < oldest {
            return Err(TxnError::OutOfBounds {
                region: self.region,
                offset: seq as usize,
                len: 1,
                region_len: pushed as usize,
            });
        }
        let slot = (seq % self.slots as u64) as usize;
        let buf = read_exact(tm, self.region, HEADER + slot * R::SIZE, R::SIZE)?;
        Ok(R::decode(&buf))
    }

    /// The most recent `k` records, newest last.
    ///
    /// # Errors
    ///
    /// Propagates system errors.
    pub fn recent(&self, tm: &dyn TransactionalMemory, k: usize) -> Result<Vec<R>, TxnError> {
        let pushed = self.pushed(tm)?;
        let window = (self.slots as u64).min(pushed);
        let take = (k as u64).min(window);
        (pushed - take..pushed).map(|s| self.get(tm, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perseas_core::{Perseas, PerseasConfig};
    use perseas_rnram::SimRemote;

    fn published_log(slots: usize) -> (Perseas<SimRemote>, RingLog<u64>) {
        let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        let log = RingLog::<u64>::create(&mut db, slots).unwrap();
        db.init_remote_db().unwrap();
        (db, log)
    }

    #[test]
    fn pushes_assign_sequence_numbers() {
        let (mut db, log) = published_log(4);
        db.begin_transaction().unwrap();
        assert_eq!(log.push(&mut db, &100).unwrap(), 0);
        assert_eq!(log.push(&mut db, &101).unwrap(), 1);
        db.commit_transaction().unwrap();
        assert_eq!(log.pushed(&db).unwrap(), 2);
        assert_eq!(log.get(&db, 0).unwrap(), 100);
        assert_eq!(log.get(&db, 1).unwrap(), 101);
    }

    #[test]
    fn wrapping_overwrites_oldest() {
        let (mut db, log) = published_log(3);
        for i in 0..7u64 {
            db.begin_transaction().unwrap();
            log.push(&mut db, &(i * 10)).unwrap();
            db.commit_transaction().unwrap();
        }
        assert_eq!(log.pushed(&db).unwrap(), 7);
        // Sequences 0..4 are overwritten.
        assert!(log.get(&db, 3).is_err());
        assert_eq!(log.get(&db, 4).unwrap(), 40);
        assert_eq!(log.get(&db, 6).unwrap(), 60);
        assert!(log.get(&db, 7).is_err()); // future
        assert_eq!(log.recent(&db, 2).unwrap(), vec![50, 60]);
        assert_eq!(log.recent(&db, 10).unwrap(), vec![40, 50, 60]);
    }

    #[test]
    fn aborted_push_leaves_no_trace() {
        let (mut db, log) = published_log(4);
        db.begin_transaction().unwrap();
        log.push(&mut db, &1).unwrap();
        db.abort_transaction().unwrap();
        assert_eq!(log.pushed(&db).unwrap(), 0);
        assert!(log.recent(&db, 4).unwrap().is_empty());
    }

    #[test]
    fn push_and_counter_are_atomic_across_crash() {
        use perseas_core::FaultPlan;
        use perseas_sci::SciParams;
        use perseas_simtime::SimClock;

        // Crash at every step of a push transaction; recovery must never
        // show a counter that disagrees with the slots.
        for crash_at in 0..8 {
            let mut db =
                Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
            let node = db.mirror_backend(0).unwrap().node().clone();
            let log = RingLog::<u64>::create(&mut db, 4).unwrap();
            db.init_remote_db().unwrap();
            db.begin_transaction().unwrap();
            log.push(&mut db, &11).unwrap();
            db.commit_transaction().unwrap();

            db.set_fault_plan(FaultPlan::crash_after(crash_at));
            db.begin_transaction().unwrap();
            let res = log.push(&mut db, &22).and_then(|_| db.commit_transaction());

            let backend = SimRemote::with_parts(SimClock::new(), node, SciParams::dolphin_1998());
            let (db2, _) = Perseas::recover(backend, PerseasConfig::default()).unwrap();
            let log2 = RingLog::<u64>::open(&db2, log.region()).unwrap();
            let pushed = log2.pushed(&db2).unwrap();
            if res.is_ok() {
                assert_eq!(pushed, 2, "crash_at={crash_at}");
                assert_eq!(log2.get(&db2, 1).unwrap(), 22);
            } else {
                assert_eq!(pushed, 1, "crash_at={crash_at}");
                assert_eq!(log2.get(&db2, 0).unwrap(), 11);
            }
        }
    }

    #[test]
    fn open_validates_geometry() {
        let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        let r = db.malloc(HEADER + 7).unwrap();
        db.init_remote_db().unwrap();
        assert!(RingLog::<u64>::open(&db, r).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        let _ = RingLog::<u64>::create(&mut db, 0);
    }
}
