//! The [`FixedRecord`] trait and the [`fixed_record!`] derive macro.

/// A record with a fixed byte-level encoding.
///
/// Encodings must be total: any `SIZE` bytes decode to *some* record
/// (recoverable regions start zero-filled, so the all-zeros image must be
/// a valid — typically "default" — record).
pub trait FixedRecord: Sized {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Writes the encoding into `out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != Self::SIZE`.
    fn encode(&self, out: &mut [u8]);

    /// Reads a record back from its encoding.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `buf.len() != Self::SIZE`.
    fn decode(buf: &[u8]) -> Self;
}

macro_rules! impl_int_record {
    ($($t:ty),*) => {$(
        impl FixedRecord for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn encode(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn decode(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("exact record size"))
            }
        }
    )*};
}

impl_int_record!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl<const N: usize> FixedRecord for [u8; N] {
    const SIZE: usize = N;

    fn encode(&self, out: &mut [u8]) {
        out.copy_from_slice(self);
    }

    fn decode(buf: &[u8]) -> Self {
        buf.try_into().expect("exact record size")
    }
}

impl FixedRecord for bool {
    const SIZE: usize = 1;

    fn encode(&self, out: &mut [u8]) {
        out[0] = *self as u8;
    }

    fn decode(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

/// Defines a struct of [`FixedRecord`] fields and derives its
/// [`FixedRecord`] implementation (fields are encoded in declaration
/// order, little-endian, unpadded).
///
/// # Examples
///
/// ```
/// use perseas_store::{fixed_record, FixedRecord};
///
/// fixed_record! {
///     /// An order line.
///     pub struct OrderLine {
///         pub order_id: u64,
///         pub item: u32,
///         pub quantity: i32,
///     }
/// }
///
/// assert_eq!(OrderLine::SIZE, 16);
/// let line = OrderLine { order_id: 9, item: 4, quantity: -2 };
/// let mut buf = [0u8; OrderLine::SIZE];
/// line.encode(&mut buf);
/// let back = OrderLine::decode(&buf);
/// assert_eq!(back, line);
/// ```
#[macro_export]
macro_rules! fixed_record {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $ftype:ty ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Default)]
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $ftype, )*
        }

        impl $crate::FixedRecord for $name {
            const SIZE: usize = 0 $( + <$ftype as $crate::FixedRecord>::SIZE )*;

            fn encode(&self, out: &mut [u8]) {
                assert_eq!(out.len(), Self::SIZE, "wrong buffer size");
                let mut at = 0usize;
                $(
                    let end = at + <$ftype as $crate::FixedRecord>::SIZE;
                    $crate::FixedRecord::encode(&self.$field, &mut out[at..end]);
                    #[allow(unused_assignments)]
                    { at = end; }
                )*
            }

            fn decode(buf: &[u8]) -> Self {
                assert_eq!(buf.len(), Self::SIZE, "wrong buffer size");
                let mut at = 0usize;
                $(
                    let end = at + <$ftype as $crate::FixedRecord>::SIZE;
                    let $field = <$ftype as $crate::FixedRecord>::decode(&buf[at..end]);
                    #[allow(unused_assignments)]
                    { at = end; }
                )*
                Self { $( $field, )* }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = [0u8; 8];
        0xDEAD_BEEF_u64.encode(&mut buf);
        assert_eq!(u64::decode(&buf), 0xDEAD_BEEF);

        let mut buf = [0u8; 8];
        (-3.5f64).encode(&mut buf);
        assert_eq!(f64::decode(&buf), -3.5);

        let mut buf = [0u8; 1];
        true.encode(&mut buf);
        assert!(bool::decode(&buf));

        let mut buf = [0u8; 4];
        [9u8, 8, 7, 6].encode(&mut buf);
        assert_eq!(<[u8; 4]>::decode(&buf), [9, 8, 7, 6]);
    }

    fixed_record! {
        /// Record used by the macro tests.
        pub struct Mixed {
            pub a: u64,
            pub b: i32,
            pub c: [u8; 3],
            pub d: bool,
        }
    }

    #[test]
    fn macro_size_is_sum_of_fields() {
        assert_eq!(Mixed::SIZE, 8 + 4 + 3 + 1);
    }

    #[test]
    fn macro_roundtrip() {
        let m = Mixed {
            a: 1,
            b: -2,
            c: [3, 4, 5],
            d: true,
        };
        let mut buf = vec![0u8; Mixed::SIZE];
        m.encode(&mut buf);
        assert_eq!(Mixed::decode(&buf), m);
    }

    #[test]
    fn zero_bytes_decode_to_default() {
        let buf = vec![0u8; Mixed::SIZE];
        assert_eq!(Mixed::decode(&buf), Mixed::default());
    }

    #[test]
    fn macro_works_in_function_scope() {
        fixed_record! {
            struct Local {
                x: u16,
            }
        }
        assert_eq!(Local::SIZE, 2);
        let mut buf = [0u8; 2];
        Local { x: 513 }.encode(&mut buf);
        assert_eq!(Local::decode(&buf).x, 513);
    }

    #[test]
    #[should_panic(expected = "wrong buffer size")]
    fn wrong_buffer_size_panics() {
        let mut buf = [0u8; 3];
        Mixed::default().encode(&mut buf);
    }
}
