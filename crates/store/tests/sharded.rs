//! The typed containers over a sharded database.
//!
//! [`ShardedPerseas`] implements [`TransactionalMemory`], so `Table` and
//! `RingLog` span shards with no store-layer changes: each container's
//! region lands on one shard (round-robin by allocation order), and a
//! transaction touching containers on different shards commits through
//! the cross-shard protocol transparently. These tests pin that path,
//! including abort, crash recovery, and re-opening containers on the
//! recovered database.

use perseas_core::{PerseasConfig, ShardedPerseas};
use perseas_rnram::SimRemote;
use perseas_store::{fixed_record, RingLog, Table};
use perseas_txn::TransactionalMemory;

fixed_record! {
    struct Account {
        balance: u64,
        flags: i32,
        frozen: bool,
    }
}

fn backends(k: usize, mirrors: usize) -> Vec<Vec<SimRemote>> {
    (0..k)
        .map(|s| {
            (0..mirrors)
                .map(|m| SimRemote::new(format!("s{s}m{m}")))
                .collect()
        })
        .collect()
}

/// A table on shard 0 and a ring log on shard 1, updated together: every
/// transaction is a cross-shard commit, and both containers observe it
/// atomically.
#[test]
fn containers_span_shards_transparently() {
    let mut db = ShardedPerseas::init(backends(2, 2), PerseasConfig::default()).unwrap();
    let table = Table::<Account>::create(&mut db, 8).unwrap(); // region 0 → shard 0
    let log = RingLog::<u64>::create(&mut db, 4).unwrap(); // region 1 → shard 1
    db.init_remote_db().unwrap();

    for i in 0..6u64 {
        db.begin_transaction().unwrap();
        table
            .put(
                &mut db,
                i as usize,
                &Account {
                    balance: 100 * i,
                    flags: -(i as i32),
                    frozen: i % 2 == 0,
                },
            )
            .unwrap();
        log.push(&mut db, &i).unwrap();
        db.commit_transaction().unwrap();
    }

    // Both shards advanced in lockstep: every commit touched both.
    assert_eq!(db.shard(0).last_committed(), 6);
    assert_eq!(db.shard(1).last_committed(), 6);
    assert_eq!(table.get(&db, 3).unwrap().balance, 300);
    assert_eq!(log.pushed(&db).unwrap(), 6);
    assert_eq!(log.recent(&db, 2).unwrap(), vec![4, 5]);
}

/// An aborted cross-shard transaction stages changes to containers on
/// both shards and must leave no trace on either.
#[test]
fn cross_shard_abort_leaves_no_trace() {
    let mut db = ShardedPerseas::init(backends(2, 1), PerseasConfig::default()).unwrap();
    let table = Table::<Account>::create(&mut db, 4).unwrap();
    let log = RingLog::<u64>::create(&mut db, 4).unwrap();
    db.init_remote_db().unwrap();

    db.begin_transaction().unwrap();
    table
        .put(
            &mut db,
            0,
            &Account {
                balance: 1,
                flags: 1,
                frozen: false,
            },
        )
        .unwrap();
    log.push(&mut db, &7).unwrap();
    db.abort_transaction().unwrap();

    assert_eq!(table.get(&db, 0).unwrap(), Account::default());
    assert_eq!(log.pushed(&db).unwrap(), 0);
    assert_eq!(db.shard(0).last_committed(), 0);
    assert_eq!(db.shard(1).last_committed(), 0);
}

/// Containers survive a whole-database crash: recovery rebuilds every
/// shard, and `open` re-attaches the containers by (global) region id.
#[test]
fn containers_reopen_after_sharded_recovery() {
    let backends = backends(3, 2);
    let mut db = ShardedPerseas::init(backends.clone(), PerseasConfig::default()).unwrap();
    let table = Table::<Account>::create(&mut db, 8).unwrap();
    let log = RingLog::<u64>::create(&mut db, 8).unwrap();
    db.init_remote_db().unwrap();

    for i in 0..5u64 {
        db.begin_transaction().unwrap();
        table
            .put(
                &mut db,
                i as usize,
                &Account {
                    balance: i * i,
                    flags: i as i32,
                    frozen: false,
                },
            )
            .unwrap();
        log.push(&mut db, &(i * 10)).unwrap();
        db.commit_transaction().unwrap();
    }
    let table_region = table.region();
    let log_region = log.region();
    db.crash();

    let (db2, report) = ShardedPerseas::recover(backends, PerseasConfig::default()).unwrap();
    assert_eq!(report.shards.len(), 3);
    let table = Table::<Account>::open(&db2, table_region).unwrap();
    let log = RingLog::<u64>::open(&db2, log_region).unwrap();
    for i in 0..5u64 {
        assert_eq!(table.get(&db2, i as usize).unwrap().balance, i * i);
    }
    assert_eq!(log.pushed(&db2).unwrap(), 5);
    assert_eq!(log.recent(&db2, 5).unwrap(), vec![0, 10, 20, 30, 40]);
}
