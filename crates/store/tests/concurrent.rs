//! The typed containers over the concurrent engine.
//!
//! With `concurrent = true` the legacy [`TransactionalMemory`] facade
//! routes every `begin`/`commit`/`abort` through the token-based engine
//! (one implicit token), so `Table` and `RingLog` exercise the byte-range
//! conflict table, per-transaction undo extents, and group-commit record
//! layout without any store-layer changes. These tests pin that path,
//! including abort and crash recovery.

use perseas_core::{Perseas, PerseasConfig, TxnError};
use perseas_rnram::SimRemote;
use perseas_simtime::SimClock;
use perseas_store::{fixed_record, RingLog, Table};

fixed_record! {
    struct Account {
        balance: u64,
        flags: i32,
        frozen: bool,
    }
}

fn concurrent_cfg() -> PerseasConfig {
    PerseasConfig::default().with_concurrent(true)
}

/// Puts, updates, pushes, and one abort, all through the legacy facade on
/// a concurrent-engine instance; contents must match the same script run
/// by hand.
#[test]
fn containers_work_over_concurrent_engine() {
    let mut db = Perseas::init(vec![SimRemote::new("m")], concurrent_cfg()).unwrap();
    let table = Table::<Account>::create(&mut db, 8).unwrap();
    let log = RingLog::<u64>::create(&mut db, 4).unwrap();
    db.init_remote_db().unwrap();

    for i in 0..8u64 {
        db.begin_transaction().unwrap();
        table
            .put(
                &mut db,
                i as usize,
                &Account {
                    balance: 100 * i,
                    flags: -(i as i32),
                    frozen: i % 2 == 0,
                },
            )
            .unwrap();
        log.push(&mut db, &i).unwrap();
        db.commit_transaction().unwrap();
    }

    // An aborted transaction stages changes to both containers and must
    // leave no trace.
    db.begin_transaction().unwrap();
    table
        .put(
            &mut db,
            3,
            &Account {
                balance: u64::MAX,
                flags: 0,
                frozen: false,
            },
        )
        .unwrap();
    log.push(&mut db, &999).unwrap();
    db.abort_transaction().unwrap();

    db.begin_transaction().unwrap();
    table.update(&mut db, 3, |a| a.balance += 5).unwrap();
    db.commit_transaction().unwrap();

    for i in 0..8u64 {
        let want = Account {
            balance: 100 * i + u64::from(i == 3) * 5,
            flags: -(i as i32),
            frozen: i % 2 == 0,
        };
        assert_eq!(table.get(&db, i as usize).unwrap(), want, "slot {i}");
    }
    assert_eq!(log.pushed(&db).unwrap(), 8);
    assert_eq!(log.recent(&db, 4).unwrap(), vec![4, 5, 6, 7]);
}

/// The facade enforces the single implicit token: a second begin fails,
/// and commit/abort without a begin fail.
#[test]
fn legacy_facade_guards_hold_on_concurrent_engine() {
    let mut db = Perseas::init(vec![SimRemote::new("m")], concurrent_cfg()).unwrap();
    let _table = Table::<Account>::create(&mut db, 2).unwrap();
    db.init_remote_db().unwrap();

    assert!(matches!(
        db.commit_transaction(),
        Err(TxnError::NoActiveTransaction)
    ));
    db.begin_transaction().unwrap();
    assert!(db.in_transaction());
    assert!(matches!(
        db.begin_transaction(),
        Err(TxnError::TransactionAlreadyActive)
    ));
    db.abort_transaction().unwrap();
    assert!(!db.in_transaction());
    assert!(matches!(
        db.abort_transaction(),
        Err(TxnError::NoActiveTransaction)
    ));
}

/// Crash after a series of committed container transactions on the
/// concurrent engine; recovery reopens both containers with every
/// committed record intact and the aborted one absent.
#[test]
fn containers_survive_crash_on_concurrent_engine() {
    let mut db = Perseas::init(vec![SimRemote::new("m")], concurrent_cfg()).unwrap();
    let node = db.mirror_backend(0).unwrap().node().clone();
    let table = Table::<Account>::create(&mut db, 4).unwrap();
    let log = RingLog::<u64>::create(&mut db, 4).unwrap();
    db.init_remote_db().unwrap();

    for i in 0..4u64 {
        db.begin_transaction().unwrap();
        table
            .put(
                &mut db,
                i as usize,
                &Account {
                    balance: 7 * i,
                    flags: i as i32,
                    frozen: false,
                },
            )
            .unwrap();
        log.push(&mut db, &(10 + i)).unwrap();
        db.commit_transaction().unwrap();
    }
    db.begin_transaction().unwrap();
    table
        .put(
            &mut db,
            0,
            &Account {
                balance: 1,
                flags: 1,
                frozen: true,
            },
        )
        .unwrap();
    db.abort_transaction().unwrap();
    db.crash();

    let backend = SimRemote::with_parts(
        SimClock::new(),
        node,
        perseas_sci::SciParams::dolphin_1998(),
    );
    let (db2, report) = Perseas::recover(backend, concurrent_cfg()).unwrap();
    assert!(report.last_committed >= 4, "all four commits durable");
    let table2 = Table::<Account>::open(&db2, table.region()).unwrap();
    let log2 = RingLog::<u64>::open(&db2, log.region()).unwrap();
    for i in 0..4u64 {
        assert_eq!(
            table2.get(&db2, i as usize).unwrap(),
            Account {
                balance: 7 * i,
                flags: i as i32,
                frozen: false,
            },
            "slot {i}"
        );
    }
    assert_eq!(log2.pushed(&db2).unwrap(), 4);
    assert_eq!(log2.recent(&db2, 4).unwrap(), vec![10, 11, 12, 13]);
}
