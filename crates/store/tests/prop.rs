//! Property tests: the typed containers against plain in-memory models,
//! including abort and crash behaviour.

use std::collections::VecDeque;

use proptest::prelude::*;

use perseas_baselines::VistaSystem;
use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::SimRemote;
use perseas_simtime::SimClock;
use perseas_store::{fixed_record, RingLog, Table};
use perseas_txn::TransactionalMemory;

fixed_record! {
    struct Rec {
        a: u64,
        b: i32,
        c: bool,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Put { index: usize, a: u64, b: i32 },
    Update { index: usize, delta: i32 },
    Push { a: u64 },
    Abort,
}

fn op_strategy(capacity: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..capacity, any::<u64>(), any::<i32>())
            .prop_map(|(index, a, b)| Op::Put { index, a, b }),
        3 => (0..capacity, -100i32..100)
            .prop_map(|(index, delta)| Op::Update { index, delta }),
        2 => any::<u64>().prop_map(|a| Op::Push { a }),
        1 => Just(Op::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A table plus ring log driven by random committed/aborted
    /// transactions matches plain Vec/VecDeque models, on PERSEAS and on
    /// Vista.
    #[test]
    fn containers_match_models(ops in prop::collection::vec(op_strategy(16), 1..40)) {
        for system in ["perseas", "vista"] {
            let mut tm: Box<dyn TransactionalMemory> = match system {
                "perseas" => Box::new(
                    Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap(),
                ),
                _ => Box::new(VistaSystem::new(SimClock::new())),
            };
            let table = Table::<Rec>::create(tm.as_mut(), 16).unwrap();
            let log = RingLog::<u64>::create(tm.as_mut(), 8).unwrap();
            tm.publish().unwrap();

            let mut model_table = vec![Rec::default(); 16];
            let mut model_log: VecDeque<u64> = VecDeque::new();
            let mut model_pushed = 0u64;

            for op in &ops {
                // Each op is one transaction; Abort stages a change and
                // rolls it back.
                match op {
                    Op::Put { index, a, b } => {
                        tm.begin_transaction().unwrap();
                        let rec = Rec { a: *a, b: *b, c: a % 2 == 0 };
                        table.put(tm.as_mut(), *index, &rec).unwrap();
                        tm.commit_transaction().unwrap();
                        model_table[*index] = rec;
                    }
                    Op::Update { index, delta } => {
                        tm.begin_transaction().unwrap();
                        table.update(tm.as_mut(), *index, |r| r.b += delta).unwrap();
                        tm.commit_transaction().unwrap();
                        model_table[*index].b += delta;
                    }
                    Op::Push { a } => {
                        tm.begin_transaction().unwrap();
                        log.push(tm.as_mut(), a).unwrap();
                        tm.commit_transaction().unwrap();
                        model_log.push_back(*a);
                        if model_log.len() > 8 {
                            model_log.pop_front();
                        }
                        model_pushed += 1;
                    }
                    Op::Abort => {
                        tm.begin_transaction().unwrap();
                        table.put(tm.as_mut(), 0, &Rec { a: 1, b: 2, c: true }).unwrap();
                        log.push(tm.as_mut(), &99).unwrap();
                        tm.abort_transaction().unwrap();
                    }
                }
            }

            for (i, want) in model_table.iter().enumerate() {
                prop_assert_eq!(&table.get(&*tm, i).unwrap(), want, "{} slot {}", system, i);
            }
            prop_assert_eq!(log.pushed(&*tm).unwrap(), model_pushed, "{}", system);
            let recent = log.recent(&*tm, 8).unwrap();
            prop_assert_eq!(
                recent,
                model_log.iter().copied().collect::<Vec<_>>(),
                "{}",
                system
            );
        }
    }

    /// Record roundtrips hold for arbitrary field values.
    #[test]
    fn records_roundtrip(a in any::<u64>(), b in any::<i32>(), c in any::<bool>()) {
        use perseas_store::FixedRecord;
        let rec = Rec { a, b, c };
        let mut buf = vec![0u8; Rec::SIZE];
        rec.encode(&mut buf);
        prop_assert_eq!(Rec::decode(&buf), rec);
    }
}

#[test]
fn table_survives_crash_and_reopen() {
    let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
    let node = db.mirror_backend(0).unwrap().node().clone();
    let table = Table::<Rec>::create(&mut db, 8).unwrap();
    db.init_remote_db().unwrap();

    db.begin_transaction().unwrap();
    table
        .put(
            &mut db,
            5,
            &Rec {
                a: 42,
                b: -7,
                c: true,
            },
        )
        .unwrap();
    db.commit_transaction().unwrap();
    db.crash();

    let backend = SimRemote::with_parts(
        SimClock::new(),
        node,
        perseas_sci::SciParams::dolphin_1998(),
    );
    let (db2, _) = Perseas::recover(backend, PerseasConfig::default()).unwrap();
    let reopened = Table::<Rec>::open(&db2, table.region()).unwrap();
    assert_eq!(
        reopened.get(&db2, 5).unwrap(),
        Rec {
            a: 42,
            b: -7,
            c: true
        }
    );
}
