//! The experiment drivers.

use perseas_baselines::{DiskStore, WalConfig, WalSystem};
use perseas_core::{Perseas, PerseasConfig};
use perseas_disk::DiskParams;
use perseas_rnram::{plan_transfer, SimRemote};
use perseas_sci::{remote_write_latency, NodeMemory, SciParams};
use perseas_simtime::SimClock;
use perseas_txn::{TransactionalMemory, TxnStats};
use perseas_workloads::{run_workload, DebitCredit, OrderEntry, RunReport, Synthetic, Workload};

use crate::systems::{perseas_sim, perseas_sim_with, SystemKind};

/// One point of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Store size in bytes.
    pub size: usize,
    /// Latency of the raw store (first word on a buffer boundary), µs.
    pub raw_us: f64,
    /// Latency of the store as issued by the optimised `sci_memcpy`, µs.
    pub memcpy_us: f64,
}

/// Figure 5: SCI remote-write latency for 4–200-byte stores whose first
/// word maps to the first word of an SCI buffer.
pub fn fig5_sci_latency() -> Vec<Fig5Row> {
    let params = SciParams::dolphin_1998();
    (4..=200)
        .step_by(4)
        .map(|size| {
            let raw = remote_write_latency(&params, 0, size);
            let plan = plan_transfer(0, 0, size, 1 << 20);
            let opt = remote_write_latency(&params, plan.offset as u64, plan.len);
            Fig5Row {
                size,
                raw_us: raw.as_micros_f64(),
                memcpy_us: opt.as_micros_f64(),
            }
        })
        .collect()
}

/// One point of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Row {
    /// Bytes modified per transaction.
    pub size: usize,
    /// Mean transaction latency, µs.
    pub latency_us: f64,
    /// Transactions per second.
    pub tps: f64,
}

/// Figure 6: PERSEAS transaction overhead as a function of transaction
/// size, 4 bytes to 1 MB, each transaction modifying a random location of
/// an 8 MB database.
pub fn fig6_txn_overhead() -> Vec<Fig6Row> {
    let sizes = [
        4usize,
        16,
        64,
        256,
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
    ];
    sizes
        .iter()
        .map(|&size| {
            let clock = SimClock::new();
            let mut db = perseas_sim(clock.clone());
            let mut wl = Synthetic::figure6(size);
            wl.setup(&mut db).expect("setup");
            let n = (2_000usize.min((64 << 20) / size)).max(8) as u64;
            let report = run_workload(&mut db, &mut wl, n).expect("run");
            Fig6Row {
                size,
                latency_us: report.latency().as_micros_f64(),
                tps: report.tps(),
            }
        })
        .collect()
}

/// One row of Table 1 or the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// System under test.
    pub system: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Transactions per second of virtual time.
    pub tps: f64,
    /// Mean transaction latency, µs.
    pub latency_us: f64,
}

fn drive(
    system: &'static str,
    tm: &mut dyn TransactionalMemory,
    wl: &mut dyn Workload,
    n: u64,
) -> ThroughputRow {
    wl.setup(tm).expect("setup");
    let report: RunReport = run_workload(tm, wl, n).expect("run");
    wl.check(&*tm).expect("workload invariants");
    ThroughputRow {
        system,
        workload: wl.name(),
        tps: report.tps(),
        latency_us: report.latency().as_micros_f64(),
    }
}

/// Table 1: PERSEAS throughput on debit-credit and order-entry.
pub fn table1_perseas() -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    let clock = SimClock::new();
    let mut db = perseas_sim(clock);
    rows.push(drive("PERSEAS", &mut db, &mut DebitCredit::paper(), 20_000));
    let clock = SimClock::new();
    let mut db = perseas_sim(clock);
    rows.push(drive("PERSEAS", &mut db, &mut OrderEntry::paper(), 10_000));
    rows
}

/// The paper's §5.1 comparison: all six systems on the short synthetic,
/// debit-credit, and order-entry workloads.
pub fn compare_systems() -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for kind in SystemKind::all() {
        let n = kind.sample_txns();
        // Short synthetic transactions (16 bytes), as in the paper's
        // ">100 000 short transactions per second" claim.
        let mut tm = kind.build();
        rows.push(drive(
            kind.name(),
            tm.as_mut(),
            &mut Synthetic::new(8 << 20, 16, 7),
            n,
        ));
        let mut tm = kind.build();
        rows.push(drive(
            kind.name(),
            tm.as_mut(),
            &mut DebitCredit::paper(),
            n,
        ));
        let mut tm = kind.build();
        rows.push(drive(
            kind.name(),
            tm.as_mut(),
            &mut OrderEntry::paper(),
            (n / 2).max(100),
        ));
    }
    rows
}

/// One row of the protocol copy-count comparison (Figures 2 vs. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct CopiesRow {
    /// System under test.
    pub system: &'static str,
    /// Local memory copies per committed transaction.
    pub local_per_txn: f64,
    /// Remote writes per committed transaction.
    pub remote_per_txn: f64,
    /// Disk (or stable-store file) writes per committed transaction.
    pub disk_per_txn: f64,
}

/// Protocol work per transaction, measured over 1 000 debit-credit
/// transactions: PERSEAS does its three copies with zero disk accesses;
/// the WAL systems hit stable storage every commit.
pub fn copies_per_txn() -> Vec<CopiesRow> {
    SystemKind::all()
        .into_iter()
        .map(|kind| {
            let mut tm = kind.build();
            let mut wl = DebitCredit::paper();
            wl.setup(tm.as_mut()).expect("setup");
            let before: TxnStats = tm.stats();
            run_workload(tm.as_mut(), &mut wl, 1_000).expect("run");
            let d = tm.stats().since(&before);
            let n = d.commits.max(1) as f64;
            CopiesRow {
                system: kind.name(),
                local_per_txn: d.local_copies as f64 / n,
                remote_per_txn: d.remote_writes as f64 / n,
                disk_per_txn: (d.disk_sync_writes + d.disk_async_writes) as f64 / n,
            }
        })
        .collect()
}

/// One row of the group-commit ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCommitRow {
    /// System label.
    pub label: String,
    /// Debit-credit throughput.
    pub tps: f64,
}

/// §6: "PERSEAS outperforms even sophisticated optimisation methods (like
/// group commit) by an order of magnitude." RVM with increasing batch
/// sizes, against PERSEAS.
pub fn ablation_group_commit() -> Vec<GroupCommitRow> {
    let mut rows = Vec::new();
    for group in [1usize, 4, 16, 64, 256] {
        let clock = SimClock::new();
        let mut tm = WalSystem::rvm(clock, WalConfig::new().with_group_commit(group));
        let row = drive(
            "rvm",
            &mut tm,
            &mut DebitCredit::paper(),
            (100 * group as u64).clamp(2_000, 20_000),
        );
        rows.push(GroupCommitRow {
            label: format!("RVM, group commit {group}"),
            tps: row.tps,
        });
    }
    let clock = SimClock::new();
    let mut db = perseas_sim(clock);
    let row = drive("PERSEAS", &mut db, &mut DebitCredit::paper(), 20_000);
    rows.push(GroupCommitRow {
        label: "PERSEAS".into(),
        tps: row.tps,
    });
    rows
}

/// One row of the mirror-count ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorRow {
    /// Number of mirror nodes.
    pub mirrors: usize,
    /// Debit-credit throughput.
    pub tps: f64,
    /// Small (16-byte) transaction latency, µs.
    pub small_txn_us: f64,
}

/// Reliability has a price: each extra mirror adds one remote write per
/// protocol step. The paper runs with one mirror; this ablation quantifies
/// k = 1..4.
pub fn ablation_mirrors() -> Vec<MirrorRow> {
    (1..=4)
        .map(|k| {
            let clock = SimClock::new();
            let mut db = perseas_sim_with(
                clock.clone(),
                PerseasConfig::default(),
                k,
                SciParams::dolphin_1998(),
            );
            let row = drive("PERSEAS", &mut db, &mut DebitCredit::paper(), 10_000);

            let clock = SimClock::new();
            let mut db = perseas_sim_with(
                clock.clone(),
                PerseasConfig::default(),
                k,
                SciParams::dolphin_1998(),
            );
            let small = drive(
                "PERSEAS",
                &mut db,
                &mut Synthetic::new(8 << 20, 16, 7),
                10_000,
            );
            MirrorRow {
                mirrors: k,
                tps: row.tps,
                small_txn_us: small.latency_us,
            }
        })
        .collect()
}

/// One row of the `sci_memcpy` ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemcpyRow {
    /// Transaction size in bytes.
    pub size: usize,
    /// Latency with the aligned-chunk optimisation, µs.
    pub aligned_us: f64,
    /// Latency with naive stores, µs.
    pub naive_us: f64,
}

/// §4: the aligned-chunk `sci_memcpy` against naive stores, across
/// transaction sizes.
pub fn ablation_memcpy() -> Vec<MemcpyRow> {
    [48usize, 100, 256, 1 << 10, 4 << 10, 64 << 10]
        .into_iter()
        .map(|size| {
            let latency = |aligned: bool| {
                let clock = SimClock::new();
                let cfg = PerseasConfig::default().with_aligned_memcpy(aligned);
                let mut db = perseas_sim_with(clock.clone(), cfg, 1, SciParams::dolphin_1998());
                let mut wl = Synthetic::new(4 << 20, size, 11);
                wl.setup(&mut db).expect("setup");
                let n = (1_000usize.min((16 << 20) / size)).max(8) as u64;
                run_workload(&mut db, &mut wl, n)
                    .expect("run")
                    .latency()
                    .as_micros_f64()
            };
            MemcpyRow {
                size,
                aligned_us: latency(true),
                naive_us: latency(false),
            }
        })
        .collect()
}

/// One row of the technology-trend ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendRow {
    /// Calendar year being modelled.
    pub year: u32,
    /// PERSEAS small-transaction latency, µs.
    pub perseas_us: f64,
    /// RVM small-transaction latency, µs.
    pub rvm_us: f64,
    /// RVM latency / PERSEAS latency.
    pub ratio: f64,
}

/// §6: "the performance benefits of our approach will increase with
/// time" — networks improve 20–45 %/year, disks 10–20 %/year. Both systems
/// are re-run with hardware scaled forward year by year.
pub fn ablation_trend() -> Vec<TrendRow> {
    const NET_RATE: f64 = 1.325; // mid-point of 20-45 %/year
    const DISK_RATE: f64 = 1.15; // mid-point of 10-20 %/year
    const CPU_RATE: f64 = 1.4; // processor/memory improvement per year
    (0..=10)
        .map(|dy| {
            let net = NET_RATE.powi(dy);
            let disk = DISK_RATE.powi(dy);
            let cpu = CPU_RATE.powi(dy);
            let base_mem = perseas_simtime::MemCostModel::pentium_133();
            let mem = perseas_simtime::MemCostModel::new(
                ((base_mem.per_call_ns() as f64 / cpu).round() as u64).max(1),
                ((base_mem.bytes_per_us() as f64 * cpu).round() as u64).max(1),
            );

            let clock = SimClock::new();
            let mut db = perseas_sim_with(
                clock.clone(),
                PerseasConfig::default().with_mem_cost(mem),
                1,
                SciParams::scaled(net),
            );
            let p = drive(
                "PERSEAS",
                &mut db,
                &mut Synthetic::new(8 << 20, 16, 7),
                5_000,
            );

            let clock = SimClock::new();
            let store = DiskStore::with_params(clock.clone(), DiskParams::scaled(disk));
            let mut wal_cfg = WalConfig::new();
            wal_cfg.mem_cost = mem;
            let mut tm = WalSystem::with_store(store, wal_cfg);
            let r = drive("RVM", &mut tm, &mut Synthetic::new(8 << 20, 16, 7), 200);

            TrendRow {
                year: 1998 + dy as u32,
                perseas_us: p.latency_us,
                rvm_us: r.latency_us,
                ratio: r.latency_us / p.latency_us,
            }
        })
        .collect()
}

/// One row of the remote-memory-WAL comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteWalRow {
    /// Bytes modified per transaction.
    pub txn_size: usize,
    /// Remote-memory WAL (Ioannidis et al.) sustained throughput.
    pub remote_wal_tps: f64,
    /// PERSEAS sustained throughput.
    pub perseas_tps: f64,
    /// Latency of the first (buffer-absorbed) remote-WAL transaction, µs.
    pub remote_wal_first_us: f64,
    /// Worst remote-WAL transaction latency in the run (buffer-full
    /// stall), µs.
    pub remote_wal_worst_us: f64,
}

/// §2: the paper argues that logging to remote memory with asynchronous
/// disk writes (Ioannidis et al.) is fast only in bursts — "in case of
/// heavy load, write buffers will become full and the asynchronous write
/// operations will become synchronous", with commit throughput bounded by
/// disk bandwidth. PERSEAS has no disk in the loop at all.
pub fn ablation_remote_wal() -> Vec<RemoteWalRow> {
    use perseas_baselines::NetWalStore;

    [64usize, 512, 4 << 10, 16 << 10]
        .into_iter()
        .map(|txn_size| {
            // Remote-memory WAL under sustained load.
            let clock = SimClock::new();
            let store = NetWalStore::new(clock.clone());
            let mut tm =
                WalSystem::with_store(store, WalConfig::new().with_checkpoint_log_bytes(512 << 20));
            let mut wl = Synthetic::new(8 << 20, txn_size, 13);
            wl.setup(&mut tm).expect("setup");
            let sw = clock.stopwatch();
            wl.run_txn(&mut tm).expect("txn");
            let first = sw.elapsed();
            let mut worst = first;
            // Keep the total log volume under ~24 MB so the mirror node's
            // 64 MB export capacity comfortably holds the doubling log.
            let n = (4_000usize.min((24 << 20) / (txn_size + 52))).max(64) as u64;
            let total_sw = clock.stopwatch();
            for _ in 1..n {
                let sw = clock.stopwatch();
                wl.run_txn(&mut tm).expect("txn");
                worst = worst.max(sw.elapsed());
            }
            let remote_wal_tps = (n - 1) as f64 / total_sw.elapsed().as_secs_f64();

            // PERSEAS on the same workload.
            let clock = SimClock::new();
            let mut db = perseas_sim(clock);
            let mut wl = Synthetic::new(8 << 20, txn_size, 13);
            wl.setup(&mut db).expect("setup");
            let report = run_workload(&mut db, &mut wl, n).expect("run");

            RemoteWalRow {
                txn_size,
                remote_wal_tps,
                perseas_tps: report.tps(),
                remote_wal_first_us: first.as_micros_f64(),
                remote_wal_worst_us: worst.as_micros_f64(),
            }
        })
        .collect()
}

/// The file-system workload across all systems (the introduction's third
/// motivating domain). Each row is one system's new-metadata-op
/// throughput with invariants verified afterwards.
pub fn filesys_throughput() -> Vec<ThroughputRow> {
    use perseas_workloads::FileSys;
    SystemKind::all()
        .into_iter()
        .map(|kind| {
            let mut tm = kind.build();
            let mut wl = FileSys::paper();
            let n = kind.sample_txns().min(8_000);
            let row = drive(kind.name(), tm.as_mut(), &mut wl, n);
            ThroughputRow {
                system: row.system,
                workload: "filesys",
                tps: row.tps,
                latency_us: row.latency_us,
            }
        })
        .collect()
}

/// One row of the batching ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchRow {
    /// Ranges declared per transaction.
    pub ranges: usize,
    /// Latency with one set_range call per range, µs.
    pub per_range_us: f64,
    /// Latency with a single batched set_ranges call, µs.
    pub batched_us: f64,
}

/// Extension ablation: declaring all of a transaction's ranges in one
/// batched `set_ranges` call pushes the whole undo payload in a single
/// remote burst per mirror, amortising the per-burst SCI setup cost that
/// dominates small multi-range transactions (like debit-credit's four
/// ranges).
pub fn ablation_batch() -> Vec<BatchRow> {
    [2usize, 4, 8, 16]
        .into_iter()
        .map(|ranges| {
            let measure = |batched: bool| {
                let clock = SimClock::new();
                let mut db = perseas_sim(clock.clone());
                let r = db.malloc(1 << 20).expect("malloc");
                db.init_remote_db().expect("publish");
                let n = 2_000u64;
                let sw = clock.stopwatch();
                for i in 0..n {
                    db.begin_transaction().expect("begin");
                    let decls: Vec<_> = (0..ranges)
                        .map(|k| (r, ((i as usize * 131 + k * 4096) % (1 << 19)), 8))
                        .collect();
                    if batched {
                        db.set_ranges(&decls).expect("set_ranges");
                    } else {
                        for &(r, off, len) in &decls {
                            db.set_range(r, off, len).expect("set_range");
                        }
                    }
                    for &(r, off, _) in &decls {
                        db.write(r, off, &[7; 8]).expect("write");
                    }
                    db.commit_transaction().expect("commit");
                }
                sw.elapsed().as_micros_f64() / n as f64
            };
            BatchRow {
                ranges,
                per_range_us: measure(false),
                batched_us: measure(true),
            }
        })
        .collect()
}

/// One row of the database-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbSizeRow {
    /// Number of accounts in the debit-credit database.
    pub accounts: usize,
    /// Approximate database size in bytes.
    pub db_bytes: usize,
    /// Debit-credit throughput.
    pub tps: f64,
}

/// §5.1: "We have used various-sized databases, and in all cases the
/// performance of PERSEAS was almost constant, as long as the database
/// was smaller than the main memory size." Debit-credit at growing
/// account counts.
pub fn dbsize_sweep() -> Vec<DbSizeRow> {
    use perseas_workloads::DebitCreditScale;
    [1_000usize, 10_000, 50_000, 200_000]
        .into_iter()
        .map(|accounts| {
            let scale = DebitCreditScale {
                branches: (accounts / 10_000).max(1),
                tellers_per_branch: 10,
                accounts,
                history_slots: 4_096,
            };
            let clock = SimClock::new();
            let mut db = perseas_sim(clock);
            let mut wl = DebitCredit::new(scale, 0xB0B5);
            wl.setup(&mut db).expect("setup");
            let report = run_workload(&mut db, &mut wl, 10_000).expect("run");
            wl.check(&db).expect("invariants");
            DbSizeRow {
                accounts,
                db_bytes: accounts * 100
                    + scale.tellers() * 100
                    + scale.branches * 100
                    + scale.history_slots * 50,
                tps: report.tps(),
            }
        })
        .collect()
}

/// One row of the tail-latency experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TailLatencyRow {
    /// System under test.
    pub system: &'static str,
    /// Median transaction latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Worst observed latency, µs.
    pub max_us: f64,
}

/// Tail latency of debit-credit transactions across the systems. Mean
/// throughput hides the §2 pathology: systems that buffer disk writes
/// look fast on average but stall for tens of milliseconds when the
/// buffer drains; PERSEAS' worst case stays microseconds from its median.
pub fn tail_latency() -> Vec<TailLatencyRow> {
    use perseas_simtime::Histogram;
    SystemKind::all()
        .into_iter()
        .map(|kind| {
            let mut tm = kind.build();
            let mut wl = DebitCredit::paper();
            wl.setup(tm.as_mut()).expect("setup");
            let mut hist = Histogram::new();
            let n = kind.sample_txns().min(8_000);
            for _ in 0..n {
                let sw = tm.clock().stopwatch();
                wl.run_txn(tm.as_mut()).expect("txn");
                hist.record(sw.elapsed());
            }
            TailLatencyRow {
                system: kind.name(),
                p50_us: hist.percentile(50.0).as_micros_f64(),
                p99_us: hist.percentile(99.0).as_micros_f64(),
                max_us: hist.max().as_micros_f64(),
            }
        })
        .collect()
}

/// One row of the recovery-time experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryRow {
    /// Database size in bytes.
    pub db_bytes: usize,
    /// Virtual time to recover on a fresh workstation, ms.
    pub recover_ms: f64,
    /// Whether an in-flight transaction had to be rolled back.
    pub rolled_back: bool,
}

/// The paper's availability claim: recovery is one remote-to-local copy
/// per region and can start immediately on any workstation. Measures
/// recovery time against database size, with a transaction in flight at
/// the crash.
pub fn recovery_time() -> Vec<RecoveryRow> {
    [1usize << 20, 4 << 20, 16 << 20]
        .into_iter()
        .map(|db_bytes| {
            let clock = SimClock::new();
            let mut db = perseas_sim(clock);
            let r = db.malloc(db_bytes).expect("malloc");
            db.init_remote_db().expect("publish");
            // Crash mid-transaction.
            db.begin_transaction().expect("begin");
            db.set_range(r, 0, 4 << 10).expect("set_range");
            db.write(r, 0, &vec![7u8; 4 << 10]).expect("write");
            let node: NodeMemory = db.mirror_backend(0).expect("mirror").node().clone();
            db.crash();

            let recovery_clock = SimClock::new();
            let backend =
                SimRemote::with_parts(recovery_clock.clone(), node, SciParams::dolphin_1998());
            let sw = recovery_clock.stopwatch();
            let (_db2, report) = Perseas::recover_with_clock(
                backend,
                PerseasConfig::default(),
                recovery_clock.clone(),
            )
            .expect("recover");
            RecoveryRow {
                db_bytes,
                recover_ms: sw.elapsed().as_millis_f64(),
                rolled_back: report.rolled_back_txn.is_some(),
            }
        })
        .collect()
}

/// One phase of the degraded-commit experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverRow {
    /// Phase label: `healthy`, `failover`, or `degraded`.
    pub phase: &'static str,
    /// Transactions measured in this phase.
    pub txns: u64,
    /// Mean commit latency of the phase, µs.
    pub mean_latency_us: f64,
    /// Worst commit latency of the phase, µs.
    pub max_latency_us: f64,
}

/// Availability under mirror loss: a two-mirror database runs 16-byte
/// transactions, one mirror is killed mid-run, and the run continues in
/// degraded mode. The `failover` row is the single commit that detects
/// the failure — it pays the failed remote write plus the epoch fence —
/// bounding the mirror-failure → first-degraded-commit latency; the
/// `degraded` row shows steady-state cost on the survivor (one fewer
/// remote write than `healthy`).
pub fn commit_degraded() -> Vec<FailoverRow> {
    const TXNS_PER_PHASE: u64 = 5_000;
    let clock = SimClock::new();
    let mut db = perseas_sim_with(
        clock.clone(),
        PerseasConfig::default(),
        2,
        SciParams::dolphin_1998(),
    );
    let r = db.malloc(1 << 20).expect("malloc");
    db.init_remote_db().expect("publish");
    let len = 1usize << 20;

    let run_txn = |db: &mut Perseas<SimRemote>, i: u64| -> f64 {
        let at = (i as usize * 16) % (len - 16);
        let sw = clock.stopwatch();
        db.begin_transaction().expect("begin");
        db.set_range(r, at, 16).expect("set_range");
        db.write(r, at, &[i as u8; 16]).expect("write");
        db.commit_transaction().expect("commit");
        sw.elapsed().as_micros_f64()
    };
    let summarize = |phase: &'static str, lat: &[f64]| FailoverRow {
        phase,
        txns: lat.len() as u64,
        mean_latency_us: lat.iter().sum::<f64>() / lat.len() as f64,
        max_latency_us: lat.iter().cloned().fold(0.0, f64::max),
    };

    let healthy: Vec<f64> = (0..TXNS_PER_PHASE).map(|i| run_txn(&mut db, i)).collect();

    // Kill mirror 1 between transactions; the next commit detects the
    // loss, fences the survivor forward, and still commits.
    db.mirror_backend(1).expect("mirror").node().crash();
    let failover = [run_txn(&mut db, TXNS_PER_PHASE)];
    assert_eq!(db.healthy_mirror_count(), 1, "mirror loss detected");

    let degraded: Vec<f64> = (0..TXNS_PER_PHASE)
        .map(|i| run_txn(&mut db, TXNS_PER_PHASE + 1 + i))
        .collect();

    vec![
        summarize("healthy", &healthy),
        summarize("failover", &failover),
        summarize("degraded", &degraded),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_has_notch_at_64() {
        let rows = fig5_sci_latency();
        let at = |size: usize| {
            rows.iter()
                .find(|r| r.size == size)
                .expect("size present")
                .raw_us
        };
        assert_eq!(at(4), 2.5);
        assert!(at(64) < at(60));
        assert!(at(64) < at(68));
        // The optimised memcpy is never slower than the raw store.
        for r in &rows {
            assert!(r.memcpy_us <= r.raw_us + 1e-9, "size {}", r.size);
        }
    }

    #[test]
    fn fig6_small_txns_fast_large_txns_bounded() {
        let rows = fig6_txn_overhead();
        let small = rows.first().expect("4-byte row");
        assert!(small.latency_us < 10.0, "small txn {} us", small.latency_us);
        assert!(small.tps > 100_000.0);
        let big = rows.last().expect("1 MB row");
        assert!(
            big.latency_us < 100_000.0,
            "1 MB txn should be < 0.1 s, got {} us",
            big.latency_us
        );
        // Monotone non-decreasing latency in size.
        for w in rows.windows(2) {
            assert!(w[1].latency_us >= w[0].latency_us);
        }
    }

    #[test]
    fn copies_match_protocols() {
        let rows = copies_per_txn();
        let perseas = rows
            .iter()
            .find(|r| r.system == "PERSEAS")
            .expect("perseas row");
        assert_eq!(perseas.disk_per_txn, 0.0);
        assert!(perseas.remote_per_txn >= 4.0); // 4 set_ranges + data + commit
        let rvm = rows.iter().find(|r| r.system == "RVM (disk)").expect("rvm");
        assert!(rvm.disk_per_txn >= 1.0);
        assert_eq!(rvm.remote_per_txn, 0.0);
    }

    #[test]
    fn degraded_commits_are_cheaper_failover_commit_is_bounded() {
        let rows = commit_degraded();
        let by = |phase: &str| {
            *rows
                .iter()
                .find(|r| r.phase == phase)
                .unwrap_or_else(|| panic!("{phase} row"))
        };
        let (healthy, failover, degraded) = (by("healthy"), by("failover"), by("degraded"));
        // One fewer mirror means one fewer remote write per step.
        assert!(degraded.mean_latency_us < healthy.mean_latency_us);
        // The detection commit pays extra (fence + failed write) but stays
        // within an order of magnitude of a healthy commit.
        assert_eq!(failover.txns, 1);
        assert!(failover.max_latency_us < healthy.mean_latency_us * 10.0);
    }
}
