//! Constructors for the systems under test, each on its own virtual
//! clock, plus a tag enum the experiment drivers iterate over.

use perseas_baselines::{NetWalStore, VistaSystem, WalConfig, WalSystem};
use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;
use perseas_txn::TransactionalMemory;

/// A PERSEAS instance over one simulated SCI mirror, with the library and
/// the link sharing `clock`.
pub fn perseas_sim(clock: SimClock) -> Perseas<SimRemote> {
    perseas_sim_with(
        clock,
        PerseasConfig::default(),
        1,
        SciParams::dolphin_1998(),
    )
}

/// Like [`perseas_sim`] with explicit configuration, mirror count, and SCI
/// timing.
///
/// # Panics
///
/// Panics if `mirrors` is zero.
pub fn perseas_sim_with(
    clock: SimClock,
    cfg: PerseasConfig,
    mirrors: usize,
    params: SciParams,
) -> Perseas<SimRemote> {
    assert!(mirrors > 0, "at least one mirror");
    let backends: Vec<SimRemote> = (0..mirrors)
        .map(|i| {
            SimRemote::with_parts(
                clock.clone(),
                NodeMemory::new(format!("mirror-{i}")),
                params,
            )
        })
        .collect();
    Perseas::init_with_clock(backends, cfg, clock).expect("init PERSEAS")
}

/// The systems of the paper's comparison (its four published comparators
/// plus the Section 2 remote-memory WAL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// PERSEAS over one SCI mirror.
    Perseas,
    /// RVM: WAL on a 1998 magnetic disk, synchronous commit.
    Rvm,
    /// RVM with group commit (batch of 32).
    RvmGroupCommit,
    /// RVM with its files in the Rio reliable file cache.
    RioRvm,
    /// WAL with the log mirrored in remote memory and streamed to disk
    /// asynchronously (Ioannidis et al., paper Section 2).
    RemoteWal,
    /// Vista: undo-only transactions in reliable mapped memory.
    Vista,
}

impl SystemKind {
    /// All systems, slowest first.
    pub fn all() -> [SystemKind; 6] {
        [
            SystemKind::Rvm,
            SystemKind::RvmGroupCommit,
            SystemKind::RioRvm,
            SystemKind::RemoteWal,
            SystemKind::Vista,
            SystemKind::Perseas,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Perseas => "PERSEAS",
            SystemKind::Rvm => "RVM (disk)",
            SystemKind::RvmGroupCommit => "RVM + group commit",
            SystemKind::RioRvm => "Rio-RVM",
            SystemKind::RemoteWal => "Remote-memory WAL",
            SystemKind::Vista => "Vista",
        }
    }

    /// Builds the system on a fresh clock.
    pub fn build(self) -> Box<dyn TransactionalMemory> {
        let clock = SimClock::new();
        match self {
            SystemKind::Perseas => Box::new(perseas_sim(clock)),
            SystemKind::Rvm => Box::new(WalSystem::rvm(clock, WalConfig::new())),
            SystemKind::RvmGroupCommit => Box::new(WalSystem::rvm(
                clock,
                WalConfig::new().with_group_commit(32),
            )),
            SystemKind::RioRvm => Box::new(WalSystem::rio_rvm(clock, WalConfig::new())),
            SystemKind::RemoteWal => Box::new(WalSystem::with_store(
                NetWalStore::new(clock),
                WalConfig::new(),
            )),
            SystemKind::Vista => Box::new(VistaSystem::new(clock)),
        }
    }

    /// How many transactions to run for a statistically stable virtual
    /// measurement without burning host time on the slow systems.
    pub fn sample_txns(self) -> u64 {
        match self {
            SystemKind::Rvm => 300,
            SystemKind::RvmGroupCommit => 2_000,
            SystemKind::RioRvm => 5_000,
            SystemKind::RemoteWal => 10_000,
            SystemKind::Vista | SystemKind::Perseas => 20_000,
        }
    }
}
