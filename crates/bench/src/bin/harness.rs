//! The experiment harness: regenerates every figure and table of the
//! paper's evaluation on the virtual-time simulation.
//!
//! ```text
//! cargo run --release -p perseas-bench --bin harness -- all
//! cargo run --release -p perseas-bench --bin harness -- fig5 fig6 table1
//! ```
//!
//! Each experiment prints a human-readable table and, when `--csv DIR` is
//! given, writes a CSV with the same rows plus a ready-to-run gnuplot
//! script for the figure-shaped experiments (`gnuplot results/fig6.gp`).

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use perseas_bench::{
    ablation_batch, ablation_group_commit, ablation_memcpy, ablation_mirrors, ablation_remote_wal,
    ablation_trend, commit_degraded, compare_systems, copies_per_txn, dbsize_sweep,
    fig5_sci_latency, fig6_txn_overhead, filesys_throughput, recovery_time, table1_perseas,
    tail_latency, verify_claims,
};

const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig5", "SCI remote-write latency vs. data size (Figure 5)"),
    (
        "fig6",
        "transaction overhead vs. transaction size (Figure 6)",
    ),
    (
        "table1",
        "PERSEAS debit-credit / order-entry throughput (Table 1)",
    ),
    ("compare", "all six systems on all workloads (Section 5.1)"),
    (
        "copies",
        "protocol copies and IO per transaction (Figures 2 & 3)",
    ),
    (
        "ablation-group-commit",
        "RVM group commit vs. PERSEAS (Section 6)",
    ),
    ("ablation-mirrors", "PERSEAS with k = 1..4 mirrors"),
    (
        "ablation-memcpy",
        "aligned-chunk sci_memcpy on/off (Section 4)",
    ),
    (
        "ablation-trend",
        "disk vs. network technology trend (Section 6)",
    ),
    (
        "ablation-remote-wal",
        "remote-memory WAL (Ioannidis et al.) vs. PERSEAS (Section 2)",
    ),
    ("tail-latency", "p50/p99/max transaction latency per system"),
    (
        "dbsize",
        "PERSEAS throughput vs database size (Section 5.1)",
    ),
    (
        "ablation-batch",
        "batched set_ranges vs per-range declarations (extension)",
    ),
    (
        "filesys",
        "file-system metadata workload across all systems",
    ),
    ("recovery", "recovery time vs. database size (availability)"),
    (
        "failover",
        "degraded commits: 2 mirrors -> 1 killed mid-run (availability)",
    ),
    (
        "check",
        "verify every quantitative paper claim (pass/fail table)",
    ),
];

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut csv_dir: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if selected.iter().any(|s| s == "all") {
        selected = EXPERIMENTS.iter().map(|(n, _)| n.to_string()).collect();
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for name in &selected {
        if !EXPERIMENTS.iter().any(|(n, _)| n == name) {
            eprintln!("unknown experiment '{name}'");
            usage();
            return ExitCode::FAILURE;
        }
        run(name, csv_dir.as_deref());
    }
    ExitCode::SUCCESS
}

fn usage() {
    eprintln!("usage: harness [--csv DIR] <experiment>... | all\n");
    eprintln!("experiments:");
    for (name, desc) in EXPERIMENTS {
        eprintln!("  {name:<24} {desc}");
    }
}

fn save_csv(dir: Option<&std::path::Path>, name: &str, header: &str, rows: &[String]) {
    let Some(dir) = dir else { return };
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    if let Err(e) = fs::write(&path, out) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("  -> {}", path.display());
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Writes a gnuplot script next to an experiment's CSV.
fn save_plot(dir: Option<&std::path::Path>, name: &str, script: &str) {
    let Some(dir) = dir else { return };
    let path = dir.join(format!("{name}.gp"));
    if let Err(e) = fs::write(&path, script) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("  -> {} (gnuplot {})", path.display(), path.display());
    }
}

fn run(name: &str, csv: Option<&std::path::Path>) {
    match name {
        "fig5" => {
            banner("Figure 5: SCI remote write latency (one-way, first word at buffer word 0)");
            println!(
                "{:>8} {:>12} {:>14}",
                "bytes", "raw (us)", "sci_memcpy (us)"
            );
            let rows = fig5_sci_latency();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!("{:>8} {:>12.3} {:>14.3}", r.size, r.raw_us, r.memcpy_us);
                csv_rows.push(format!("{},{:.3},{:.3}", r.size, r.raw_us, r.memcpy_us));
            }
            save_csv(csv, "fig5", "size_bytes,raw_us,memcpy_us", &csv_rows);
            save_plot(
                csv,
                "fig5",
                "set datafile separator ','\n\
                 set title 'Figure 5: SCI remote write latency'\n\
                 set xlabel 'data size (bytes)'\n\
                 set ylabel 'latency (us)'\n\
                 set key top left\n\
                 set terminal png size 900,600\n\
                 set output 'fig5.png'\n\
                 plot 'fig5.csv' skip 1 using 1:2 with linespoints title 'raw store', \\\n\
                      'fig5.csv' skip 1 using 1:3 with linespoints title 'sci_memcpy'\n",
            );
        }
        "fig6" => {
            banner("Figure 6: PERSEAS transaction overhead vs transaction size");
            println!("{:>10} {:>14} {:>14}", "bytes", "latency (us)", "txns/sec");
            let rows = fig6_txn_overhead();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!("{:>10} {:>14.2} {:>14.0}", r.size, r.latency_us, r.tps);
                csv_rows.push(format!("{},{:.2},{:.0}", r.size, r.latency_us, r.tps));
            }
            save_csv(csv, "fig6", "size_bytes,latency_us,tps", &csv_rows);
            save_plot(
                csv,
                "fig6",
                "set datafile separator ','\n\
                 set title 'Figure 6: transaction overhead vs size'\n\
                 set xlabel 'transaction size (bytes)'\n\
                 set ylabel 'overhead (us)'\n\
                 set logscale xy\n\
                 set terminal png size 900,600\n\
                 set output 'fig6.png'\n\
                 plot 'fig6.csv' skip 1 using 1:2 with linespoints title 'PERSEAS'\n",
            );
        }
        "table1" => {
            banner("Table 1: PERSEAS throughput");
            println!(
                "{:<16} {:>14} {:>14}",
                "benchmark", "txns/sec", "latency (us)"
            );
            let rows = table1_perseas();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!("{:<16} {:>14.0} {:>14.2}", r.workload, r.tps, r.latency_us);
                csv_rows.push(format!("{},{:.0},{:.2}", r.workload, r.tps, r.latency_us));
            }
            save_csv(csv, "table1", "workload,tps,latency_us", &csv_rows);
        }
        "compare" => {
            banner("Section 5.1: six systems, three workloads");
            println!(
                "{:<20} {:<14} {:>14} {:>14}",
                "system", "workload", "txns/sec", "latency (us)"
            );
            let rows = compare_systems();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:<20} {:<14} {:>14.0} {:>14.2}",
                    r.system, r.workload, r.tps, r.latency_us
                );
                csv_rows.push(format!(
                    "{},{},{:.0},{:.2}",
                    r.system, r.workload, r.tps, r.latency_us
                ));
            }
            save_csv(csv, "compare", "system,workload,tps,latency_us", &csv_rows);
        }
        "copies" => {
            banner("Figures 2 & 3: protocol work per debit-credit transaction");
            println!(
                "{:<20} {:>12} {:>14} {:>12}",
                "system", "local/txn", "remote/txn", "stable-IO/txn"
            );
            let rows = copies_per_txn();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:<20} {:>12.2} {:>14.2} {:>12.2}",
                    r.system, r.local_per_txn, r.remote_per_txn, r.disk_per_txn
                );
                csv_rows.push(format!(
                    "{},{:.2},{:.2},{:.2}",
                    r.system, r.local_per_txn, r.remote_per_txn, r.disk_per_txn
                ));
            }
            save_csv(
                csv,
                "copies",
                "system,local_per_txn,remote_per_txn,stable_io_per_txn",
                &csv_rows,
            );
        }
        "ablation-group-commit" => {
            banner("Section 6 ablation: group commit vs PERSEAS (debit-credit)");
            println!("{:<28} {:>14}", "system", "txns/sec");
            let rows = ablation_group_commit();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!("{:<28} {:>14.0}", r.label, r.tps);
                csv_rows.push(format!("{},{:.0}", r.label, r.tps));
            }
            save_csv(csv, "ablation_group_commit", "system,tps", &csv_rows);
        }
        "ablation-mirrors" => {
            banner("Ablation: mirror count (reliability vs throughput)");
            println!(
                "{:>8} {:>18} {:>22}",
                "mirrors", "debit-credit tps", "16B txn latency (us)"
            );
            let rows = ablation_mirrors();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!("{:>8} {:>18.0} {:>22.2}", r.mirrors, r.tps, r.small_txn_us);
                csv_rows.push(format!("{},{:.0},{:.2}", r.mirrors, r.tps, r.small_txn_us));
            }
            save_csv(
                csv,
                "ablation_mirrors",
                "mirrors,tps,small_txn_us",
                &csv_rows,
            );
        }
        "ablation-memcpy" => {
            banner("Section 4 ablation: aligned-chunk sci_memcpy on/off");
            println!(
                "{:>10} {:>14} {:>14} {:>10}",
                "txn bytes", "aligned (us)", "naive (us)", "speedup"
            );
            let rows = ablation_memcpy();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:>10} {:>14.2} {:>14.2} {:>9.2}x",
                    r.size,
                    r.aligned_us,
                    r.naive_us,
                    r.naive_us / r.aligned_us
                );
                csv_rows.push(format!("{},{:.2},{:.2}", r.size, r.aligned_us, r.naive_us));
            }
            save_csv(
                csv,
                "ablation_memcpy",
                "size,aligned_us,naive_us",
                &csv_rows,
            );
        }
        "ablation-trend" => {
            banner("Section 6: technology trend (net 32.5%/yr vs disk 15%/yr)");
            println!(
                "{:>6} {:>16} {:>14} {:>10}",
                "year", "PERSEAS (us)", "RVM (us)", "ratio"
            );
            let rows = ablation_trend();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:>6} {:>16.2} {:>14.0} {:>9.0}x",
                    r.year, r.perseas_us, r.rvm_us, r.ratio
                );
                csv_rows.push(format!(
                    "{},{:.2},{:.0},{:.0}",
                    r.year, r.perseas_us, r.rvm_us, r.ratio
                ));
            }
            save_csv(
                csv,
                "ablation_trend",
                "year,perseas_us,rvm_us,ratio",
                &csv_rows,
            );
            save_plot(
                csv,
                "ablation_trend",
                "set datafile separator ','\n\
                 set title 'Technology trend: RVM/PERSEAS latency ratio'\n\
                 set xlabel 'year'\n\
                 set ylabel 'ratio'\n\
                 set terminal png size 900,600\n\
                 set output 'ablation_trend.png'\n\
                 plot 'ablation_trend.csv' skip 1 using 1:4 with linespoints title 'RVM / PERSEAS'\n",
            );
        }
        "ablation-remote-wal" => {
            banner("Section 2: remote-memory WAL vs PERSEAS (sustained synthetic load)");
            println!(
                "{:>10} {:>16} {:>14} {:>14} {:>14}",
                "txn bytes", "remote-WAL tps", "PERSEAS tps", "first (us)", "worst (us)"
            );
            let rows = ablation_remote_wal();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:>10} {:>16.0} {:>14.0} {:>14.2} {:>14.0}",
                    r.txn_size,
                    r.remote_wal_tps,
                    r.perseas_tps,
                    r.remote_wal_first_us,
                    r.remote_wal_worst_us
                );
                csv_rows.push(format!(
                    "{},{:.0},{:.0},{:.2},{:.0}",
                    r.txn_size,
                    r.remote_wal_tps,
                    r.perseas_tps,
                    r.remote_wal_first_us,
                    r.remote_wal_worst_us
                ));
            }
            save_csv(
                csv,
                "ablation_remote_wal",
                "txn_size,remote_wal_tps,perseas_tps,first_us,worst_us",
                &csv_rows,
            );
        }
        "tail-latency" => {
            banner("Tail latency per system (debit-credit)");
            println!(
                "{:<20} {:>12} {:>12} {:>14}",
                "system", "p50 (us)", "p99 (us)", "max (us)"
            );
            let rows = tail_latency();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:<20} {:>12.1} {:>12.1} {:>14.0}",
                    r.system, r.p50_us, r.p99_us, r.max_us
                );
                csv_rows.push(format!(
                    "{},{:.1},{:.1},{:.0}",
                    r.system, r.p50_us, r.p99_us, r.max_us
                ));
            }
            save_csv(
                csv,
                "tail_latency",
                "system,p50_us,p99_us,max_us",
                &csv_rows,
            );
        }
        "dbsize" => {
            banner("Section 5.1: PERSEAS throughput vs database size (debit-credit)");
            println!("{:>12} {:>12} {:>14}", "accounts", "DB (KB)", "txns/sec");
            let rows = dbsize_sweep();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:>12} {:>12} {:>14.0}",
                    r.accounts,
                    r.db_bytes >> 10,
                    r.tps
                );
                csv_rows.push(format!("{},{},{:.0}", r.accounts, r.db_bytes, r.tps));
            }
            save_csv(csv, "dbsize", "accounts,db_bytes,tps", &csv_rows);
        }
        "recovery" => {
            banner("Availability: recovery time on a fresh workstation");
            println!(
                "{:>10} {:>16} {:>12}",
                "DB (MB)", "recover (ms)", "rolled back"
            );
            let rows = recovery_time();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:>10} {:>16.2} {:>12}",
                    r.db_bytes >> 20,
                    r.recover_ms,
                    r.rolled_back
                );
                csv_rows.push(format!(
                    "{},{:.2},{}",
                    r.db_bytes, r.recover_ms, r.rolled_back
                ));
            }
            save_csv(
                csv,
                "recovery",
                "db_bytes,recover_ms,rolled_back",
                &csv_rows,
            );
        }
        "failover" => {
            banner("Availability: degraded commits after a mirror loss (2 mirrors -> 1)");
            println!(
                "{:<10} {:>8} {:>12} {:>12}",
                "phase", "txns", "mean (us)", "max (us)"
            );
            let rows = commit_degraded();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:<10} {:>8} {:>12.2} {:>12.2}",
                    r.phase, r.txns, r.mean_latency_us, r.max_latency_us
                );
                csv_rows.push(format!(
                    "{},{},{:.2},{:.2}",
                    r.phase, r.txns, r.mean_latency_us, r.max_latency_us
                ));
            }
            save_csv(
                csv,
                "failover",
                "phase,txns,mean_latency_us,max_latency_us",
                &csv_rows,
            );
        }
        "ablation-batch" => {
            banner("Extension: batched set_ranges (one undo burst per transaction)");
            println!(
                "{:>8} {:>16} {:>14} {:>10}",
                "ranges", "per-range (us)", "batched (us)", "speedup"
            );
            let rows = ablation_batch();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!(
                    "{:>8} {:>16.2} {:>14.2} {:>9.2}x",
                    r.ranges,
                    r.per_range_us,
                    r.batched_us,
                    r.per_range_us / r.batched_us
                );
                csv_rows.push(format!(
                    "{},{:.2},{:.2}",
                    r.ranges, r.per_range_us, r.batched_us
                ));
            }
            save_csv(
                csv,
                "ablation_batch",
                "ranges,per_range_us,batched_us",
                &csv_rows,
            );
        }
        "filesys" => {
            banner("File-system metadata workload (create/append/rename/unlink)");
            println!("{:<20} {:>14} {:>14}", "system", "ops/sec", "latency (us)");
            let rows = filesys_throughput();
            let mut csv_rows = Vec::new();
            for r in &rows {
                println!("{:<20} {:>14.0} {:>14.2}", r.system, r.tps, r.latency_us);
                csv_rows.push(format!("{},{:.0},{:.2}", r.system, r.tps, r.latency_us));
            }
            save_csv(csv, "filesys", "system,tps,latency_us", &csv_rows);
        }
        "check" => {
            banner("Paper claims, re-verified against fresh measurements");
            let rows = verify_claims();
            let mut csv_rows = Vec::new();
            let mut failures = 0;
            for r in &rows {
                let mark = if r.pass { "PASS" } else { "FAIL" };
                if !r.pass {
                    failures += 1;
                }
                println!("[{mark}] ({:<12}) {}", r.source, r.claim);
                println!("        measured: {}", r.measured);
                csv_rows.push(format!(
                    "{},\"{}\",\"{}\",{}",
                    r.source, r.claim, r.measured, r.pass
                ));
            }
            println!(
                "\n{} of {} claims verified",
                rows.len() - failures,
                rows.len()
            );
            save_csv(csv, "claims", "source,claim,measured,pass", &csv_rows);
        }
        _ => unreachable!("validated above"),
    }
}
