//! The claims checker: every quantitative claim the paper makes,
//! re-asserted against freshly measured numbers. `harness -- check` turns
//! the reproduction's credibility into a pass/fail table.

use crate::experiments::{
    ablation_group_commit, ablation_trend, compare_systems, copies_per_txn, fig5_sci_latency,
    fig6_txn_overhead,
};

/// One verified claim.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimRow {
    /// Where in the paper the claim comes from.
    pub source: &'static str,
    /// The claim, paraphrased.
    pub claim: &'static str,
    /// The measured evidence.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub pass: bool,
}

fn row(source: &'static str, claim: &'static str, measured: String, pass: bool) -> ClaimRow {
    ClaimRow {
        source,
        claim,
        measured,
        pass,
    }
}

/// Measures and verifies every headline claim. Runs the cheap experiments
/// directly; expect roughly a minute of wall-clock time.
pub fn verify_claims() -> Vec<ClaimRow> {
    let mut rows = Vec::new();

    // --- Figure 5 / Section 4 ---
    let fig5 = fig5_sci_latency();
    let at = |size: usize| {
        fig5.iter()
            .find(|r| r.size == size)
            .expect("size in sweep")
            .raw_us
    };
    rows.push(row(
        "§4",
        "a 4-byte remote store costs 2.5 us one-way",
        format!("{:.3} us", at(4)),
        (at(4) - 2.5).abs() < 1e-9,
    ));
    rows.push(row(
        "§4 / Fig. 5",
        "whole 64-byte aligned stores are the cheapest way to move >32 bytes",
        format!(
            "64B = {:.2} us vs 60B = {:.2} us, 68B = {:.2} us",
            at(64),
            at(60),
            at(68)
        ),
        at(64) < at(60) && at(64) < at(68),
    ));
    rows.push(row(
        "§4",
        "the optimised sci_memcpy never loses to the naive store",
        "checked across the whole 4-200 B sweep".into(),
        fig5.iter().all(|r| r.memcpy_us <= r.raw_us + 1e-9),
    ));

    // --- Figure 6 / Section 5.1 ---
    let fig6 = fig6_txn_overhead();
    let small = fig6.first().expect("4-byte row");
    let big = fig6.last().expect("1 MB row");
    rows.push(row(
        "§5.1 / Fig. 6",
        "very small transactions complete in ~8 us",
        format!("{:.2} us at 4 B", small.latency_us),
        small.latency_us <= 8.5,
    ));
    rows.push(row(
        "§5.1",
        "throughput exceeds 125 000 short transactions per second",
        format!("{:.0} txns/s", small.tps),
        small.tps > 125_000.0,
    ));
    rows.push(row(
        "§5.1 / Fig. 6",
        "a 1 MB transaction completes in under a tenth of a second",
        format!("{:.1} ms", big.latency_us / 1_000.0),
        big.latency_us < 100_000.0,
    ));

    // --- Section 5.1 comparison ---
    let cmp = compare_systems();
    let tps = |system: &str, workload: &str| {
        cmp.iter()
            .find(|r| r.system == system && r.workload == workload)
            .expect("row present")
            .tps
    };
    let perseas = tps("PERSEAS", "synthetic");
    let rvm = tps("RVM (disk)", "synthetic");
    rows.push(row(
        "§5.1",
        "PERSEAS outperforms RVM by orders of magnitude",
        format!("{:.0}x on short synthetic", perseas / rvm),
        perseas / rvm > 100.0,
    ));
    let rio = tps("Rio-RVM", "synthetic");
    rows.push(row(
        "§5.1",
        "PERSEAS clearly outperforms Rio-RVM",
        format!("{:.1}x on short synthetic", perseas / rio),
        perseas / rio > 2.0,
    ));
    let vista = tps("Vista", "debit-credit");
    let perseas_dc = tps("PERSEAS", "debit-credit");
    let ratio = vista / perseas_dc;
    rows.push(row(
        "§5.1",
        "PERSEAS performs very close to Vista (the fastest system)",
        format!("Vista/PERSEAS = {ratio:.2} on debit-credit"),
        (0.33..=3.0).contains(&ratio),
    ));

    // --- Figures 2 & 3 ---
    let copies = copies_per_txn();
    let perseas_row = copies
        .iter()
        .find(|r| r.system == "PERSEAS")
        .expect("perseas row");
    let rvm_row = copies
        .iter()
        .find(|r| r.system == "RVM (disk)")
        .expect("rvm row");
    rows.push(row(
        "Fig. 3",
        "PERSEAS commits with zero disk accesses",
        format!(
            "{:.2} stable-store IOs per transaction",
            perseas_row.disk_per_txn
        ),
        perseas_row.disk_per_txn == 0.0,
    ));
    rows.push(row(
        "Fig. 2",
        "the WAL protocol hits stable storage on every commit",
        format!(
            "{:.2} stable-store IOs per transaction",
            rvm_row.disk_per_txn
        ),
        rvm_row.disk_per_txn >= 1.0,
    ));

    // --- Section 6 ---
    let gc = ablation_group_commit();
    let best_gc = gc
        .iter()
        .filter(|r| r.label.starts_with("RVM"))
        .map(|r| r.tps)
        .fold(0.0f64, f64::max);
    let perseas_gc = gc
        .iter()
        .find(|r| r.label == "PERSEAS")
        .expect("perseas row")
        .tps;
    rows.push(row(
        "§6",
        "PERSEAS outperforms group commit (at realistic batch sizes, by ~an order)",
        format!("{:.1}x over the best batched RVM", perseas_gc / best_gc),
        perseas_gc > best_gc * 2.0,
    ));
    let trend = ablation_trend();
    rows.push(row(
        "§6",
        "the performance benefits increase with time",
        format!(
            "ratio {:.0}x (1998) -> {:.0}x (2008)",
            trend.first().expect("1998").ratio,
            trend.last().expect("2008").ratio
        ),
        trend.last().expect("2008").ratio > trend.first().expect("1998").ratio * 2.0,
    ));

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_passes() {
        let rows = verify_claims();
        assert!(rows.len() >= 12);
        for r in &rows {
            assert!(
                r.pass,
                "claim failed: [{}] {} — {}",
                r.source, r.claim, r.measured
            );
        }
    }
}
