//! Experiment library: every figure and table of the paper's evaluation
//! as a pure function returning data rows, shared by the `harness` binary,
//! the integration tests, and the Criterion benches.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig5_sci_latency`] | Figure 5 — SCI remote-write latency vs. size |
//! | [`fig6_txn_overhead`] | Figure 6 — transaction overhead vs. size |
//! | [`table1_perseas`] | Table 1 — PERSEAS debit-credit / order-entry |
//! | [`compare_systems`] | §5.1 — all six systems on all workloads |
//! | [`copies_per_txn`] | Figures 2 & 3 — copies/IO per transaction |
//! | [`ablation_group_commit`] | §6 — group commit vs. PERSEAS |
//! | [`ablation_mirrors`] | multi-mirror overhead (k = 1..4) |
//! | [`ablation_memcpy`] | §4 — aligned-chunk `sci_memcpy` on/off |
//! | [`ablation_trend`] | §6 — disk vs. network technology trend |
//! | [`commit_degraded`] | availability — degraded commits after mirror loss |

mod claims;
mod experiments;
mod report;
mod systems;

pub use claims::{verify_claims, ClaimRow};
pub use experiments::*;
pub use report::{json_mode, BenchReport};
pub use systems::{perseas_sim, perseas_sim_with, SystemKind};
