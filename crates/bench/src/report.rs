//! `BENCH_<name>.json` emission for the CI bench-regression gate.
//!
//! Benches call [`BenchReport::write_if_json_mode`] at the end of their
//! run; the file is only produced when the bench was invoked with
//! `--json` (`cargo bench -p perseas-bench -- --json`), so default runs
//! stay artifact-free. `tools/bench_gate` compares the emitted files
//! against the reviewed copies in `results/baselines/`; only metrics
//! named in a baseline's `gate` object can fail the build, and the gate
//! is read from the baseline so a PR cannot loosen it from the bench
//! side.

use perseas_obs::Json;

/// Whether `--json` was passed on the command line.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Builder for one bench's `BENCH_<name>.json` report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    bench: String,
    metrics: Vec<(String, Json)>,
    gate: Vec<(String, Json)>,
}

impl BenchReport {
    /// Starts a report for the bench called `bench`.
    pub fn new(bench: impl Into<String>) -> BenchReport {
        BenchReport {
            bench: bench.into(),
            metrics: Vec::new(),
            gate: Vec::new(),
        }
    }

    /// Records one flat metric.
    #[must_use]
    pub fn metric(mut self, name: &str, value: f64) -> Self {
        self.metrics.push((name.to_string(), Json::Num(value)));
        self
    }

    /// Gates an already-recorded metric as lower-is-better.
    #[must_use]
    pub fn gate_lower(self, name: &str, tolerance_pct: f64) -> Self {
        self.gate(name, "lower", tolerance_pct)
    }

    /// Gates an already-recorded metric as higher-is-better.
    #[must_use]
    pub fn gate_higher(self, name: &str, tolerance_pct: f64) -> Self {
        self.gate(name, "higher", tolerance_pct)
    }

    /// Gates an already-recorded metric as a duration: lower-is-better
    /// with the gate tool's default tolerance for the class.
    #[must_use]
    pub fn gate_duration(mut self, name: &str) -> Self {
        assert!(
            self.metrics.iter().any(|(n, _)| n == name),
            "gated metric {name} must be recorded first"
        );
        self.gate.push((
            name.to_string(),
            Json::object(vec![("class", Json::str("duration"))]),
        ));
        self
    }

    fn gate(mut self, name: &str, better: &str, tolerance_pct: f64) -> Self {
        assert!(
            self.metrics.iter().any(|(n, _)| n == name),
            "gated metric {name} must be recorded first"
        );
        self.gate.push((
            name.to_string(),
            Json::object(vec![
                ("better", Json::str(better)),
                ("tolerance_pct", Json::Num(tolerance_pct)),
            ]),
        ));
        self
    }

    /// The report as a JSON document.
    pub fn render(&self) -> String {
        let doc = Json::Object(vec![
            ("bench".to_string(), Json::str(&self.bench)),
            ("metrics".to_string(), Json::Object(self.metrics.clone())),
            ("gate".to_string(), Json::Object(self.gate.clone())),
        ]);
        format!("{doc}\n")
    }

    /// Writes `results/BENCH_<bench>.json` when running in `--json` mode
    /// and returns the path written.
    pub fn write_if_json_mode(&self) -> Option<String> {
        if !json_mode() {
            return None;
        }
        let path = format!(
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_{}.json"),
            self.bench
        );
        std::fs::write(&path, self.render()).expect("write bench json");
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_the_parser() {
        let report = BenchReport::new("demo")
            .metric("virtual_us", 123.5)
            .metric("speedup", 4.0)
            .gate_lower("virtual_us", 15.0)
            .gate_higher("speedup", 25.0);
        let doc = Json::parse(&report.render()).expect("valid json");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("demo"));
        let metrics = doc.get("metrics").and_then(Json::as_object).unwrap();
        assert_eq!(metrics.len(), 2);
        let gate = doc.get("gate").and_then(Json::as_object).unwrap();
        let vt = &gate.iter().find(|(k, _)| k == "virtual_us").unwrap().1;
        assert_eq!(vt.get("better").and_then(Json::as_str), Some("lower"));
        assert_eq!(vt.get("tolerance_pct").and_then(Json::as_f64), Some(15.0));
    }

    #[test]
    #[should_panic(expected = "recorded first")]
    fn gating_an_unknown_metric_panics() {
        let _ = BenchReport::new("demo").gate_lower("ghost", 10.0);
    }
}
