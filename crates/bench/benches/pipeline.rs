//! Wall-clock benefit of the pipelined TCP transport: 8 transactions of
//! 8 small ranges committed over a server that delays every response by
//! 1 ms (the latency-injection knob, standing in for network RTT).
//!
//! The synchronous transport pays the full round trip per remote write —
//! `ops x latency` per commit. The pipelined transport posts the same
//! writes back-to-back and pays the latency only at the ack barriers
//! before and after the commit record, so the same workload collapses to
//! a few round trips per transaction. Writes `results/pipeline.csv` and
//! fails if pipelining is not at least 3x faster. With `--json` it also
//! emits `results/BENCH_pipeline.json` for the CI bench-regression gate;
//! the per-mode request counts come from the transport's own client
//! metrics and are protocol-determined, so the gate on them is exact.

use std::time::{Duration, Instant};

use perseas_bench::BenchReport;
use perseas_core::{Perseas, PerseasConfig, RegionId};
use perseas_obs::Registry;
use perseas_rnram::server::Server;
use perseas_rnram::TcpRemote;

const TXNS: usize = 8;
const RANGES: usize = 8;
const RANGE_BYTES: usize = 16;
const LATENCY: Duration = Duration::from_millis(1);

fn build(
    pipelined: bool,
) -> (
    Perseas<TcpRemote>,
    RegionId,
    perseas_rnram::server::ServerHandle,
    Registry,
) {
    let server = Server::bind("pipeline-bench", "127.0.0.1:0")
        .expect("bind")
        .with_request_latency(LATENCY)
        .start();
    let mut conn = if pipelined {
        TcpRemote::connect_pipelined(server.addr()).expect("connect")
    } else {
        TcpRemote::connect(server.addr()).expect("connect")
    };
    let registry = Registry::new();
    conn.set_metrics(&registry);
    let mut db = Perseas::init(vec![conn], PerseasConfig::default()).expect("init");
    let r = db.malloc(TXNS * RANGES * RANGE_BYTES).expect("malloc");
    db.init_remote_db().expect("publish");
    (db, r, server, registry)
}

/// A counter's current value in `registry` (0 if never incremented).
fn counter(registry: &Registry, name: &str) -> f64 {
    perseas_obs::parse_exposition(&registry.render())
        .expect("own exposition parses")
        .into_iter()
        .find(|s| s.name == name)
        .map_or(0.0, |s| s.value)
}

/// Requests put on the wire so far (awaited round trips + posted writes).
fn requests(registry: &Registry) -> f64 {
    counter(registry, "perseas_client_ops_total") + counter(registry, "perseas_client_posted_total")
}

/// Commits the workload and returns the measured wall time in
/// milliseconds plus the requests/bytes the commits put on the wire.
/// Setup (allocation, publish) stays outside both windows.
fn run(pipelined: bool) -> (f64, f64, f64) {
    let (mut db, r, server, registry) = build(pipelined);
    let before_requests = requests(&registry);
    let before_bytes = counter(&registry, "perseas_client_bytes_total");
    let started = Instant::now();
    for t in 0..TXNS {
        db.begin_transaction().expect("begin");
        for i in 0..RANGES {
            let off = (t * RANGES + i) * RANGE_BYTES;
            db.set_range(r, off, RANGE_BYTES).expect("set_range");
            db.write(r, off, &[t as u8 + 1; RANGE_BYTES])
                .expect("write");
        }
        db.commit_transaction().expect("commit");
    }
    let elapsed = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(db.last_committed(), TXNS as u64, "all txns durable");
    let wire_requests = requests(&registry) - before_requests;
    let wire_bytes = counter(&registry, "perseas_client_bytes_total") - before_bytes;
    server.shutdown();
    (elapsed, wire_requests, wire_bytes)
}

fn main() {
    let (sync_ms, sync_requests, sync_bytes) = run(false);
    let (pipe_ms, pipe_requests, pipe_bytes) = run(true);
    let ratio = sync_ms / pipe_ms;

    let row = |mode: &str, ms: f64| {
        format!(
            "{mode},{TXNS},{RANGES},{RANGE_BYTES},{},{ms:.3},{:.1}",
            LATENCY.as_millis(),
            TXNS as f64 / (ms / 1e3)
        )
    };
    let csv = format!(
        "mode,txns,ranges_per_txn,bytes_per_range,latency_ms,total_ms,txns_per_sec\n{}\n{}\n",
        row("sync", sync_ms),
        row("pipelined", pipe_ms)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/pipeline.csv");
    std::fs::write(path, &csv).expect("write csv");

    println!(
        "pipeline: {TXNS} txns x {RANGES} ranges at {:?}/request — \
         sync {sync_ms:.1} ms vs pipelined {pipe_ms:.1} ms ({ratio:.2}x), \
         {sync_requests:.0}/{pipe_requests:.0} requests -> {path}",
        LATENCY
    );
    if let Some(json) = BenchReport::new("pipeline")
        .metric("sync_ms", sync_ms)
        .metric("pipelined_ms", pipe_ms)
        .metric("speedup", ratio)
        .metric("sync_requests", sync_requests)
        .metric("pipelined_requests", pipe_requests)
        .metric("sync_bytes", sync_bytes)
        .metric("pipelined_bytes", pipe_bytes)
        .gate_lower("sync_requests", 15.0)
        .gate_lower("pipelined_requests", 15.0)
        .gate_lower("pipelined_bytes", 15.0)
        .gate_higher("speedup", 40.0)
        .write_if_json_mode()
    {
        println!("pipeline: wrote {json}");
    }
    assert!(
        ratio >= 3.0,
        "pipelining must be at least 3x faster at {:?} request latency \
         (got {ratio:.2}x: sync {sync_ms:.1} ms, pipelined {pipe_ms:.1} ms)",
        LATENCY
    );
}
