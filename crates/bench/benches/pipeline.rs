//! Wall-clock benefit of the pipelined TCP transport: 8 transactions of
//! 8 small ranges committed over a server that delays every response by
//! 1 ms (the latency-injection knob, standing in for network RTT).
//!
//! The synchronous transport pays the full round trip per remote write —
//! `ops x latency` per commit. The pipelined transport posts the same
//! writes back-to-back and pays the latency only at the ack barriers
//! before and after the commit record, so the same workload collapses to
//! a few round trips per transaction. Writes `results/pipeline.csv` and
//! fails if pipelining is not at least 3x faster.

use std::time::{Duration, Instant};

use perseas_core::{Perseas, PerseasConfig, RegionId};
use perseas_rnram::server::Server;
use perseas_rnram::TcpRemote;

const TXNS: usize = 8;
const RANGES: usize = 8;
const RANGE_BYTES: usize = 16;
const LATENCY: Duration = Duration::from_millis(1);

fn build(
    pipelined: bool,
) -> (
    Perseas<TcpRemote>,
    RegionId,
    perseas_rnram::server::ServerHandle,
) {
    let server = Server::bind("pipeline-bench", "127.0.0.1:0")
        .expect("bind")
        .with_request_latency(LATENCY)
        .start();
    let conn = if pipelined {
        TcpRemote::connect_pipelined(server.addr()).expect("connect")
    } else {
        TcpRemote::connect(server.addr()).expect("connect")
    };
    let mut db = Perseas::init(vec![conn], PerseasConfig::default()).expect("init");
    let r = db.malloc(TXNS * RANGES * RANGE_BYTES).expect("malloc");
    db.init_remote_db().expect("publish");
    (db, r, server)
}

/// Commits the workload and returns the measured wall time in
/// milliseconds. Setup (allocation, publish) stays outside the window.
fn run(pipelined: bool) -> f64 {
    let (mut db, r, server) = build(pipelined);
    let started = Instant::now();
    for t in 0..TXNS {
        db.begin_transaction().expect("begin");
        for i in 0..RANGES {
            let off = (t * RANGES + i) * RANGE_BYTES;
            db.set_range(r, off, RANGE_BYTES).expect("set_range");
            db.write(r, off, &[t as u8 + 1; RANGE_BYTES])
                .expect("write");
        }
        db.commit_transaction().expect("commit");
    }
    let elapsed = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(db.last_committed(), TXNS as u64, "all txns durable");
    server.shutdown();
    elapsed
}

fn main() {
    let sync_ms = run(false);
    let pipe_ms = run(true);
    let ratio = sync_ms / pipe_ms;

    let row = |mode: &str, ms: f64| {
        format!(
            "{mode},{TXNS},{RANGES},{RANGE_BYTES},{},{ms:.3},{:.1}",
            LATENCY.as_millis(),
            TXNS as f64 / (ms / 1e3)
        )
    };
    let csv = format!(
        "mode,txns,ranges_per_txn,bytes_per_range,latency_ms,total_ms,txns_per_sec\n{}\n{}\n",
        row("sync", sync_ms),
        row("pipelined", pipe_ms)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/pipeline.csv");
    std::fs::write(path, &csv).expect("write csv");

    println!(
        "pipeline: {TXNS} txns x {RANGES} ranges at {:?}/request — \
         sync {sync_ms:.1} ms vs pipelined {pipe_ms:.1} ms ({ratio:.2}x) -> {path}",
        LATENCY
    );
    assert!(
        ratio >= 3.0,
        "pipelining must be at least 3x faster at {:?} request latency \
         (got {ratio:.2}x: sync {sync_ms:.1} ms, pipelined {pipe_ms:.1} ms)",
        LATENCY
    );
}
