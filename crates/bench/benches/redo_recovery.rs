//! Redo restart time vs. log length: recovery must scale with the live
//! log tail, not with total history.
//!
//! Two arms over a growing committed history of 1 KB transactions:
//!
//! * `nosnap` — never snapshots; recovery replays the whole log, so its
//!   replay cost grows linearly with history length.
//! * `snap` — takes one snapshot 16 transactions before the crash;
//!   recovery replays only the fixed-size tail, so its cost stays flat
//!   no matter how long the history grew ("instant restart").
//!
//! All times are virtual (simulated SCI link + modeled memcpy), so every
//! number is deterministic and gateable. Writes
//! `results/redo_recovery.csv`; with `--json` also emits
//! `results/BENCH_redo_recovery.json` for the CI bench-regression gate.

use perseas_bench::BenchReport;
use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

const DB_BYTES: usize = 256 << 10;
const WRITE: usize = 1 << 10;
const TAIL: u64 = 16;

struct Arm {
    replayed_records: usize,
    replay_us: f64,
    recover_us: f64,
}

fn run_arm(history: u64, snapshot: bool) -> Arm {
    let cfg = PerseasConfig::default()
        .with_redo(true)
        .with_redo_log(256 << 10, 16);
    let clock = SimClock::new();
    let name = format!("rrec-{}-{history}", if snapshot { "snap" } else { "nosnap" });
    let backend = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new(&name),
        SciParams::dolphin_1998(),
    );
    let node = backend.node().clone();
    let mut db = Perseas::init_with_clock(vec![backend], cfg, clock).expect("init");
    let r = db.malloc(DB_BYTES).expect("malloc");
    db.init_remote_db().expect("publish");

    let fill = vec![0xAB; WRITE];
    for i in 0..history {
        let off = (i as usize * (WRITE + 512)) % (DB_BYTES - WRITE);
        db.begin_transaction().expect("begin");
        db.set_range(r, off, WRITE).expect("declare");
        db.write(r, off, &fill).expect("write");
        db.commit_transaction().expect("commit");
        if snapshot && i == history - TAIL - 1 {
            db.redo_snapshot().expect("snapshot");
        }
    }
    db.crash();

    // A recovering workstation attaches with its own clock: the whole
    // restart (metadata scan, region rebuild, log replay) is timed.
    let rclock = SimClock::new();
    let rbackend = SimRemote::with_parts(rclock.clone(), node, SciParams::dolphin_1998());
    let sw = rclock.stopwatch();
    let (db2, report) =
        Perseas::recover(rbackend, PerseasConfig::default().with_redo(true)).expect("recover");
    let recover_us = sw.elapsed().as_micros_f64();
    assert!(db2.last_committed() >= history, "history durable");
    Arm {
        replayed_records: report.replayed_records,
        replay_us: report.replay_virtual_nanos as f64 / 1e3,
        recover_us,
    }
}

fn main() {
    let histories = [64u64, 128, 256, 512];
    let mut csv = String::from("log_txns,arm,replayed_records,replay_us,recover_us\n");
    let mut snap_64 = 0.0f64;
    let mut snap_512 = 0.0f64;
    let mut nosnap_512 = 0.0f64;
    let mut snap_records = Vec::new();
    for &history in &histories {
        let nosnap = run_arm(history, false);
        let snap = run_arm(history, true);
        for (arm, a) in [("nosnap", &nosnap), ("snap", &snap)] {
            csv.push_str(&format!(
                "{history},{arm},{},{:.3},{:.3}\n",
                a.replayed_records, a.replay_us, a.recover_us
            ));
        }
        println!(
            "redo_recovery: {history:>4} txns -> nosnap replay {:>4} recs {:>9.1} us \
             (restart {:>9.1} us), snap replay {:>3} recs {:>7.1} us (restart {:>9.1} us)",
            nosnap.replayed_records,
            nosnap.replay_us,
            nosnap.recover_us,
            snap.replayed_records,
            snap.replay_us,
            snap.recover_us,
        );
        assert_eq!(
            nosnap.replayed_records, history as usize,
            "without snapshots the whole history replays"
        );
        assert_eq!(
            snap.replayed_records, TAIL as usize,
            "with a snapshot only the tail replays"
        );
        snap_records.push(snap.replayed_records);
        if history == 64 {
            snap_64 = snap.recover_us;
        }
        if history == 512 {
            snap_512 = snap.recover_us;
            nosnap_512 = nosnap.recover_us;
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/redo_recovery.csv");
    std::fs::write(path, &csv).expect("write csv");
    println!("redo_recovery: wrote {path}");

    // Flatness: an 8x longer history must not move snapshotted restart
    // time by more than 10% (the tail is the same 16 transactions).
    let flatness = snap_512 / snap_64;
    // And the snapshot must actually pay off against full replay.
    let payoff = nosnap_512 / snap_512;
    if let Some(json) = BenchReport::new("redo_recovery")
        .metric("recover_us_snap_512", snap_512)
        .metric("recover_us_nosnap_512", nosnap_512)
        .metric("snap_flatness_512_over_64", flatness)
        .metric("snap_payoff_512", payoff)
        .gate_duration("recover_us_snap_512")
        .gate_duration("recover_us_nosnap_512")
        .gate_lower("snap_flatness_512_over_64", 10.0)
        .gate_higher("snap_payoff_512", 20.0)
        .write_if_json_mode()
    {
        println!("redo_recovery: wrote {json}");
    }
    assert!(
        flatness <= 1.10,
        "snapshotted restart must be flat in history length (got {flatness:.3}x)"
    );
    assert!(
        payoff >= 1.2,
        "snapshot must beat full replay at 512 txns (got {payoff:.2}x)"
    );
}
