//! Virtual-time throughput of group commit: 8 independent, prepared
//! 1 KiB transactions committed one-by-one versus through a single
//! `commit_group`.
//!
//! Preparation (`prepare_t`) ships each transaction's undo records and
//! data to the mirror and costs the same in both arms, so the measured
//! window brackets the commit stage — the per-transaction record
//! fan-out that grouping amortizes into one vectored write. Writes
//! `results/group_commit.csv` and fails if grouping is not at least 2x
//! faster. With `--json` it also emits `results/BENCH_group_commit.json`
//! for the CI bench-regression gate — commit times here are virtual, so
//! the gate on them is deterministic.

use perseas_bench::BenchReport;
use perseas_core::{Perseas, PerseasConfig, RegionId, TxnToken};
use perseas_rnram::SimRemote;

const TXNS: usize = 8;
const TXN_BYTES: usize = 1024;

fn build() -> (Perseas<SimRemote>, RegionId, perseas_simtime::SimClock) {
    let backend = SimRemote::new("mirror");
    let clock = backend.clock().clone();
    let mut db = Perseas::init(
        vec![backend],
        PerseasConfig::default().with_concurrent(true),
    )
    .expect("init");
    let r = db.malloc(TXNS * TXN_BYTES).expect("malloc");
    db.init_remote_db().expect("publish");
    (db, r, clock)
}

/// Opens, writes, and prepares the workload's TXNS transactions — the
/// part both arms pay identically, outside the measured window.
fn prepare_all(db: &mut Perseas<SimRemote>, r: RegionId) -> Vec<TxnToken> {
    (0..TXNS)
        .map(|i| {
            let t = db.begin_concurrent().expect("begin");
            db.set_range_t(t, r, i * TXN_BYTES, TXN_BYTES).expect("set");
            db.write_t(t, r, i * TXN_BYTES, &[i as u8 + 1; TXN_BYTES])
                .expect("write");
            db.prepare_t(t).expect("prepare");
            t
        })
        .collect()
}

/// Returns `(prepare_us, commit_us)` in virtual time.
fn run(grouped: bool) -> (f64, f64) {
    let (mut db, r, clock) = build();
    let sw = clock.stopwatch();
    let tokens = prepare_all(&mut db, r);
    let prepare_us = sw.elapsed().as_micros_f64();

    let sw = clock.stopwatch();
    if grouped {
        db.commit_group(&tokens).expect("group commit");
    } else {
        for t in tokens {
            db.commit_t(t).expect("commit");
        }
    }
    let commit_us = sw.elapsed().as_micros_f64();
    assert_eq!(db.last_committed(), TXNS as u64, "all members durable");
    (prepare_us, commit_us)
}

fn main() {
    let (serial_prep, serial_us) = run(false);
    let (grouped_prep, grouped_us) = run(true);
    let ratio = serial_us / grouped_us;

    let row = |mode: &str, prep: f64, us: f64| {
        format!(
            "{mode},{TXNS},{TXN_BYTES},{prep:.3},{us:.3},{:.1}",
            TXNS as f64 / (us / 1e6)
        )
    };
    let csv = format!(
        "mode,txns,bytes_per_txn,prepare_us,commit_us,commit_txns_per_sec\n{}\n{}\n",
        row("serial", serial_prep, serial_us),
        row("grouped", grouped_prep, grouped_us)
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/group_commit.csv"
    );
    std::fs::write(path, &csv).expect("write csv");

    println!(
        "group_commit: prepare {serial_prep:.1}/{grouped_prep:.1} us, \
         commit serial {serial_us:.1} us vs grouped {grouped_us:.1} us \
         ({ratio:.2}x) -> {path}"
    );
    if let Some(json) = BenchReport::new("group_commit")
        .metric("serial_prepare_us", serial_prep)
        .metric("grouped_prepare_us", grouped_prep)
        .metric("serial_commit_us", serial_us)
        .metric("grouped_commit_us", grouped_us)
        .metric("speedup", ratio)
        .gate_lower("serial_commit_us", 15.0)
        .gate_lower("grouped_commit_us", 15.0)
        .gate_higher("speedup", 25.0)
        .write_if_json_mode()
    {
        println!("group_commit: wrote {json}");
    }
    assert!(
        ratio >= 2.0,
        "group commit must be at least 2x faster for {TXNS} independent \
         {TXN_BYTES}-byte txns (got {ratio:.2}x)"
    );
}
