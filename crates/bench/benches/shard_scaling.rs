//! Virtual-time scaling of the sharded database.
//!
//! Two arms:
//!
//! 1. **Scaling** — the same batch of single-shard transactions spread
//!    round-robin over K shards, each shard's mirror set on its own
//!    virtual clock (the paper's model of K workstation sets operating
//!    in parallel). The batch's makespan is the *maximum* clock advance
//!    across shards, so K balanced shards should finish in ~1/K the
//!    time: single-shard commits need zero cross-shard coordination.
//! 2. **Cross-shard cost** — two shards on one shared clock; a
//!    transaction writing the same total payload split across both
//!    shards is timed against one writing it to a single shard. The
//!    cross-shard commit pays prepare on both shards plus the intent,
//!    decision-record, and commit fan-out writes, and must stay within
//!    2.5x of the coordination-free path.
//!
//! Writes `results/shard_scaling.csv`; with `--json` also emits
//! `results/BENCH_shard_scaling.json` for the CI bench-regression gate.
//! All times are virtual, so the gate is deterministic.

use perseas_bench::BenchReport;
use perseas_core::{PerseasConfig, RegionId, ShardedPerseas};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

const TXNS: usize = 64;
const TXN_BYTES: usize = 256;
const MIRRORS: usize = 2;
const COST_SAMPLES: usize = 16;

/// A K-shard database whose shard `s` charges all its work (mirrors
/// included) to `clocks[s]`.
fn build(k: usize, clocks: &[SimClock]) -> (ShardedPerseas<SimRemote>, Vec<RegionId>) {
    let backends = (0..k)
        .map(|s| {
            let shard = (0..MIRRORS)
                .map(|m| {
                    SimRemote::with_parts(
                        clocks[s].clone(),
                        NodeMemory::new(format!("s{s}m{m}")),
                        SciParams::dolphin_1998(),
                    )
                })
                .collect();
            (shard, clocks[s].clone())
        })
        .collect();
    let mut db =
        ShardedPerseas::init_with_clocks(backends, PerseasConfig::default()).expect("init");
    let regions = (0..k)
        .map(|_| db.malloc(TXNS * TXN_BYTES).expect("malloc"))
        .collect();
    db.init_remote_db().expect("publish");
    (db, regions)
}

/// Runs TXNS single-shard transactions round-robin over K shards and
/// returns the makespan in virtual microseconds: the largest clock
/// advance any one shard's workstation set saw.
fn run_scaling(k: usize) -> f64 {
    let clocks: Vec<SimClock> = (0..k).map(|_| SimClock::new()).collect();
    let (mut db, regions) = build(k, &clocks);
    let watches: Vec<_> = clocks.iter().map(SimClock::stopwatch).collect();
    for i in 0..TXNS {
        let r = regions[i % k];
        let off = (i / k) * TXN_BYTES;
        let g = db.begin_global().expect("begin");
        db.set_range_g(g, r, off, TXN_BYTES).expect("set");
        db.write_g(g, r, off, &[i as u8 + 1; TXN_BYTES])
            .expect("write");
        db.commit_g(g).expect("commit");
    }
    let committed: u64 = (0..k).map(|s| db.shard(s).last_committed()).sum();
    assert_eq!(committed, TXNS as u64, "every transaction durable");
    watches
        .iter()
        .map(|w| w.elapsed().as_micros_f64())
        .fold(0.0, f64::max)
}

/// Average full-transaction latency (begin through commit, virtual us)
/// writing `TXN_BYTES` total: all to one shard, or split across two.
fn run_cost() -> (f64, f64) {
    let clock = SimClock::new();
    let clocks = vec![clock.clone(), clock.clone()];
    let (mut db, regions) = build(2, &clocks);

    let mut measure = |parts: &[(RegionId, usize)]| -> f64 {
        let sw = clock.stopwatch();
        for i in 0..COST_SAMPLES {
            let g = db.begin_global().expect("begin");
            for &(r, bytes) in parts {
                let off = i * TXN_BYTES;
                db.set_range_g(g, r, off, bytes).expect("set");
                db.write_g(g, r, off, &[i as u8 + 1; TXN_BYTES][..bytes])
                    .expect("write");
            }
            db.commit_g(g).expect("commit");
        }
        sw.elapsed().as_micros_f64() / COST_SAMPLES as f64
    };

    let single = measure(&[(regions[0], TXN_BYTES)]);
    let cross = measure(&[(regions[0], TXN_BYTES / 2), (regions[1], TXN_BYTES / 2)]);
    (single, cross)
}

fn main() {
    let t1 = run_scaling(1);
    let t2 = run_scaling(2);
    let t4 = run_scaling(4);
    let scaling_k2 = t1 / t2;
    let scaling_k4 = t1 / t4;
    let (single_us, cross_us) = run_cost();
    let cross_ratio = cross_us / single_us;

    let csv = format!(
        "shards,txns,bytes_per_txn,makespan_us,txns_per_sec,speedup_vs_k1\n\
         1,{TXNS},{TXN_BYTES},{t1:.3},{:.1},1.00\n\
         2,{TXNS},{TXN_BYTES},{t2:.3},{:.1},{scaling_k2:.2}\n\
         4,{TXNS},{TXN_BYTES},{t4:.3},{:.1},{scaling_k4:.2}\n\
         cross_shard,{COST_SAMPLES},{TXN_BYTES},{cross_us:.3},,{cross_ratio:.2}x_single\n",
        TXNS as f64 / (t1 / 1e6),
        TXNS as f64 / (t2 / 1e6),
        TXNS as f64 / (t4 / 1e6),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/shard_scaling.csv"
    );
    std::fs::write(path, &csv).expect("write csv");

    println!(
        "shard_scaling: makespan K=1 {t1:.1} us, K=2 {t2:.1} us ({scaling_k2:.2}x), \
         K=4 {t4:.1} us ({scaling_k4:.2}x); commit single {single_us:.1} us vs \
         cross-shard {cross_us:.1} us ({cross_ratio:.2}x) -> {path}"
    );
    if let Some(json) = BenchReport::new("shard_scaling")
        .metric("makespan_k1_us", t1)
        .metric("makespan_k2_us", t2)
        .metric("makespan_k4_us", t4)
        .metric("scaling_ratio_k2", scaling_k2)
        .metric("scaling_ratio_k4", scaling_k4)
        .metric("single_shard_commit_us", single_us)
        .metric("cross_shard_commit_us", cross_us)
        .metric("cross_shard_ratio", cross_ratio)
        .gate_higher("scaling_ratio_k2", 10.0)
        .gate_lower("cross_shard_ratio", 10.0)
        .write_if_json_mode()
    {
        println!("shard_scaling: wrote {json}");
    }
    assert!(
        scaling_k2 >= 1.7,
        "two shards must scale single-shard throughput at least 1.7x (got {scaling_k2:.2}x)"
    );
    assert!(
        cross_ratio <= 2.5,
        "a cross-shard commit must cost at most 2.5x a single-shard one (got {cross_ratio:.2}x)"
    );
}
