//! Session-multiplexing soak and scaling bench (ISSUE 8): simulated
//! clients as logical sessions over a fixed pool of shared sockets
//! against the event-driven server, at 100 / 1 000 / 10 000 sessions.
//!
//! Every session posts one write and confirms it at a flush barrier; the
//! per-session wall latencies yield p50/p95/p99. Ack accounting is exact:
//! the number of confirmed posts must equal the number issued (a lost or
//! duplicated ack would either leave a window dirty or trip the client's
//! FIFO routing as a protocol error), and the server's session gauge must
//! account for every open session. With default admission limits this
//! well-behaved load must never be refused, so the refusal counters are
//! asserted zero and reported.
//!
//! The scaling claim is the fan-in: at 2 000 sessions the multiplexed
//! server carries `sessions / sockets` logical clients per connection —
//! each connection costing it one queue, not one thread — while the
//! thread-per-connection baseline (`start_threaded`, measured here over
//! the same socket count for an equal-memory footprint) carries exactly
//! one. Writes `results/mux_scaling.csv`; with `--json` also emits
//! `results/BENCH_mux_scaling.json` for the CI bench gate, which gates
//! the deterministic fan-in ratio.

use std::sync::Arc;
use std::time::{Duration, Instant};

use perseas_bench::BenchReport;
use perseas_obs::Registry;
use perseas_rnram::server::Server;
use perseas_rnram::{RemoteMemory, SessionMux, TcpRemote};

const SCALES: [usize; 3] = [100, 1_000, 10_000];
const FANIN_SESSIONS: usize = 2_000;
const SOCKETS: usize = 16;
const WORKERS: usize = 8;

/// The value of an unlabelled counter/gauge in `registry`.
fn metric(registry: &Registry, name: &str) -> f64 {
    perseas_obs::parse_exposition(&registry.render())
        .expect("own exposition parses")
        .into_iter()
        .find(|s| s.name == name)
        .map_or(0.0, |s| s.value)
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

struct ScaleRun {
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    refusals: f64,
}

/// Soaks `sessions` logical clients over `SOCKETS` shared sockets: every
/// session stays open for the whole run (the server's gauge must read
/// `sessions` at the end), posts one marked write, and confirms it.
fn run_scale(sessions: usize) -> ScaleRun {
    let registry = Registry::new();
    let server = Server::bind("mux-scale", "127.0.0.1:0")
        .expect("bind")
        .with_metrics(&registry)
        .start();
    let muxes: Arc<Vec<SessionMux>> = Arc::new(
        (0..SOCKETS)
            .map(|_| SessionMux::connect(server.addr()).expect("connect"))
            .collect(),
    );
    let mut scratch = muxes[0].session();
    let seg = scratch.remote_malloc(WORKERS * 8, 7).expect("malloc");
    drop(scratch);

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let muxes = Arc::clone(&muxes);
            let quota = sessions / WORKERS + usize::from(w < sessions % WORKERS);
            std::thread::spawn(move || {
                let mut open = Vec::with_capacity(quota);
                let mut lat_us = Vec::with_capacity(quota);
                let mut confirmed = 0usize;
                for i in 0..quota {
                    let mut s = muxes[(w + i * WORKERS) % SOCKETS].session();
                    let t0 = Instant::now();
                    s.remote_write(seg.id, w * 8, &[i as u8; 8]).expect("post");
                    let stats = s.flush().expect("barrier");
                    lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    confirmed += stats.posted;
                    assert_eq!(s.in_flight(), 0, "ack lost: window still dirty");
                    open.push(s); // stays open for the whole soak
                }
                (open, lat_us, confirmed)
            })
        })
        .collect();

    let mut all_open = Vec::with_capacity(sessions);
    let mut lat_us = Vec::with_capacity(sessions);
    let mut confirmed = 0usize;
    for h in handles {
        let (open, lats, conf) = h.join().expect("worker");
        all_open.extend(open);
        lat_us.extend(lats);
        confirmed += conf;
    }
    // Zero lost or duplicated acks: one barrier-confirmed post per
    // session, exactly.
    assert_eq!(confirmed, sessions, "confirmed acks != posted writes");

    // The server accounts for every open session (scratch already
    // closed). Its gauge moves just after the responses, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let live = metric(&registry, "perseas_server_sessions");
        if live == sessions as f64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server tracks {live} of {sessions} sessions"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let refusals = metric(&registry, "perseas_server_admission_refusals_total");
    assert_eq!(refusals, 0.0, "well-behaved soak must never be refused");

    drop(all_open);
    server.shutdown();

    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ScaleRun {
        p50_us: percentile(&lat_us, 0.50),
        p95_us: percentile(&lat_us, 0.95),
        p99_us: percentile(&lat_us, 0.99),
        refusals,
    }
}

/// The thread-per-connection baseline at an equal-memory footprint: the
/// same `SOCKETS` connections against the legacy threaded server, each
/// carrying exactly one session (that is the architecture under
/// comparison, not a tuning choice).
fn run_threaded_baseline() -> f64 {
    let server = Server::bind("threaded-base", "127.0.0.1:0")
        .expect("bind")
        .start_threaded();
    let mut conns: Vec<TcpRemote> = (0..SOCKETS)
        .map(|_| TcpRemote::connect(server.addr()).expect("connect"))
        .collect();
    let seg = conns[0].remote_malloc(SOCKETS * 8, 7).expect("malloc");
    let mut lat_us = Vec::new();
    for (i, c) in conns.iter_mut().enumerate() {
        let t0 = Instant::now();
        c.remote_write(seg.id, i * 8, &[i as u8; 8]).expect("write");
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    server.shutdown();
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    percentile(&lat_us, 0.50)
}

fn main() {
    let runs: Vec<(usize, ScaleRun)> = SCALES.iter().map(|&n| (n, run_scale(n))).collect();
    let threaded_p50 = run_threaded_baseline();

    // Deterministic fan-in at the 2 000-session point: sessions per
    // socket on the mux server vs. the 1 session/socket the
    // thread-per-connection server supports by construction.
    let fanin_mux = FANIN_SESSIONS as f64 / SOCKETS as f64;
    let fanin_ratio = fanin_mux / 1.0;
    assert!(
        fanin_ratio >= 3.0,
        "mux must sustain at least 3x the sessions of thread-per-connection \
         at equal socket count (got {fanin_ratio:.1}x)"
    );

    let mut csv = String::from("sessions,sockets,p50_us,p95_us,p99_us,admission_refusals\n");
    for (n, r) in &runs {
        csv.push_str(&format!(
            "{n},{SOCKETS},{:.1},{:.1},{:.1},{}\n",
            r.p50_us, r.p95_us, r.p99_us, r.refusals
        ));
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/mux_scaling.csv");
    std::fs::write(path, &csv).expect("write csv");

    for (n, r) in &runs {
        println!(
            "mux_scaling: {n:>6} sessions over {SOCKETS} sockets — \
             p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, {} refusals",
            r.p50_us, r.p95_us, r.p99_us, r.refusals
        );
    }
    println!(
        "mux_scaling: fan-in {fanin_mux:.0} sessions/socket vs 1 for \
         thread-per-connection ({fanin_ratio:.0}x, threaded p50 {threaded_p50:.0} us) -> {path}"
    );

    let mut report = BenchReport::new("mux_scaling");
    for (n, r) in &runs {
        report = report
            .metric(&format!("p50_us_{n}"), r.p50_us)
            .metric(&format!("p95_us_{n}"), r.p95_us)
            .metric(&format!("p99_us_{n}"), r.p99_us)
            .metric(&format!("admission_refusals_{n}"), r.refusals);
    }
    if let Some(json) = report
        .metric("fanin_sessions", FANIN_SESSIONS as f64)
        .metric("fanin_per_socket", fanin_mux)
        .metric("fanin_ratio_vs_threaded", fanin_ratio)
        .metric("threaded_p50_us", threaded_p50)
        .gate_higher("fanin_ratio_vs_threaded", 20.0)
        .write_if_json_mode()
    {
        println!("mux_scaling: wrote {json}");
    }
}
