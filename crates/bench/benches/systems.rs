//! Wall-clock cost of driving one debit-credit transaction through each
//! system's full protocol (simulation machinery included) — a regression
//! guard for the whole stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use perseas_bench::SystemKind;
use perseas_workloads::{DebitCredit, Workload};

fn bench_systems(c: &mut Criterion) {
    let mut g = c.benchmark_group("debit_credit_txn");
    g.throughput(Throughput::Elements(1));
    for kind in SystemKind::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let mut tm = kind.build();
                let mut wl = DebitCredit::paper();
                wl.setup(tm.as_mut()).expect("setup");
                b.iter(|| {
                    wl.run_txn(tm.as_mut()).expect("txn");
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_systems
}
criterion_main!(benches);
