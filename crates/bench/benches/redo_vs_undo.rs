//! REDO vs UNDO commit path, head-to-head on the transaction size sweep.
//!
//! One transaction per round writes `size` bytes at a rotating offset of
//! a 1 MB database — the paper's Figure 6 sweep, restricted to the
//! write-heavy shape where the commit path dominates. The undo arm runs
//! the batched vectored pipeline (the strongest undo configuration); the
//! redo arm appends after-images to the segmented log. Both run on the
//! simulated SCI link, so latency is virtual time and byte counts are
//! exact: the numbers are deterministic and the CI gate is strict.
//!
//! The claim under test: the undo path ships every payload byte twice
//! (before-image + data) while the redo path ships it once (after-image
//! only), so on write-heavy mixes redo commits fewer hot-path bytes —
//! with the advantage growing toward 2x as transactions grow.
//!
//! Writes `results/redo_vs_undo.csv`; with `--json` also emits
//! `results/BENCH_redo_vs_undo.json` for the CI bench-regression gate.

use perseas_bench::BenchReport;
use perseas_core::{Perseas, PerseasConfig, RegionId};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

const DB_BYTES: usize = 1 << 20;
const TXNS: u64 = 128;

struct Arm {
    commit_us: f64,
    bytes_per_txn: f64,
}

fn build(name: &str, cfg: PerseasConfig) -> (Perseas<SimRemote>, RegionId, SimClock) {
    let clock = SimClock::new();
    let backend = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new(name),
        SciParams::dolphin_1998(),
    );
    let mut db = Perseas::init_with_clock(vec![backend], cfg, clock.clone()).expect("init");
    let r = db.malloc(DB_BYTES).expect("malloc");
    db.init_remote_db().expect("publish");
    (db, r, clock)
}

fn run_arm(size: usize, redo: bool) -> Arm {
    let cfg = if redo {
        // The log holds the whole run, so no snapshot interrupts the
        // hot-path measurement (maintenance costs are redo_recovery's
        // subject).
        PerseasConfig::default().with_redo(true).with_redo_log(4 << 20, 8)
    } else {
        PerseasConfig::default().with_batched_commit(true)
    };
    let name = format!("rvu-{}-{size}", if redo { "redo" } else { "undo" });
    let (mut db, r, clock) = build(&name, cfg);
    let fill = vec![(size % 251) as u8; size];

    let bytes0 = db.stats().remote_write_bytes;
    let sw = clock.stopwatch();
    let mut off = 0usize;
    for _ in 0..TXNS {
        off = (off + size + 4096) % (DB_BYTES - size);
        db.begin_transaction().expect("begin");
        db.set_range(r, off, size).expect("declare");
        db.write(r, off, &fill).expect("write");
        db.commit_transaction().expect("commit");
    }
    let elapsed_us = sw.elapsed().as_micros_f64();
    let bytes = db.stats().remote_write_bytes - bytes0;
    assert_eq!(db.last_committed(), TXNS, "every commit durable");
    Arm {
        commit_us: elapsed_us / TXNS as f64,
        bytes_per_txn: bytes as f64 / TXNS as f64,
    }
}

fn main() {
    let sizes = [64usize, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10];
    let mut csv =
        String::from("size,arm,txns,commit_us,remote_bytes_per_txn\n");
    let mut report = BenchReport::new("redo_vs_undo");
    let mut ratio_64k = 0.0f64;
    for &size in &sizes {
        let undo = run_arm(size, false);
        let redo = run_arm(size, true);
        for (arm, a) in [("undo", &undo), ("redo", &redo)] {
            csv.push_str(&format!(
                "{size},{arm},{TXNS},{:.3},{:.1}\n",
                a.commit_us, a.bytes_per_txn
            ));
        }
        let ratio = undo.bytes_per_txn / redo.bytes_per_txn;
        println!(
            "redo_vs_undo: {size:>6} B -> undo {:>9.1} B/txn {:>8.2} us, \
             redo {:>9.1} B/txn {:>8.2} us ({ratio:.2}x fewer bytes)",
            undo.bytes_per_txn, undo.commit_us, redo.bytes_per_txn, redo.commit_us,
        );
        if size >= 1 << 10 {
            assert!(
                redo.bytes_per_txn < undo.bytes_per_txn,
                "{size} B: redo must ship fewer hot-path bytes \
                 (redo {} vs undo {})",
                redo.bytes_per_txn,
                undo.bytes_per_txn
            );
        }
        if size == 64 << 10 {
            ratio_64k = ratio;
            report = report
                .metric("undo_bytes_per_txn_64k", undo.bytes_per_txn)
                .metric("redo_bytes_per_txn_64k", redo.bytes_per_txn)
                .metric("undo_redo_byte_ratio_64k", ratio)
                .metric("redo_commit_us_64k", redo.commit_us);
        }
        if size == 4 << 10 {
            report = report.metric("redo_commit_us_4k", redo.commit_us);
        }
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/redo_vs_undo.csv");
    std::fs::write(path, &csv).expect("write csv");
    println!("redo_vs_undo: wrote {path}");

    if let Some(json) = report
        .gate_higher("undo_redo_byte_ratio_64k", 10.0)
        .gate_lower("redo_bytes_per_txn_64k", 5.0)
        .gate_duration("redo_commit_us_64k")
        .gate_duration("redo_commit_us_4k")
        .write_if_json_mode()
    {
        println!("redo_vs_undo: wrote {json}");
    }
    assert!(
        ratio_64k >= 1.5,
        "64 KB transactions: redo must ship at least 1.5x fewer bytes (got {ratio_64k:.2}x)"
    );
}
