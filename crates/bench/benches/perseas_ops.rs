//! Wall-clock micro-benchmarks of the PERSEAS hot paths (regression
//! tracking for the library itself; virtual-time paper numbers come from
//! the `harness` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use perseas_bench::perseas_sim;
use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

fn published(region: usize) -> (Perseas<SimRemote>, perseas_core::RegionId) {
    let mut db = perseas_sim(SimClock::new());
    let r = db.malloc(region).expect("malloc");
    db.init_remote_db().expect("publish");
    (db, r)
}

fn bench_small_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("perseas");
    g.throughput(Throughput::Elements(1));
    g.bench_function("small_txn_commit", |b| {
        let (mut db, r) = published(1 << 20);
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 64) % (1 << 19);
            db.begin_transaction().unwrap();
            db.set_range(r, off, 16).unwrap();
            db.write(r, off, &[7; 16]).unwrap();
            db.commit_transaction().unwrap();
        });
    });

    g.bench_function("abort", |b| {
        let (mut db, r) = published(1 << 20);
        b.iter(|| {
            db.begin_transaction().unwrap();
            db.set_range(r, 0, 256).unwrap();
            db.write(r, 0, &[9; 256]).unwrap();
            db.abort_transaction().unwrap();
        });
    });

    g.bench_function("set_range_4k", |b| {
        let (mut db, r) = published(1 << 20);
        db.begin_transaction().unwrap();
        let mut off = 0usize;
        let mut in_txn = 0usize;
        b.iter(|| {
            // Commit periodically so the undo log recycles instead of
            // growing for the whole (long) measurement.
            if in_txn == 128 {
                db.commit_transaction().unwrap();
                db.begin_transaction().unwrap();
                in_txn = 0;
            }
            in_txn += 1;
            off = (off + 4096) % (1 << 19);
            db.set_range(r, off, 4096).unwrap();
        });
        db.commit_transaction().unwrap();
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(20);
    g.bench_function("recover_1mb_db", |b| {
        b.iter_batched(
            || {
                let (mut db, r) = published(1 << 20);
                db.begin_transaction().unwrap();
                db.set_range(r, 0, 4096).unwrap();
                db.write(r, 0, &[1; 4096]).unwrap();
                let node: NodeMemory =
                    db.mirror_backend(0).expect("mirror").node().clone();
                db.crash();
                node
            },
            |node| {
                let backend = SimRemote::with_parts(
                    SimClock::new(),
                    node,
                    SciParams::dolphin_1998(),
                );
                let (db, _) = Perseas::recover(backend, PerseasConfig::default()).unwrap();
                db
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_small_commit, bench_recovery
}
criterion_main!(benches);
