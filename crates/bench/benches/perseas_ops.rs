//! Wall-clock micro-benchmarks of the PERSEAS hot paths (regression
//! tracking for the library itself; virtual-time paper numbers come from
//! the `harness` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use perseas_bench::{perseas_sim, BenchReport};
use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

fn published(region: usize) -> (Perseas<SimRemote>, perseas_core::RegionId) {
    let mut db = perseas_sim(SimClock::new());
    let r = db.malloc(region).expect("malloc");
    db.init_remote_db().expect("publish");
    (db, r)
}

fn bench_small_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("perseas");
    g.throughput(Throughput::Elements(1));
    g.bench_function("small_txn_commit", |b| {
        let (mut db, r) = published(1 << 20);
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 64) % (1 << 19);
            db.begin_transaction().unwrap();
            db.set_range(r, off, 16).unwrap();
            db.write(r, off, &[7; 16]).unwrap();
            db.commit_transaction().unwrap();
        });
    });

    g.bench_function("abort", |b| {
        let (mut db, r) = published(1 << 20);
        b.iter(|| {
            db.begin_transaction().unwrap();
            db.set_range(r, 0, 256).unwrap();
            db.write(r, 0, &[9; 256]).unwrap();
            db.abort_transaction().unwrap();
        });
    });

    g.bench_function("set_range_4k", |b| {
        let (mut db, r) = published(1 << 20);
        db.begin_transaction().unwrap();
        let mut off = 0usize;
        let mut in_txn = 0usize;
        b.iter(|| {
            // Commit periodically so the undo log recycles instead of
            // growing for the whole (long) measurement.
            if in_txn == 128 {
                db.commit_transaction().unwrap();
                db.begin_transaction().unwrap();
                in_txn = 0;
            }
            in_txn += 1;
            off = (off + 4096) % (1 << 19);
            db.set_range(r, off, 4096).unwrap();
        });
        db.commit_transaction().unwrap();
    });
    g.finish();
}

fn two_mirror(batched: bool) -> (Perseas<SimRemote>, perseas_core::RegionId) {
    let clock = SimClock::new();
    let a = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("a"),
        SciParams::dolphin_1998(),
    );
    let b = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("b"),
        SciParams::dolphin_1998(),
    );
    let cfg = PerseasConfig::default().with_batched_commit(batched);
    let mut db = Perseas::init_with_clock(vec![a, b], cfg, clock).expect("init");
    let r = db.malloc(1 << 16).expect("malloc");
    db.init_remote_db().expect("publish");
    (db, r)
}

fn eight_range_txn(db: &mut Perseas<SimRemote>, r: perseas_core::RegionId, round: usize) {
    db.begin_transaction().unwrap();
    for i in 0..8 {
        let off = i * 512 + (round % 4) * 64;
        db.set_range(r, off, 64).unwrap();
        db.write(r, off, &[round as u8; 64]).unwrap();
    }
    db.commit_transaction().unwrap();
}

/// SCI messages and virtual nanoseconds of one 8-range, 2-mirror commit.
fn simulated_cost(batched: bool) -> (u64, u64) {
    let (mut db, r) = two_mirror(batched);
    let msgs = |db: &Perseas<SimRemote>| -> u64 {
        (0..db.mirror_count())
            .map(|i| db.mirror_backend(i).unwrap().link().stats().writes)
            .sum()
    };
    let before_msgs = msgs(&db);
    let before_t = db.clock().now();
    eight_range_txn(&mut db, r, 0);
    let after_t = db.clock().now();
    (
        msgs(&db) - before_msgs,
        after_t.duration_since(before_t).as_nanos(),
    )
}

fn bench_batched_pipeline(c: &mut Criterion) {
    // Record the simulated-cost comparison alongside the wall-clock
    // numbers, so the batching win is visible without a profiler.
    let (legacy_msgs, legacy_ns) = simulated_cost(false);
    let (batched_msgs, batched_ns) = simulated_cost(true);
    assert!(
        batched_msgs < legacy_msgs && batched_ns < legacy_ns,
        "batched pipeline must beat per-range: {batched_msgs}/{legacy_msgs} msgs, \
         {batched_ns}/{legacy_ns} ns"
    );
    let csv = format!(
        "path,sci_messages,virtual_ns\n\
         legacy,{legacy_msgs},{legacy_ns}\n\
         batched,{batched_msgs},{batched_ns}\n\
         ratio,{:.3},{:.3}\n",
        batched_msgs as f64 / legacy_msgs as f64,
        batched_ns as f64 / legacy_ns as f64,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/batched_commit.csv"
    );
    std::fs::write(path, csv).expect("write results/batched_commit.csv");

    // The simulated costs are virtual-time and message counts — fully
    // deterministic — so the CI gate on them is exact.
    let _ = BenchReport::new("batched_commit")
        .metric("legacy_messages", legacy_msgs as f64)
        .metric("batched_messages", batched_msgs as f64)
        .metric("legacy_virtual_ns", legacy_ns as f64)
        .metric("batched_virtual_ns", batched_ns as f64)
        .metric("message_ratio", batched_msgs as f64 / legacy_msgs as f64)
        .metric("time_ratio", batched_ns as f64 / legacy_ns as f64)
        .gate_lower("batched_messages", 15.0)
        .gate_lower("batched_virtual_ns", 15.0)
        .gate_lower("legacy_virtual_ns", 15.0)
        .write_if_json_mode();

    let mut g = c.benchmark_group("perseas");
    g.throughput(Throughput::Elements(1));
    g.bench_function("commit_8_ranges_legacy", |b| {
        let (mut db, r) = two_mirror(false);
        let mut round = 0usize;
        b.iter(|| {
            round += 1;
            eight_range_txn(&mut db, r, round);
        });
    });
    g.bench_function("commit_8_ranges_batched", |b| {
        let (mut db, r) = two_mirror(true);
        let mut round = 0usize;
        b.iter(|| {
            round += 1;
            eight_range_txn(&mut db, r, round);
        });
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(20);
    g.bench_function("recover_1mb_db", |b| {
        b.iter_batched(
            || {
                let (mut db, r) = published(1 << 20);
                db.begin_transaction().unwrap();
                db.set_range(r, 0, 4096).unwrap();
                db.write(r, 0, &[1; 4096]).unwrap();
                let node: NodeMemory = db.mirror_backend(0).expect("mirror").node().clone();
                db.crash();
                node
            },
            |node| {
                let backend =
                    SimRemote::with_parts(SimClock::new(), node, SciParams::dolphin_1998());
                let (db, _) = Perseas::recover(backend, PerseasConfig::default()).unwrap();
                db
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_small_commit, bench_batched_pipeline, bench_recovery
}
criterion_main!(benches);
