//! Wall-clock micro-benchmarks of the substrates: SCI packetisation and
//! latency model, node memory, disk simulator, undo-record codec, the
//! typed record containers, and the TCP wire protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use perseas_core::{crc32, UndoRecord};
use perseas_disk::{DiskParams, SimDisk, WriteMode};
use perseas_rnram::plan_transfer;
use perseas_sci::{packetize, remote_write_latency, NodeMemory, SciLink, SciParams};
use perseas_simtime::SimClock;

fn bench_sci(c: &mut Criterion) {
    let mut g = c.benchmark_group("sci");
    for size in [4usize, 64, 200, 4096] {
        g.bench_with_input(BenchmarkId::new("packetize", size), &size, |b, &size| {
            b.iter(|| packetize(std::hint::black_box(12), size));
        });
        g.bench_with_input(
            BenchmarkId::new("latency_model", size),
            &size,
            |b, &size| {
                let p = SciParams::dolphin_1998();
                b.iter(|| remote_write_latency(&p, std::hint::black_box(12), size));
            },
        );
    }
    g.bench_function("plan_transfer", |b| {
        b.iter(|| plan_transfer(0, std::hint::black_box(70), 100, 4096));
    });

    g.throughput(Throughput::Bytes(4096));
    g.bench_function("remote_write_4k", |b| {
        let clock = SimClock::new();
        let node = NodeMemory::new("bench");
        let link = SciLink::new(clock, node.clone(), SciParams::dolphin_1998());
        let seg = node.export_segment(1 << 20, 0).expect("export");
        let data = vec![7u8; 4096];
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 4096) % (1 << 19);
            link.remote_write(seg, off, &data).expect("write");
        });
    });
    g.finish();
}

fn bench_disk(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk");
    g.bench_function("async_append_512", |b| {
        let disk = SimDisk::new(SimClock::new(), DiskParams::disk_1998());
        let f = disk.create_file("log", 0);
        let data = [1u8; 512];
        b.iter(|| f.append(&data, WriteMode::Async));
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let payload = vec![3u8; 256];
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("crc32_256b", |b| {
        b.iter(|| crc32(&[std::hint::black_box(&payload)]));
    });
    g.bench_function("undo_record_roundtrip", |b| {
        let rec = UndoRecord {
            txn_id: 9,
            region: 1,
            offset: 128,
            len: payload.len() as u64,
        };
        let mut buf = vec![0u8; 512];
        b.iter(|| {
            rec.encode_into(&mut buf, 0, &payload);
            UndoRecord::decode_at(&buf, 0).expect("valid")
        });
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    use perseas_baselines::VistaSystem;
    use perseas_store::{fixed_record, RingLog, Table};
    use perseas_txn::TransactionalMemory;

    fixed_record! {
        struct BenchRec {
            a: u64,
            b: i64,
        }
    }

    let mut g = c.benchmark_group("store");
    g.throughput(Throughput::Elements(1));
    g.bench_function("table_update_txn", |b| {
        let mut tm = VistaSystem::new(SimClock::new());
        let t = Table::<BenchRec>::create(&mut tm, 1_024).expect("table");
        tm.publish().expect("publish");
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % 1_024;
            tm.begin_transaction().expect("begin");
            t.update(&mut tm, i, |r| r.a += 1).expect("update");
            tm.commit_transaction().expect("commit");
        });
    });
    g.bench_function("ring_push_txn", |b| {
        let mut tm = VistaSystem::new(SimClock::new());
        let log = RingLog::<u64>::create(&mut tm, 256).expect("ring");
        tm.publish().expect("publish");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tm.begin_transaction().expect("begin");
            log.push(&mut tm, &i).expect("push");
            tm.commit_transaction().expect("commit");
        });
    });
    g.finish();
}

fn bench_tcp(c: &mut Criterion) {
    use perseas_rnram::{server::Server, RemoteMemory, TcpRemote};

    let mut g = c.benchmark_group("tcp");
    g.sample_size(30);
    g.throughput(Throughput::Bytes(64));
    g.bench_function("roundtrip_write_64b", |b| {
        let server = Server::bind("bench", "127.0.0.1:0").expect("bind").start();
        let mut client = TcpRemote::connect(server.addr()).expect("connect");
        let seg = client.remote_malloc(4_096, 0).expect("malloc");
        let data = [7u8; 64];
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 64) % 4_096;
            client.remote_write(seg.id, off, &data).expect("write");
        });
        server.shutdown();
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sci, bench_disk, bench_codec, bench_store, bench_tcp
}
criterion_main!(benches);
