//! Reader scaling under skew: MVCC snapshot reads vs conflict-table
//! claimed reads.
//!
//! A 90/10 hotspot mix over a small account table, with the hot set held
//! by a fixed trio of writers for the whole claim window of every round
//! — the workload where first-claimer-wins hurts readers most. Each
//! round the writers claim and rewrite the hot cells, every reader then
//! attempts one hotspot-sampled read, and the writers group-commit
//! (advancing virtual time). A claimed reader loses its round whenever
//! its target is held; a snapshot reader pins the commit watermark and
//! always completes. Reader throughput is successful reads over the
//! arm's virtual makespan, swept over 1/2/4/8 concurrent readers.
//!
//! Writes `results/snapshot_scaling.csv`; with `--json` also emits
//! `results/BENCH_snapshot_scaling.json` for the CI bench-regression
//! gate. All times are virtual, so the gate is deterministic.

use perseas_bench::BenchReport;
use perseas_core::{Perseas, PerseasConfig, RegionId, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::{det_rng, SimClock};
use perseas_workloads::Hotspot;

const ACCOUNTS: usize = 64;
const CELL: usize = 64;
const WRITERS: usize = 3;
const ROUNDS: usize = 32;

/// One arm's outcome: successful reads, reader conflicts, and the
/// virtual makespan in microseconds.
struct Arm {
    reads_ok: usize,
    conflicts: usize,
    elapsed_us: f64,
}

impl Arm {
    fn reads_per_sec(&self) -> f64 {
        self.reads_ok as f64 / (self.elapsed_us / 1e6)
    }
}

fn build(name: &str, cfg: PerseasConfig) -> (Perseas<SimRemote>, RegionId, SimClock) {
    let clock = SimClock::new();
    let backend = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new(name),
        SciParams::dolphin_1998(),
    );
    let mut db = Perseas::init_with_clock(vec![backend], cfg, clock.clone()).expect("init");
    let r = db.malloc(ACCOUNTS * CELL).expect("malloc");
    db.init_remote_db().expect("publish");
    (db, r, clock)
}

/// Runs one arm: `readers` hotspot readers against `WRITERS` writers
/// that hold the entire hot set (cells `0..2*WRITERS`) during every
/// round's claim window. `mvcc` picks snapshot reads over claimed reads.
fn run_arm(readers: usize, mvcc: bool) -> Arm {
    let cfg = PerseasConfig::default()
        .with_concurrent(true)
        .with_mvcc(mvcc);
    let name = format!(
        "snap-bench-{}-{readers}",
        if mvcc { "mvcc" } else { "legacy" }
    );
    let (mut db, r, clock) = build(&name, cfg);
    let hot = Hotspot::ninety_ten(ACCOUNTS);
    assert_eq!(hot.hot_keys(), 2 * WRITERS, "writers cover the hot set");
    let mut rng = det_rng(0x5CA1_E000 + readers as u64);

    let sw = clock.stopwatch();
    let mut reads_ok = 0usize;
    let mut conflicts = 0usize;
    for round in 0..ROUNDS {
        // The writer trio claims the whole hot set, mid-transaction.
        let ws: Vec<_> = (0..WRITERS)
            .map(|w| {
                let t = db.begin_concurrent().expect("begin writer");
                for cell in [2 * w, 2 * w + 1] {
                    db.set_range_t(t, r, cell * CELL, CELL).expect("claim hot");
                    db.write_t(t, r, cell * CELL, &[round as u8 + 1; CELL])
                        .expect("write hot");
                }
                t
            })
            .collect();

        // Every reader attempts one hotspot-sampled read.
        for _ in 0..readers {
            let target = hot.sample(&mut rng) * CELL;
            let mut buf = [0u8; CELL];
            if mvcc {
                let snap = db.begin_snapshot().expect("begin snapshot");
                db.read_s(snap, r, target, &mut buf)
                    .expect("snapshot reads never conflict");
                db.end_snapshot(snap);
                reads_ok += 1;
            } else {
                let t = db.begin_concurrent().expect("begin reader");
                match db.set_range_t(t, r, target, CELL) {
                    Ok(()) => {
                        db.read(r, target, &mut buf).expect("read claimed range");
                        reads_ok += 1;
                    }
                    Err(TxnError::Conflict { .. }) => conflicts += 1,
                    Err(e) => panic!("unexpected claim error: {e}"),
                }
                db.abort_t(t).expect("release reader claim");
            }
        }

        db.commit_group(&ws).expect("commit writer group");
    }
    assert!(db.last_committed() > 0, "writer groups must be durable");
    Arm {
        reads_ok,
        conflicts,
        elapsed_us: sw.elapsed().as_micros_f64(),
    }
}

fn main() {
    let sweep = [1usize, 2, 4, 8];
    let mut csv = String::from("readers,arm,rounds,reads_ok,conflicts,elapsed_us,reads_per_sec\n");
    let mut speedup_r8 = 0.0f64;
    let mut legacy_conflicts_r8 = 0usize;
    let mut mvcc_conflicts = 0usize;
    for &readers in &sweep {
        let legacy = run_arm(readers, false);
        let mvcc = run_arm(readers, true);
        for (arm, a) in [("legacy", &legacy), ("mvcc", &mvcc)] {
            csv.push_str(&format!(
                "{readers},{arm},{ROUNDS},{},{},{:.3},{:.1}\n",
                a.reads_ok,
                a.conflicts,
                a.elapsed_us,
                a.reads_per_sec(),
            ));
        }
        let speedup = mvcc.reads_per_sec() / legacy.reads_per_sec();
        println!(
            "snapshot_scaling: {readers} readers -> legacy {}/{} reads ({} conflicts), \
             mvcc {}/{} reads ({} conflicts), {speedup:.2}x reader throughput",
            legacy.reads_ok,
            readers * ROUNDS,
            legacy.conflicts,
            mvcc.reads_ok,
            readers * ROUNDS,
            mvcc.conflicts,
        );
        mvcc_conflicts += mvcc.conflicts;
        assert_eq!(
            mvcc.reads_ok,
            readers * ROUNDS,
            "{readers} readers: every snapshot read completes"
        );
        assert!(
            legacy.conflicts > 0,
            "{readers} readers: claimed reads must conflict under the hotspot"
        );
        if readers == 8 {
            speedup_r8 = speedup;
            legacy_conflicts_r8 = legacy.conflicts;
        }
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/snapshot_scaling.csv"
    );
    std::fs::write(path, &csv).expect("write csv");
    println!("snapshot_scaling: wrote {path}");

    if let Some(json) = BenchReport::new("snapshot_scaling")
        .metric("reader_speedup_r8", speedup_r8)
        .metric("legacy_conflicts_r8", legacy_conflicts_r8 as f64)
        .metric("mvcc_reader_conflicts", mvcc_conflicts as f64)
        .gate_higher("reader_speedup_r8", 10.0)
        .gate_lower("mvcc_reader_conflicts", 0.0)
        .write_if_json_mode()
    {
        println!("snapshot_scaling: wrote {json}");
    }
    assert_eq!(mvcc_conflicts, 0, "snapshot readers never abort");
    assert!(
        speedup_r8 >= 2.0,
        "MVCC must at least double reader throughput at 8 readers (got {speedup_r8:.2}x)"
    );
}
